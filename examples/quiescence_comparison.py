#!/usr/bin/env python3
"""Quiescence comparison: why Algorithm 2 exists.

The paper's central practical motivation (§V-B, §VI): Algorithm 1 forces
every correct process to re-broadcast every delivered message *forever*,
while Algorithm 2 uses the AP* failure detector to stop once every correct
process has acknowledged.  This example runs both on the same workload and
horizon and prints the cumulative send curve side by side — the text version
of the paper-style "figure 2".

Run with::

    python examples/quiescence_comparison.py
"""

from repro import Scenario, run_scenario
from repro.analysis.quiescence import analyze_quiescence, cumulative_send_curve
from repro.analysis.tables import render_ascii_curve, render_table
from repro.network import LossSpec
from repro.workloads import UniformStream

HORIZON = 60.0
N_PROCESSES = 6


def run(algorithm: str):
    scenario = Scenario(
        name=f"quiescence-{algorithm}",
        algorithm=algorithm,
        n_processes=N_PROCESSES,
        loss=LossSpec.bernoulli(0.2),
        # Three messages from two different senders.
        workload=UniformStream(3, senders=(0, 2), interval=4.0),
        max_time=HORIZON,
        seed=7,
        # No early stopping: we want to observe the tail of the run.
    )
    return run_scenario(scenario)


def main() -> None:
    results = {algorithm: run(algorithm) for algorithm in ("algorithm1", "algorithm2")}

    print("Cumulative channel sends over time "
          f"(n={N_PROCESSES}, 3 broadcasts, loss p=0.2, horizon {HORIZON:g}):\n")
    rows = []
    curves = {
        name: dict(cumulative_send_curve(result.simulation, n_points=13))
        for name, result in results.items()
    }
    for time in sorted(curves["algorithm1"]):
        rows.append([time, curves["algorithm1"][time], curves["algorithm2"][time]])
    print(render_table(["time", "algorithm1 sends", "algorithm2 sends"], rows))

    for name, result in results.items():
        report = analyze_quiescence(result.simulation)
        print(f"\n{name}: {report.describe()}")
        print(render_ascii_curve(
            list(report.sends_per_window), width=50,
            label=f"{name} sends per 5-time-unit window:",
        ))

    a1 = results["algorithm1"].metrics.total_sends
    a2 = results["algorithm2"].metrics.total_sends
    print(f"\nAlgorithm 1 sent {a1} messages over the horizon; "
          f"Algorithm 2 sent {a2} ({a1 / max(a2, 1):.1f}x fewer) and then fell silent.")


if __name__ == "__main__":
    main()
