#!/usr/bin/env python3
"""Crash tolerance: URB with and without a correct majority.

Algorithm 1 needs a majority of correct processes (paper §III/§IV); with the
anonymous failure detectors AΘ and AP*, Algorithm 2 delivers with *any*
number of crashes (§VI).  This example crashes an increasing number of
processes at time zero and reports who still manages to deliver.

Run with::

    python examples/crash_tolerance_demo.py
"""

from repro import Scenario, run_scenario
from repro.analysis.tables import render_table
from repro.network import LossSpec

N_PROCESSES = 7


def run(algorithm: str, n_crashes: int):
    crashes = {N_PROCESSES - 1 - i: 0.0 for i in range(n_crashes)}
    scenario = Scenario(
        name=f"crash-{algorithm}-{n_crashes}",
        algorithm=algorithm,
        n_processes=N_PROCESSES,
        crashes=crashes,
        loss=LossSpec.bernoulli(0.2),
        max_time=100.0,
        stop_when_all_correct_delivered=(algorithm == "algorithm1"),
        stop_when_quiescent=(algorithm == "algorithm2"),
        drain_grace_period=2.0,
        seed=3,
    )
    return run_scenario(scenario)


def main() -> None:
    rows = []
    for n_crashes in range(0, N_PROCESSES):
        for algorithm in ("algorithm1", "algorithm2"):
            result = run(algorithm, n_crashes)
            correct = result.simulation.correct_indices()
            delivered = sum(
                1 for index in correct
                if result.simulation.delivery_logs[index].has_content("m0")
            )
            rows.append([
                algorithm,
                n_crashes,
                n_crashes < N_PROCESSES / 2,
                f"{delivered}/{len(correct)}",
                result.verdict.uniform_agreement.holds
                and result.verdict.uniform_integrity.holds,
                result.verdict.validity.holds,
            ])
    print(render_table(
        ["algorithm", "initial crashes", "correct majority?",
         "correct processes that delivered", "safety holds", "validity holds"],
        rows,
        title=f"Crash tolerance (n={N_PROCESSES}, loss p=0.2, crashes at t=0)",
    ))
    print(
        "\nReading: Algorithm 1 stops delivering (and thus violates the "
        "liveness property Validity) once half or more of the processes are "
        "gone; Algorithm 2, armed with AΘ/AP*, keeps delivering all the way "
        "to a single surviving correct process.  Safety is never violated by "
        "either algorithm."
    )


if __name__ == "__main__":
    main()
