#!/usr/bin/env python3
"""Quickstart: broadcast one message with each algorithm and inspect the run.

This is the smallest end-to-end use of the public API:

1. describe a scenario (algorithm, processes, channels, crashes, workload),
2. run it with :func:`repro.run_scenario`,
3. read the verdicts (URB properties), the quiescence report and the metrics.

Run with::

    python examples/quickstart.py
"""

from repro import Scenario, run_scenario
from repro.analysis.tables import render_table
from repro.network import LossSpec


def run_one(algorithm: str) -> list:
    """Run one small scenario for *algorithm* and return a report row."""
    scenario = Scenario(
        name=f"quickstart-{algorithm}",
        algorithm=algorithm,
        n_processes=5,
        # Fair lossy channels: every copy is independently lost with
        # probability 0.3; Task 1 retransmissions recover from it.
        loss=LossSpec.bernoulli(0.3),
        # One process crashes mid-run.
        crashes={4: 5.0},
        max_time=150.0,
        # Stop as soon as the interesting part is over.
        stop_when_all_correct_delivered=(algorithm == "algorithm1"),
        stop_when_quiescent=(algorithm == "algorithm2"),
        drain_grace_period=3.0,
        seed=42,
    )
    result = run_scenario(scenario)

    print(f"\n=== {algorithm} ===")
    print(result.simulation.describe())
    print(result.verdict.describe())
    print(result.quiescence.describe())
    for index in sorted(result.simulation.delivery_logs):
        delivered = result.simulation.deliveries_of(index)
        status = "correct" if result.simulation.crash_schedule.is_correct(index) else "faulty"
        print(f"  p{index} ({status}): delivered {delivered}")

    metrics = result.metrics
    return [
        algorithm,
        metrics.deliveries,
        metrics.total_sends,
        round(metrics.mean_latency, 3) if metrics.mean_latency else None,
        result.quiescence.quiescent,
        result.all_properties_hold,
    ]


def main() -> None:
    rows = [run_one("algorithm1"), run_one("algorithm2")]
    print()
    print(
        render_table(
            ["algorithm", "deliveries", "sends", "mean latency",
             "quiescent", "URB properties hold"],
            rows,
            title="Quickstart summary (n=5, loss p=0.3, 1 crash)",
        )
    )


if __name__ == "__main__":
    main()
