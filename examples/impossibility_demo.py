#!/usr/bin/env python3
"""Impossibility demo: constructing run R2 of the paper's Theorem 2.

Theorem 2 states that URB cannot be solved in the bare anonymous model with
fair lossy channels when half or more of the processes may crash.  The proof
builds an adversarial run: one half of the system (S1) delivers a message and
crashes, while the channel loses everything that was ever sent towards the
other half (S2) — so S2 can never deliver, violating Uniform Agreement.

This example *executes* that run against a sub-majority variant of
Algorithm 1 and then shows that (a) the proper majority threshold escapes the
violation by blocking, and (b) Algorithm 2 with the prescient AΘ/AP* oracle
stays safe too.

Run with::

    python examples/impossibility_demo.py
"""

from repro import Scenario, run_scenario
from repro.analysis.tables import render_table
from repro.experiments.impossibility import build_partition_scenario
from repro.network import LossSpec
from repro.workloads import SingleBroadcast


def describe(result, label):
    agreement = result.verdict.uniform_agreement
    deliverers = sorted(
        index for index, log in result.simulation.delivery_logs.items() if len(log)
    )
    return [
        label,
        deliverers if deliverers else "-",
        "VIOLATED" if not agreement.holds else "holds",
        result.metrics.deliveries,
    ]


def main() -> None:
    rows = []

    # (a) Sub-majority ACK threshold (an algorithm that *pretends* to work
    #     with t >= n/2): the S1 side delivers and crashes, S2 never hears
    #     anything -> Uniform Agreement is violated.
    scenario, hook = build_partition_scenario(majority_threshold=2)
    result = run_scenario(scenario)
    rows.append(describe(result, "Algorithm 1, threshold n/2 (run R2)"))
    print("Adversary crashed processes:",
          [f"p{index}@t={time:.2f}" for index, time in hook.crashes])

    # (b) Proper majority threshold: the same adversary leaves the algorithm
    #     unable to gather enough acknowledgements inside S1 -> it blocks,
    #     which is safe (and is exactly why a majority is needed).
    scenario, _ = build_partition_scenario(majority_threshold=3)
    rows.append(describe(run_scenario(scenario), "Algorithm 1, majority threshold"))

    # (c) Algorithm 2 under the same partition: the prescient AΘ oracle makes
    #     delivery wait for acknowledgements from every correct process, which
    #     the partition prevents -> no delivery, no violation.
    scenario_a2 = Scenario(
        name="impossibility-a2",
        algorithm="algorithm2",
        n_processes=4,
        loss=LossSpec.partition({0, 1}, {2, 3}),
        fairness_bound=None,
        workload=SingleBroadcast(sender=0, time=0.0),
        max_time=40.0,
    )
    rows.append(describe(run_scenario(scenario_a2), "Algorithm 2 with AΘ/AP*"))

    print()
    print(render_table(
        ["configuration", "processes that delivered", "uniform agreement",
         "total deliveries"],
        rows,
        title="Theorem 2: the S1/S2 partition adversary (n=4, S1={0,1}, S2={2,3})",
    ))
    print(
        "\nReading: only the sub-majority configuration both delivers and "
        "violates Uniform Agreement — exactly the contradiction the proof "
        "derives.  Waiting for a proper majority (or using the failure "
        "detectors) trades that violation for blocking, which is why AΘ is "
        "needed to make progress without a correct majority."
    )


if __name__ == "__main__":
    main()
