#!/usr/bin/env python3
"""Real-time demo: the same protocol code on an asyncio transport.

Everything else in this repository drives the protocols through the
discrete-event simulator; this example runs the *unmodified* Algorithm 2
implementation on the real-time in-process transport
(:mod:`repro.realtime`): asyncio tasks, wall-clock timers, real lossy
queues.  It is the "transport independence" demonstration — protocol code
only ever talks to the EnvironmentAPI.

Run with::

    python examples/realtime_demo.py
"""

import random

from repro.analysis.tables import render_table
from repro.core import QuiescentUrbProcess
from repro.failure_detectors import APStarOracle, AThetaOracle, GroundTruthOracle
from repro.realtime import RealTimeBroadcast, RealTimeCluster
from repro.simulation.faults import CrashSchedule

N_PROCESSES = 5
CRASHES = {4: 0.15}          # process 4 crashes 150 ms into the run
DURATION = 1.2               # seconds of wall-clock time


def main() -> None:
    # The failure detectors are the same oracle classes the simulator uses;
    # here they are queried with elapsed wall-clock time.
    schedule = CrashSchedule.crash_at(N_PROCESSES, CRASHES)
    ground = GroundTruthOracle(schedule, rng=random.Random(0))
    cluster = RealTimeCluster(
        N_PROCESSES,
        lambda index, env: QuiescentUrbProcess(env),
        loss_probability=0.15,
        delay_range=(0.002, 0.01),
        tick_interval=0.03,
        seed=1,
        atheta=AThetaOracle(ground),
        apstar=APStarOracle(ground),
        crash_after=CRASHES,
    )
    workload = [
        RealTimeBroadcast(delay=0.0, sender=0, content="rt-hello"),
        RealTimeBroadcast(delay=0.1, sender=1, content="rt-world"),
    ]
    report = cluster.run_sync(workload, duration=DURATION)

    print(report.describe())
    rows = []
    for index in range(N_PROCESSES):
        status = "faulty" if index in CRASHES else "correct"
        rows.append([f"p{index}", status, ", ".join(map(str, report.deliveries[index]))])
    print()
    print(render_table(["process", "role", "delivered"], rows,
                       title="Real-time Algorithm 2 run (wall-clock)"))
    print(f"\nLast send happened {report.last_send_elapsed:.2f}s into a "
          f"{DURATION:.2f}s run — the protocol went quiescent well before the end.")
    first_deliveries = sorted(report.delivery_times)[:3]
    print("First deliveries (elapsed seconds):",
          [f"p{p}:{t * 1000:.0f}ms:{c}" for t, p, c in first_deliveries])


if __name__ == "__main__":
    main()
