#!/usr/bin/env python3
"""Extending the library: plugging a custom broadcast protocol into the
simulator through the component registry.

The engine only needs the three :class:`repro.core.BroadcastProtocol` entry
points (``urb_broadcast``, ``on_receive``, ``on_tick``), so new protocols can
be evaluated against the same channels, crash schedules, workloads and
property checkers as the paper's algorithms.  Registering a factory with
:func:`repro.registry.register_algorithm` makes the protocol a first-class
citizen: ``Scenario(algorithm="gossip_k")`` validates, builds and runs it
exactly like the built-ins — no engine surgery required.

The protocol implemented here is a deliberately naive "gossip-k" broadcast:
on every retransmission round each process re-broadcasts every message it has
seen, but only for a fixed number of rounds (k).  It is *not* a correct URB
protocol under heavy loss (liveness depends on k), which makes it a nice
demonstration of the analysis layer catching the difference.

Run with::

    python examples/custom_protocol.py
"""

from __future__ import annotations

from typing import Any

from repro import Scenario, run_scenario
from repro.analysis.tables import render_table
from repro.core import AnonymousProcess, MsgPayload, TaggedMessage
from repro.core.messages import AckPayload, LabeledAckPayload
from repro.network import LossSpec
from repro.registry import register_algorithm
from repro.workloads import SingleBroadcast


class GossipKProcess(AnonymousProcess):
    """Re-broadcast everything seen, but only for ``k`` rounds per message."""

    name = "gossip_k"

    def __init__(self, env, rounds: int = 3) -> None:
        super().__init__(env, eager_first_broadcast=True)
        self.rounds = rounds
        self._remaining: dict[TaggedMessage, int] = {}
        self._delivered: set[TaggedMessage] = set()

    def urb_broadcast(self, content: Any) -> None:
        message = TaggedMessage(content, self._new_tag())
        self._remaining[message] = self.rounds
        self.env.broadcast(MsgPayload(message))

    def _on_msg(self, payload: MsgPayload) -> None:
        message = payload.message
        if message not in self._delivered:
            self._delivered.add(message)
            self._record_delivery(message)
        self._remaining.setdefault(message, self.rounds)

    def _on_ack(self, payload: AckPayload | LabeledAckPayload) -> None:
        # Gossip has no acknowledgements; ignore any that appear.
        return

    def on_tick(self) -> None:
        for message, remaining in list(self._remaining.items()):
            if remaining <= 0:
                del self._remaining[message]
                continue
            self.env.broadcast(MsgPayload(message))
            self._remaining[message] = remaining - 1

    @property
    def pending_retransmissions(self) -> int:
        return sum(1 for remaining in self._remaining.values() if remaining > 0)


@register_algorithm(
    "gossip_k",
    description="Bounded gossip: re-broadcast everything for k rounds "
                "(metadata: gossip_rounds)",
)
def build_gossip(scenario: Scenario, index: int, env) -> GossipKProcess:
    """Registry factory: per-message round budget comes from the scenario."""
    return GossipKProcess(env, rounds=int(scenario.metadata.get("gossip_rounds", 3)))


def run_gossip(rounds: int, loss: float, seed: int):
    """The custom protocol is now just a named algorithm in a Scenario."""
    result = run_scenario(Scenario(
        name=f"gossip-{rounds}",
        algorithm="gossip_k",
        n_processes=6,
        loss=LossSpec.bernoulli(loss),
        workload=SingleBroadcast(sender=0, time=0.0),
        max_time=60.0,
        seed=seed,
        metadata={"gossip_rounds": rounds},
    ))
    return result.simulation, result.verdict


def main() -> None:
    rows = []
    for rounds in (0, 1, 3, 8):
        for loss in (0.2, 0.6):
            agreement_violations = 0
            deliveries = 0
            for seed in range(5):
                simulation, verdict = run_gossip(rounds, loss, seed)
                agreement_violations += int(not verdict.uniform_agreement.holds)
                deliveries += simulation.metrics.deliveries
            rows.append([rounds, loss, deliveries / 5, agreement_violations])

    print(render_table(
        ["gossip rounds k", "loss p", "mean deliveries (of 6)",
         "agreement violations (of 5 runs)"],
        rows,
        title="A custom gossip-k protocol under the same harness",
    ))

    # Reference: the paper's Algorithm 2 under the harsher setting.
    reference = run_scenario(Scenario(
        name="reference", algorithm="algorithm2", n_processes=6,
        loss=LossSpec.bernoulli(0.6), workload=SingleBroadcast(sender=0, time=0.0),
        max_time=120.0, stop_when_quiescent=True, drain_grace_period=3.0,
    ))
    print(
        f"\nReference (Algorithm 2, loss p=0.6): deliveries="
        f"{reference.metrics.deliveries}/6, properties hold: "
        f"{reference.all_properties_hold}, quiescent: "
        f"{reference.quiescence.quiescent}"
    )
    print(
        "\nReading: bounded gossip stops retransmitting too early — under "
        "heavy loss some correct process misses the message and agreement "
        "breaks, while Algorithm 2 keeps retransmitting exactly until AP* "
        "says everyone correct has it."
    )


if __name__ == "__main__":
    main()
