"""Generic named-component registry.

A :class:`Registry` maps names to *specs* — small frozen dataclasses carrying
a factory plus metadata (see :mod:`repro.registry.specs`).  Registries are the
library's extension points: every component that used to be selected through a
hardcoded tuple or an ``if``/``elif`` chain (algorithms, channel families,
failure-detector setups, workload presets) is now looked up by name, so
third-party code can plug new implementations in with a decorator and have
them become first-class citizens of :class:`~repro.experiments.config.Scenario`
validation, the CLI and the batch runner.

Design notes
------------
* **Insertion order is preserved** — ``names()`` lists built-ins first, in
  registration order, which keeps CLI ``choices`` and error messages stable.
* **Built-ins load lazily.**  Each registry may be given a *loader* callable;
  it runs once, before the first read, and is expected to import the module
  that registers the built-in components.  Registration itself never triggers
  the loader, so built-in modules can register freely while being imported.
* **Errors are loud and helpful.**  Duplicate names raise
  :class:`DuplicateComponentError`; unknown names raise
  :class:`UnknownComponentError` listing every registered name and how to add
  a new one.  Both derive from ``ValueError`` so existing callers that catch
  ``ValueError`` (e.g. ``Scenario.__post_init__`` users) keep working.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Generic, Iterator, Optional, Protocol, TypeVar


class NamedSpec(Protocol):
    """Anything a registry can hold: it only needs a ``name``."""

    name: str


S = TypeVar("S", bound=NamedSpec)

#: Shared by every registry while running a built-in loader.  A single lock
#: (rather than the per-registry one) prevents lock-ordering deadlocks: one
#: loader import typically registers into *several* registries, so two
#: threads first-reading two different registries must serialise on the same
#: lock rather than each holding their own while waiting on Python's module
#: import lock.
_LOAD_LOCK = threading.RLock()


class RegistryError(ValueError):
    """Base class for registry failures (a :class:`ValueError` on purpose)."""


class DuplicateComponentError(RegistryError):
    """A name was registered twice in the same registry."""


class UnknownComponentError(RegistryError):
    """A name was looked up that no one registered."""


class Registry(Generic[S]):
    """An ordered name → spec mapping with decorator-based registration.

    Parameters
    ----------
    kind:
        Human-readable component kind (``"algorithm"``, ``"channel"``, …) used
        in error messages.
    loader:
        Optional callable importing the built-in components.  Invoked at most
        once, lazily, before the first *read* operation.
    hint:
        One-line "how do I register one?" hint appended to unknown-name
        errors.
    """

    def __init__(self, kind: str, *, loader: Optional[Callable[[], None]] = None,
                 hint: str = "") -> None:
        self.kind = kind
        self._specs: dict[str, S] = {}
        self._loader = loader
        self._loaded = loader is None
        self._loading = False
        self._lock = threading.RLock()
        self._hint = hint

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def register(self, spec: S, *, replace: bool = False) -> S:
        """Register *spec* under ``spec.name`` and return it.

        Raises :class:`DuplicateComponentError` unless *replace* is true.
        """
        name = spec.name
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} names must be non-empty strings")
        with self._lock:
            if not replace and name in self._specs:
                raise DuplicateComponentError(
                    f"{self.kind} {name!r} is already registered; pass "
                    f"replace=True to override it deliberately"
                )
            self._specs[name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove *name* (mainly for tests); unknown names raise."""
        with self._lock:
            if name not in self._specs:
                raise UnknownComponentError(
                    f"cannot unregister unknown {self.kind} {name!r}"
                )
            del self._specs[name]

    @contextmanager
    def scoped(self, spec: S, *, replace: bool = False) -> Iterator[S]:
        """Context manager registering *spec* for the duration of a block.

        Restores the previous binding (if any) on exit — convenient in tests
        and short-lived experiments.
        """
        self._ensure_loaded()
        with self._lock:
            previous = self._specs.get(spec.name)
        self.register(spec, replace=replace)
        try:
            yield spec
        finally:
            with self._lock:
                if previous is not None:
                    self._specs[spec.name] = previous
                else:
                    self._specs.pop(spec.name, None)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        # Serialise loading on the lock shared by ALL registries (not this
        # registry's own): the loader imports a module that registers into
        # several registries, so per-registry locking here would deadlock two
        # threads first-reading two different registries.  Other threads
        # block until the load finishes; the loading thread itself re-enters
        # through the RLock.
        with _LOAD_LOCK:
            if self._loaded or self._loading:
                return
            self._loading = True
            try:
                assert self._loader is not None
                self._loader()
                self._loaded = True
            finally:
                self._loading = False

    def get(self, name: str) -> S:
        """The spec registered under *name*.

        Raises :class:`UnknownComponentError` with the full list of known
        names (and a registration hint) otherwise.
        """
        self._ensure_loaded()
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(repr(n) for n in self._specs) or "<none>"
            message = f"unknown {self.kind} {name!r}; registered: {known}"
            if self._hint:
                message += f". {self._hint}"
            raise UnknownComponentError(message) from None

    def validate(self, name: str) -> S:
        """Alias of :meth:`get` that reads as an assertion at call sites."""
        return self.get(name)

    def names(self) -> tuple[str, ...]:
        """All registered names, in registration order (built-ins first)."""
        self._ensure_loaded()
        return tuple(self._specs)

    def specs(self) -> tuple[S, ...]:
        """All registered specs, in registration order."""
        self._ensure_loaded()
        return tuple(self._specs.values())

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {len(self)} registered)"
