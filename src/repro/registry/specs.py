"""Spec dataclasses held by the component registries.

Each spec couples a *name* with a *factory* and the metadata the harness
needs to wire the component correctly without asking it anything else:

* :class:`AlgorithmSpec` — builds one protocol process per index.  The
  metadata flags replace what used to be special-cased string comparisons in
  the runner: ``uses_failure_detectors`` decides whether the AΘ/AP\\* oracles
  are constructed, ``anonymous`` parameterises the anonymity audit, and
  ``requires_majority`` / ``supports_quiescence`` describe the protocol's
  assumptions for reports and suite planning.
* :class:`ChannelSpec` — builds the per-pair channel factory for a scenario.
* :class:`DetectorSetupSpec` — builds the ``(atheta, apstar)`` oracle pair.
* :class:`WorkloadSpec` — builds a workload preset from the scenario, so
  sweeps can select workloads by (picklable) name.
* :class:`StrategySpec` — builds a schedule-exploration controller from a
  scenario and a schedule index (see :mod:`repro.explore`).  ``enumerative``
  strategies additionally expose the size of their finite schedule space so
  the explorer can cap its budget.
* :class:`EngineSpec` — builds the simulation engine itself (a dispatch
  backend).  Every backend receives the exact keyword arguments of
  :class:`~repro.simulation.engine.SimulationEngine` and must produce
  bit-identical results to the ``reference`` backend (see DESIGN.md §12).

Factories receive the full :class:`~repro.experiments.config.Scenario`, which
keeps their signatures stable while letting implementations read whichever
fields (or ``scenario.metadata`` entries) they care about.

Each spec class also carries ``TABLE_COLUMNS`` — the ``(header, field)``
pairs ``repro-urb components`` renders — so the CLI can enumerate any
registry generically instead of hardcoding one table per component kind.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.interfaces import BroadcastProtocol
    from ..experiments.config import Scenario
    from ..explore.controller import ScheduleController
    from ..failure_detectors.base import FailureDetector
    from ..simulation.environment import ProcessEnvironment
    from ..simulation.faults import CrashSchedule
    from ..simulation.rng import RandomSource
    from ..workloads.base import Workload

#: ``(scenario, index, env) -> protocol`` — one call per process.
AlgorithmFactory = Callable[
    ["Scenario", int, "ProcessEnvironment"], "BroadcastProtocol"
]

#: ``(scenario, crash_schedule) -> channel factory`` — the returned object
#: must expose ``build(src, dst, loss_rng, delay_rng)`` and ``describe()``.
ChannelFactoryBuilder = Callable[["Scenario", "CrashSchedule"], Any]

#: ``(scenario, crash_schedule, random_source) -> (atheta, apstar)``.
DetectorSetupFactory = Callable[
    ["Scenario", "CrashSchedule", "RandomSource"],
    Tuple[Optional["FailureDetector"], Optional["FailureDetector"]],
]

#: ``(scenario, rng) -> workload`` — *rng* is a dedicated substream of the
#: run's master seed so randomised presets stay reproducible.
WorkloadFactory = Callable[["Scenario", random.Random], "Workload"]

#: ``(scenario, schedule_index) -> controller`` — one schedule per index.
StrategyFactory = Callable[["Scenario", int], "ScheduleController"]

#: ``(**engine_kwargs) -> engine`` — called with the exact keyword arguments
#: of :class:`~repro.simulation.engine.SimulationEngine`; usually the engine
#: class itself.
EngineFactory = Callable[..., Any]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registered broadcast protocol."""

    TABLE_COLUMNS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("name", "name"),
        ("needs majority", "requires_majority"),
        ("quiescent", "supports_quiescence"),
        ("uses FDs", "uses_failure_detectors"),
        ("anonymous", "anonymous"),
        ("description", "description"),
    )

    name: str
    factory: AlgorithmFactory
    description: str = ""
    #: Correctness requires a majority of processes to stay correct.
    requires_majority: bool = False
    #: The protocol eventually stops sending (quiescence, §V of the paper).
    supports_quiescence: bool = False
    #: The runner must build the AΘ/AP\* oracle pair for this protocol.
    uses_failure_detectors: bool = False
    #: Processes are anonymous; identified protocols fail the anonymity audit
    #: unless this is false.
    anonymous: bool = True
    #: Free-form extras (displayed by ``repro-urb components``).
    extra: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ChannelSpec:
    """A registered channel family."""

    TABLE_COLUMNS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("name", "name"),
        ("lossy", "lossy"),
        ("description", "description"),
    )

    name: str
    factory: ChannelFactoryBuilder
    description: str = ""
    #: Whether the family can drop copies (drives report annotations).
    lossy: bool = True
    extra: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class DetectorSetupSpec:
    """A registered failure-detector parameterisation."""

    TABLE_COLUMNS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("name", "name"),
        ("description", "description"),
    )

    name: str
    factory: DetectorSetupFactory
    description: str = ""
    extra: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class WorkloadSpec:
    """A registered workload preset."""

    TABLE_COLUMNS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("name", "name"),
        ("description", "description"),
    )

    name: str
    factory: WorkloadFactory
    description: str = ""
    extra: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class StrategySpec:
    """A registered schedule-exploration strategy.

    ``factory(scenario, schedule_index)`` builds the controller driving
    schedule number *schedule_index* of the strategy's (seeded or
    enumerated) schedule space.
    """

    TABLE_COLUMNS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("name", "name"),
        ("enumerative", "enumerative"),
        ("description", "description"),
    )

    name: str
    factory: StrategyFactory
    description: str = ""
    #: The strategy enumerates a finite schedule space (vs. a seeded walk).
    enumerative: bool = False
    #: For enumerative strategies: ``schedule_count(scenario)`` — the size of
    #: the space, used by the explorer to cap its budget.
    schedule_count: Optional[Callable[["Scenario"], int]] = None
    extra: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class EngineSpec:
    """A registered simulation-engine backend.

    ``factory(**engine_kwargs)`` receives the keyword arguments of
    :class:`~repro.simulation.engine.SimulationEngine` verbatim and returns
    a ready-to-run engine.  Backends are *implementation strategies*, not
    semantic variants: every backend must produce bit-identical trace
    digests, delivery logs and metrics against ``reference`` (the parity
    suite in :mod:`repro.experiments.parity` enforces this in CI).
    """

    TABLE_COLUMNS: ClassVar[Tuple[Tuple[str, str], ...]] = (
        ("name", "name"),
        ("batched", "batched"),
        ("description", "description"),
    )

    name: str
    factory: EngineFactory
    description: str = ""
    #: The backend batches delivery dispatch (vs. per-event heap dispatch).
    batched: bool = False
    extra: Mapping[str, Any] = field(default_factory=dict)
