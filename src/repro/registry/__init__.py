"""Pluggable component registries.

This package is the library's extension surface.  The registries map names
to component specs; everything that used to be a hardcoded tuple or an
``if``/``elif`` dispatch chain now resolves through them:

* :data:`algorithms` — broadcast protocols (``Scenario.algorithm``),
* :data:`channels` — channel families (``Scenario.channel_type``),
* :data:`detector_setups` — failure-detector wiring (``Scenario.detector_setup``),
* :data:`workloads` — workload presets (``Scenario.workload`` by name),
* :data:`strategies` — schedule-exploration strategies
  (``Scenario.explore_strategy``; see :mod:`repro.explore`),
* :data:`engines` — simulation-engine backends (``Scenario.engine``; see
  :mod:`repro.simulation.backends`).

:func:`all_registries` enumerates them in a stable order, so the CLI's
``components`` listing and anything else that wants "every registry" stays
correct when a new one is added — no per-site edits.

Registering a component makes it a first-class citizen of
:class:`~repro.experiments.config.Scenario` validation, the scenario runner,
the CLI's ``--algorithm`` choices, sweeps and the parallel batch runner.  The
decorators are the intended entry point::

    from repro.registry import register_algorithm

    @register_algorithm("gossip_k", description="bounded gossip broadcast")
    def build_gossip(scenario, index, env):
        return GossipKProcess(env, rounds=scenario.metadata.get("gossip_rounds", 3))

    result = run_scenario(Scenario(algorithm="gossip_k"))

Built-in components live in :mod:`repro.registry.builtins` and are loaded
lazily on the first registry read, so importing this package is cheap and
free of import cycles.

When running suites with ``parallel > 1`` the worker *processes* must also
perform third-party registrations; pass the registering module names as
``worker_plugins`` to :meth:`repro.experiments.batch.ScenarioSuite.run`.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Optional

from .base import (
    DuplicateComponentError,
    Registry,
    RegistryError,
    UnknownComponentError,
)
from .specs import (
    AlgorithmFactory,
    AlgorithmSpec,
    ChannelFactoryBuilder,
    ChannelSpec,
    DetectorSetupFactory,
    DetectorSetupSpec,
    EngineFactory,
    EngineSpec,
    StrategyFactory,
    StrategySpec,
    WorkloadFactory,
    WorkloadSpec,
)

__all__ = [
    "AlgorithmSpec",
    "ChannelSpec",
    "DetectorSetupSpec",
    "DuplicateComponentError",
    "EngineSpec",
    "Registry",
    "RegistryError",
    "StrategySpec",
    "UnknownComponentError",
    "WorkloadSpec",
    "algorithm_names",
    "algorithms",
    "all_registries",
    "channel_names",
    "channels",
    "detector_setup_names",
    "detector_setups",
    "engine_names",
    "engines",
    "get_algorithm",
    "get_channel",
    "get_detector_setup",
    "get_engine",
    "get_strategy",
    "get_workload",
    "register_algorithm",
    "register_channel",
    "register_detector_setup",
    "register_engine",
    "register_strategy",
    "register_workload",
    "strategies",
    "strategy_names",
    "workload_names",
    "workloads",
]


def _load_builtins() -> None:
    importlib.import_module(f"{__name__}.builtins")


def _load_strategy_builtins() -> None:
    # The built-in exploration strategies live with the explore subsystem
    # (they are controllers first, registry entries second).
    importlib.import_module("repro.explore.strategies")


def _load_engine_builtins() -> None:
    # The built-in engine backends live with the simulation subsystem (they
    # are dispatch strategies first, registry entries second).
    importlib.import_module("repro.simulation.backends")


_HINT = "Register new components with the repro.registry.register_* decorators"

#: Broadcast protocols, selectable via ``Scenario.algorithm``.
algorithms: Registry[AlgorithmSpec] = Registry(
    "algorithm", loader=_load_builtins, hint=_HINT
)
#: Channel families, selectable via ``Scenario.channel_type``.
channels: Registry[ChannelSpec] = Registry(
    "channel type", loader=_load_builtins, hint=_HINT
)
#: Failure-detector setups, selectable via ``Scenario.detector_setup``.
detector_setups: Registry[DetectorSetupSpec] = Registry(
    "detector setup", loader=_load_builtins, hint=_HINT
)
#: Workload presets, selectable by passing their name as ``Scenario.workload``.
workloads: Registry[WorkloadSpec] = Registry(
    "workload", loader=_load_builtins, hint=_HINT
)
#: Schedule-exploration strategies, selectable via ``Scenario.explore_strategy``.
strategies: Registry[StrategySpec] = Registry(
    "exploration strategy", loader=_load_strategy_builtins, hint=_HINT
)
#: Simulation-engine backends, selectable via ``Scenario.engine``.
engines: Registry[EngineSpec] = Registry(
    "engine backend", loader=_load_engine_builtins, hint=_HINT
)

#: Every registry, keyed by the title ``repro-urb components`` shows, in the
#: order the tables render.  THE single enumeration point: new registries are
#: added here once and every data-driven consumer (CLI listing, docs, error
#: summaries) picks them up.
_ALL_REGISTRIES: dict[str, Registry[Any]] = {
    "Algorithms": algorithms,
    "Channel families": channels,
    "Failure-detector setups": detector_setups,
    "Workload presets": workloads,
    "Exploration strategies": strategies,
    "Engine backends": engines,
}


def all_registries() -> dict[str, Registry[Any]]:
    """Every component registry, keyed by display title, in display order."""
    return dict(_ALL_REGISTRIES)


# --------------------------------------------------------------------------- #
# decorators
# --------------------------------------------------------------------------- #
def register_algorithm(
    name: str,
    *,
    description: str = "",
    requires_majority: bool = False,
    supports_quiescence: bool = False,
    uses_failure_detectors: bool = False,
    anonymous: bool = True,
    replace: bool = False,
    **extra: Any,
) -> Callable[[AlgorithmFactory], AlgorithmFactory]:
    """Register a ``(scenario, index, env) -> protocol`` factory as *name*."""

    def decorator(factory: AlgorithmFactory) -> AlgorithmFactory:
        algorithms.register(
            AlgorithmSpec(
                name=name,
                factory=factory,
                description=description or (factory.__doc__ or "").strip(),
                requires_majority=requires_majority,
                supports_quiescence=supports_quiescence,
                uses_failure_detectors=uses_failure_detectors,
                anonymous=anonymous,
                extra=extra,
            ),
            replace=replace,
        )
        return factory

    return decorator


def register_channel(
    name: str,
    *,
    description: str = "",
    lossy: bool = True,
    replace: bool = False,
    **extra: Any,
) -> Callable[[ChannelFactoryBuilder], ChannelFactoryBuilder]:
    """Register a ``(scenario, crash_schedule) -> channel factory`` builder."""

    def decorator(factory: ChannelFactoryBuilder) -> ChannelFactoryBuilder:
        channels.register(
            ChannelSpec(
                name=name,
                factory=factory,
                description=description or (factory.__doc__ or "").strip(),
                lossy=lossy,
                extra=extra,
            ),
            replace=replace,
        )
        return factory

    return decorator


def register_detector_setup(
    name: str,
    *,
    description: str = "",
    replace: bool = False,
    **extra: Any,
) -> Callable[[DetectorSetupFactory], DetectorSetupFactory]:
    """Register a ``(scenario, crashes, rng) -> (atheta, apstar)`` factory."""

    def decorator(factory: DetectorSetupFactory) -> DetectorSetupFactory:
        detector_setups.register(
            DetectorSetupSpec(
                name=name,
                factory=factory,
                description=description or (factory.__doc__ or "").strip(),
                extra=extra,
            ),
            replace=replace,
        )
        return factory

    return decorator


def register_strategy(
    name: str,
    *,
    description: str = "",
    enumerative: bool = False,
    schedule_count: Optional[Callable[..., int]] = None,
    replace: bool = False,
    **extra: Any,
) -> Callable[[StrategyFactory], StrategyFactory]:
    """Register a ``(scenario, schedule_index) -> controller`` factory."""

    def decorator(factory: StrategyFactory) -> StrategyFactory:
        strategies.register(
            StrategySpec(
                name=name,
                factory=factory,
                description=description or (factory.__doc__ or "").strip(),
                enumerative=enumerative,
                schedule_count=schedule_count,
                extra=extra,
            ),
            replace=replace,
        )
        return factory

    return decorator


def register_engine(
    name: str,
    *,
    description: str = "",
    batched: bool = False,
    replace: bool = False,
    **extra: Any,
) -> Callable[[EngineFactory], EngineFactory]:
    """Register a ``(**engine_kwargs) -> engine`` backend factory as *name*.

    Backends must be bit-identical to ``reference`` on every parity-suite
    scenario (see :mod:`repro.experiments.parity`); they may only differ in
    *how* they dispatch, never in *what* they compute.
    """

    def decorator(factory: EngineFactory) -> EngineFactory:
        engines.register(
            EngineSpec(
                name=name,
                factory=factory,
                description=description or (factory.__doc__ or "").strip(),
                batched=batched,
                extra=extra,
            ),
            replace=replace,
        )
        return factory

    return decorator


def register_workload(
    name: str,
    *,
    description: str = "",
    replace: bool = False,
    **extra: Any,
) -> Callable[[WorkloadFactory], WorkloadFactory]:
    """Register a ``(scenario, rng) -> workload`` preset as *name*."""

    def decorator(factory: WorkloadFactory) -> WorkloadFactory:
        workloads.register(
            WorkloadSpec(
                name=name,
                factory=factory,
                description=description or (factory.__doc__ or "").strip(),
                extra=extra,
            ),
            replace=replace,
        )
        return factory

    return decorator


# --------------------------------------------------------------------------- #
# lookup helpers (the names most call sites want)
# --------------------------------------------------------------------------- #
def algorithm_names() -> tuple[str, ...]:
    """Registered algorithm names (built-ins first)."""
    return algorithms.names()


def channel_names() -> tuple[str, ...]:
    """Registered channel-family names (built-ins first)."""
    return channels.names()


def detector_setup_names() -> tuple[str, ...]:
    """Registered failure-detector setup names (built-ins first)."""
    return detector_setups.names()


def workload_names() -> tuple[str, ...]:
    """Registered workload preset names (built-ins first)."""
    return workloads.names()


def strategy_names() -> tuple[str, ...]:
    """Registered exploration strategy names (built-ins first)."""
    return strategies.names()


def engine_names() -> tuple[str, ...]:
    """Registered engine-backend names (built-ins first)."""
    return engines.names()


def get_algorithm(name: str) -> AlgorithmSpec:
    """Spec of the algorithm registered as *name* (raises if unknown)."""
    return algorithms.get(name)


def get_channel(name: str) -> ChannelSpec:
    """Spec of the channel family registered as *name* (raises if unknown)."""
    return channels.get(name)


def get_detector_setup(name: str) -> DetectorSetupSpec:
    """Spec of the detector setup registered as *name* (raises if unknown)."""
    return detector_setups.get(name)


def get_workload(name: str) -> WorkloadSpec:
    """Spec of the workload preset registered as *name* (raises if unknown)."""
    return workloads.get(name)


def get_strategy(name: str) -> StrategySpec:
    """Spec of the exploration strategy registered as *name* (raises if unknown)."""
    return strategies.get(name)


def get_engine(name: str) -> EngineSpec:
    """Spec of the engine backend registered as *name* (raises if unknown)."""
    return engines.get(name)
