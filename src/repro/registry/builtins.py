"""Built-in component registrations.

This module is imported lazily by :mod:`repro.registry` the first time any
registry is read.  It registers the paper's algorithms, the three channel
families, the standard failure-detector setups and the workload presets using
exactly the same decorators third-party extensions use — the built-ins enjoy
no special treatment anywhere downstream.

Factories read protocol options straight off the scenario
(``majority_threshold``, ``strict_equality``, …); presets additionally read
free-form knobs from ``scenario.metadata`` (e.g. ``burst_size``) so they can
be tuned without new Scenario fields.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from ..core.algorithm1 import MajorityUrbProcess
from ..core.algorithm2 import QuiescentUrbProcess
from ..core.baselines import (
    BestEffortBroadcastProcess,
    EagerReliableBroadcastProcess,
    IdentifiedMajorityUrbProcess,
)
from ..failure_detectors.apstar import APStarOracle
from ..failure_detectors.atheta import AThetaOracle
from ..failure_detectors.oracle import GroundTruthOracle
from ..network.fair_lossy import FairLossyChannelFactory
from ..network.reliable import QuasiReliableChannelFactory, ReliableChannelFactory
from ..workloads.generators import (
    AllToAll,
    BurstWorkload,
    PoissonStream,
    SingleBroadcast,
    UniformStream,
)
from . import (
    register_algorithm,
    register_channel,
    register_detector_setup,
    register_workload,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import Scenario
    from ..simulation.environment import ProcessEnvironment
    from ..simulation.faults import CrashSchedule
    from ..simulation.rng import RandomSource


# --------------------------------------------------------------------------- #
# algorithms (paper protocols + baselines)
# --------------------------------------------------------------------------- #
@register_algorithm(
    "algorithm1",
    description="Paper Algorithm 1: anonymous majority-ACK URB (non-quiescent)",
    requires_majority=True,
)
def _build_algorithm1(scenario: "Scenario", index: int,
                      env: "ProcessEnvironment") -> MajorityUrbProcess:
    return MajorityUrbProcess(
        env,
        scenario.n_processes,
        majority_threshold=scenario.majority_threshold,
        eager_first_broadcast=scenario.eager_first_broadcast,
    )


@register_algorithm(
    "algorithm2",
    description="Paper Algorithm 2: quiescent anonymous URB using AΘ and AP*",
    supports_quiescence=True,
    uses_failure_detectors=True,
)
def _build_algorithm2(scenario: "Scenario", index: int,
                      env: "ProcessEnvironment") -> QuiescentUrbProcess:
    return QuiescentUrbProcess(
        env,
        strict_equality=scenario.strict_equality,
        retire_enabled=scenario.retire_enabled,
        eager_first_broadcast=scenario.eager_first_broadcast,
    )


class _NoRetransmitUrbProcess(MajorityUrbProcess):
    """Algorithm 1 with Task 1 disabled — a deliberately broken mutant.

    Without the «repeat forever» retransmission loop, channel fairness never
    gets a second attempt to force delivery, so loss patterns exist in which
    a correct broadcaster never collects a majority of acknowledgements.
    The schedule explorer (see :mod:`repro.explore`) is expected to find
    them; the exploration CI smoke job runs it with ``--expect-violation``
    as an end-to-end self-test of the violation pipeline.
    """

    name = "algorithm1_noretx"

    def on_tick(self) -> None:
        return None


@register_algorithm(
    "algorithm1_noretx",
    description="BROKEN mutant of Algorithm 1 (Task 1 retransmission "
                "disabled) — schedule-explorer self-test target",
    requires_majority=True,
    broken=True,
)
def _build_algorithm1_noretx(scenario: "Scenario", index: int,
                             env: "ProcessEnvironment") -> _NoRetransmitUrbProcess:
    return _NoRetransmitUrbProcess(
        env,
        scenario.n_processes,
        majority_threshold=scenario.majority_threshold,
        eager_first_broadcast=scenario.eager_first_broadcast,
    )


@register_algorithm(
    "best_effort",
    description="Baseline: best-effort broadcast (no retransmission)",
)
def _build_best_effort(scenario: "Scenario", index: int,
                       env: "ProcessEnvironment") -> BestEffortBroadcastProcess:
    return BestEffortBroadcastProcess(env)


@register_algorithm(
    "eager_rb",
    description="Baseline: eager reliable broadcast (relay once on reception)",
)
def _build_eager_rb(scenario: "Scenario", index: int,
                    env: "ProcessEnvironment") -> EagerReliableBroadcastProcess:
    return EagerReliableBroadcastProcess(env)


@register_algorithm(
    "identified_urb",
    description="Baseline: classic majority URB with process identities",
    requires_majority=True,
    anonymous=False,
)
def _build_identified_urb(scenario: "Scenario", index: int,
                          env: "ProcessEnvironment") -> IdentifiedMajorityUrbProcess:
    return IdentifiedMajorityUrbProcess(
        env,
        scenario.n_processes,
        identity=index,
        majority_threshold=scenario.majority_threshold,
        eager_first_broadcast=scenario.eager_first_broadcast,
    )


# --------------------------------------------------------------------------- #
# channel families
# --------------------------------------------------------------------------- #
@register_channel(
    "fair_lossy",
    description="Fair lossy channels (the paper's model, §II)",
)
def _build_fair_lossy(scenario: "Scenario",
                      crash_schedule: "CrashSchedule") -> FairLossyChannelFactory:
    return FairLossyChannelFactory(
        loss_spec=scenario.loss,
        delay_spec=scenario.delay,
        fairness_bound=scenario.fairness_bound,
    )


@register_channel(
    "reliable",
    description="Reliable channels (every copy delivered)",
    lossy=False,
)
def _build_reliable(scenario: "Scenario",
                    crash_schedule: "CrashSchedule") -> ReliableChannelFactory:
    return ReliableChannelFactory(delay_spec=scenario.delay)


@register_channel(
    "quasi_reliable",
    description="Quasi-reliable channels (copies die with a crashed sender)",
)
def _build_quasi_reliable(
    scenario: "Scenario", crash_schedule: "CrashSchedule"
) -> QuasiReliableChannelFactory:
    return QuasiReliableChannelFactory(
        sender_crash_time=crash_schedule.crash_time,
        delay_spec=scenario.delay,
    )


# --------------------------------------------------------------------------- #
# failure-detector setups
# --------------------------------------------------------------------------- #
@register_detector_setup(
    "oracle",
    description="Ground-truth AΘ and AP* with the scenario's delays (default)",
)
def _build_oracle_detectors(scenario: "Scenario", crash_schedule: "CrashSchedule",
                            random_source: "RandomSource"):
    ground_truth = GroundTruthOracle(
        crash_schedule, rng=random_source.stream("labels")
    )
    atheta = AThetaOracle(
        ground_truth,
        policy=scenario.fd_policy,
        detection_delay=scenario.fd_detection_delay,
        learn_delay=scenario.fd_learn_delay,
        rng=random_source.stream("atheta-learn"),
    )
    apstar = APStarOracle(
        ground_truth,
        policy=scenario.fd_policy,
        detection_delay=scenario.effective_apstar_delay,
        learn_delay=scenario.fd_learn_delay,
        rng=random_source.stream("apstar-learn"),
    )
    return atheta, apstar


@register_detector_setup(
    "prescient",
    description="Zero-delay AΘ and AP* (instant, perfectly accurate oracles)",
)
def _build_prescient_detectors(scenario: "Scenario",
                               crash_schedule: "CrashSchedule",
                               random_source: "RandomSource"):
    ground_truth = GroundTruthOracle(
        crash_schedule, rng=random_source.stream("labels")
    )
    atheta = AThetaOracle(
        ground_truth, policy=scenario.fd_policy,
        detection_delay=0.0, learn_delay=0.0,
        rng=random_source.stream("atheta-learn"),
    )
    apstar = APStarOracle(
        ground_truth, policy=scenario.fd_policy,
        detection_delay=0.0, learn_delay=0.0,
        rng=random_source.stream("apstar-learn"),
    )
    return atheta, apstar


@register_detector_setup(
    "none",
    description="No oracles at all (protocols see empty detector views)",
)
def _build_no_detectors(scenario: "Scenario", crash_schedule: "CrashSchedule",
                        random_source: "RandomSource"):
    return None, None


# --------------------------------------------------------------------------- #
# workload presets
# --------------------------------------------------------------------------- #
@register_workload(
    "single",
    description="One broadcast by process 0 at t=0 (the proofs' pattern)",
)
def _build_single(scenario: "Scenario", rng: random.Random) -> SingleBroadcast:
    return SingleBroadcast(sender=0, time=0.0)


@register_workload(
    "all_to_all",
    description="Every process broadcasts one message",
)
def _build_all_to_all(scenario: "Scenario", rng: random.Random) -> AllToAll:
    return AllToAll(
        scenario.n_processes,
        spacing=float(scenario.metadata.get("workload_spacing", 0.0)),
    )


@register_workload(
    "uniform_stream",
    description="Fixed-rate stream from process 0 (metadata: stream_messages, "
                "stream_interval)",
)
def _build_uniform_stream(scenario: "Scenario",
                          rng: random.Random) -> UniformStream:
    return UniformStream(
        int(scenario.metadata.get("stream_messages", scenario.n_processes)),
        interval=float(scenario.metadata.get("stream_interval", 5.0)),
    )


@register_workload(
    "burst",
    description="Back-to-back burst from process 0 (metadata: burst_size)",
)
def _build_burst(scenario: "Scenario", rng: random.Random) -> BurstWorkload:
    return BurstWorkload(
        int(scenario.metadata.get("burst_size", scenario.n_processes))
    )


@register_workload(
    "poisson",
    description="Poisson arrivals, random senders (metadata: poisson_messages, "
                "poisson_rate); draws from the run's seeded workload stream",
)
def _build_poisson(scenario: "Scenario", rng: random.Random) -> PoissonStream:
    return PoissonStream(
        int(scenario.metadata.get("poisson_messages", scenario.n_processes)),
        scenario.n_processes,
        float(scenario.metadata.get("poisson_rate", 0.5)),
        rng,
    )
