"""Declarative threshold rules over metric snapshots, for CI gates.

A rule names a metric in the JSON snapshot (see
:mod:`repro.obs.exposition`), an aggregation over its matching samples,
a comparison and a threshold — the rule *fires* when the comparison
holds, i.e. the rule expresses the bad condition::

    {"name": "lease-reclaim-storm",
     "metric": "repro_lease_reclaims_total",
     "op": ">", "threshold": 10}

    {"name": "slow-cells",
     "metric": "repro_batch_cell_seconds",
     "quantile": 0.99, "op": ">", "threshold": 60.0}

Histogram rules take ``quantile`` (estimated from the cumulative buckets
with the usual ``histogram_quantile`` linear interpolation); counter and
gauge rules aggregate sample values with ``aggregate`` (``sum``,
``max`` or ``min``, default ``sum``).  ``labels`` filters samples to
those whose labels are a superset of the given mapping.  A metric absent
from the snapshot evaluates as ``0`` (the natural reading for counters)
unless ``if_absent`` is ``"skip"`` or ``"fire"``.

:func:`evaluate` returns an :class:`AlertReport` whose ``exit_code`` is
non-zero iff any rule fired — the CI ``obs`` job runs
``repro-urb obs check`` (or ``python -m repro.obs.alerts``) against the
final snapshot of a smoke campaign.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

__all__ = ["AlertRule", "RuleResult", "AlertReport", "default_rules",
           "load_rules", "evaluate", "main"]

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}
_AGGREGATES = ("sum", "max", "min")
_IF_ABSENT = ("zero", "skip", "fire")


@dataclass(frozen=True)
class AlertRule:
    """One threshold rule (see module docs for the JSON form)."""

    name: str
    metric: str
    op: str
    threshold: float
    labels: Mapping[str, str] = field(default_factory=dict)
    aggregate: str = "sum"
    quantile: Optional[float] = None
    if_absent: str = "zero"

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"rule {self.name!r}: unknown op {self.op!r}")
        if self.aggregate not in _AGGREGATES:
            raise ValueError(
                f"rule {self.name!r}: unknown aggregate {self.aggregate!r}")
        if self.if_absent not in _IF_ABSENT:
            raise ValueError(
                f"rule {self.name!r}: unknown if_absent {self.if_absent!r}")
        if self.quantile is not None and not 0.0 < self.quantile <= 1.0:
            raise ValueError(
                f"rule {self.name!r}: quantile must be in (0, 1]")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AlertRule":
        known = {"name", "metric", "op", "threshold", "labels",
                 "aggregate", "quantile", "if_absent"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown rule keys: {sorted(unknown)}")
        return cls(
            name=str(data["name"]),
            metric=str(data["metric"]),
            op=str(data["op"]),
            threshold=float(data["threshold"]),
            labels=dict(data.get("labels", {})),
            aggregate=str(data.get("aggregate", "sum")),
            quantile=(float(data["quantile"])
                      if data.get("quantile") is not None else None),
            if_absent=str(data.get("if_absent", "zero")),
        )


@dataclass(frozen=True)
class RuleResult:
    """Evaluation of one rule against one snapshot."""

    rule: AlertRule
    value: Optional[float]
    firing: bool
    detail: str

    def describe(self) -> str:
        state = "FIRING" if self.firing else "ok"
        shown = "absent" if self.value is None else f"{self.value:g}"
        return (f"[{state:>6}] {self.rule.name}: "
                f"{self.rule.metric} = {shown} "
                f"(rule: {self.rule.op} {self.rule.threshold:g}) "
                f"— {self.detail}")


@dataclass(frozen=True)
class AlertReport:
    """All rule results; ``exit_code`` is the CI contract."""

    results: tuple[RuleResult, ...]

    @property
    def firing(self) -> tuple[RuleResult, ...]:
        return tuple(r for r in self.results if r.firing)

    @property
    def exit_code(self) -> int:
        return 1 if self.firing else 0

    def describe(self) -> str:
        lines = [r.describe() for r in self.results]
        lines.append(
            f"{len(self.firing)} of {len(self.results)} rule(s) firing")
        return "\n".join(lines)


def default_rules() -> tuple[AlertRule, ...]:
    """The built-in rule set the CI ``obs`` job evaluates.

    Thresholds are deliberately loose: they catch pathologies (reclaim
    storms, wedged cells, workers erroring), not normal variance.
    """
    return (
        AlertRule(name="lease-reclaim-storm",
                  metric="repro_lease_reclaims_total",
                  op=">", threshold=25),
        AlertRule(name="batch-cell-p99-slow",
                  metric="repro_batch_cell_seconds",
                  quantile=0.99, op=">", threshold=120.0),
        AlertRule(name="worker-cell-p99-slow",
                  metric="repro_worker_cell_seconds",
                  quantile=0.99, op=">", threshold=120.0),
        AlertRule(name="batch-cell-failures",
                  metric="repro_batch_cells_total",
                  labels={"status": "failed"},
                  op=">", threshold=0),
        AlertRule(name="store-missing-blobs",
                  metric="repro_store_gc_total",
                  labels={"kind": "missing_blobs"},
                  op=">", threshold=0),
    )


def load_rules(source: Union[str, Path]) -> tuple[AlertRule, ...]:
    """Parse a JSON rules file: a list of rule objects, or ``{"rules":
    [...]}``."""
    data = json.loads(Path(source).read_text(encoding="utf-8"))
    if isinstance(data, Mapping):
        data = data.get("rules", [])
    if not isinstance(data, list):
        raise ValueError("rules file must be a JSON list (or {'rules': []})")
    return tuple(AlertRule.from_dict(entry) for entry in data)


# --------------------------------------------------------------------------- #
# evaluation
# --------------------------------------------------------------------------- #
def _matching_samples(metric: Mapping[str, Any],
                      labels: Mapping[str, str]) -> list[Mapping[str, Any]]:
    wanted = {k: str(v) for k, v in labels.items()}
    out = []
    for sample in metric.get("samples", ()):
        sample_labels = sample.get("labels", {})
        if all(sample_labels.get(k) == v for k, v in wanted.items()):
            out.append(sample)
    return out


def _merge_buckets(samples: Sequence[Mapping[str, Any]]) -> tuple[
        list[tuple[float, int]], int]:
    """Sum cumulative buckets across samples; returns (bounds+counts,
    total count).  The ``+Inf`` entry is folded into the total."""
    merged: dict[float, int] = {}
    total = 0
    for sample in samples:
        total += int(sample.get("count", 0))
        for bound_text, cum in sample.get("buckets", {}).items():
            if bound_text == "+Inf":
                continue
            merged[float(bound_text)] = merged.get(float(bound_text), 0) \
                + int(cum)
    return sorted(merged.items()), total


def _quantile_from_buckets(samples: Sequence[Mapping[str, Any]],
                           q: float) -> Optional[float]:
    """``histogram_quantile``-style estimate from cumulative buckets."""
    buckets, total = _merge_buckets(samples)
    if total == 0:
        return None
    rank = q * total
    previous_bound = 0.0
    previous_cum = 0
    for bound, cum in buckets:
        if cum >= rank:
            if cum == previous_cum:
                return bound
            fraction = (rank - previous_cum) / (cum - previous_cum)
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound, previous_cum = bound, cum
    # Rank falls in the +Inf bucket: the estimate saturates at the
    # highest finite bound (the standard Prometheus behaviour).
    return buckets[-1][0] if buckets else None


def _rule_value(rule: AlertRule,
                snapshot: Mapping[str, Any]) -> tuple[Optional[float], str]:
    metric = snapshot.get("metrics", {}).get(rule.metric)
    if metric is None:
        return None, "metric absent from snapshot"
    samples = _matching_samples(metric, rule.labels)
    if not samples:
        return None, f"no samples match labels {dict(rule.labels)}"
    if rule.quantile is not None:
        if metric.get("type") != "histogram":
            raise ValueError(
                f"rule {rule.name!r}: quantile on non-histogram "
                f"{rule.metric!r}")
        value = _quantile_from_buckets(samples, rule.quantile)
        if value is None:
            return None, "histogram has no observations"
        return value, f"p{rule.quantile * 100:g} over {len(samples)} sample(s)"
    values = [float(s["value"]) for s in samples]
    if rule.aggregate == "max":
        return max(values), f"max over {len(values)} sample(s)"
    if rule.aggregate == "min":
        return min(values), f"min over {len(values)} sample(s)"
    return sum(values), f"sum over {len(values)} sample(s)"


def evaluate(snapshot: Mapping[str, Any],
             rules: Optional[Sequence[AlertRule]] = None) -> AlertReport:
    """Evaluate *rules* (default: :func:`default_rules`) on a snapshot."""
    if rules is None:
        rules = default_rules()
    results = []
    for rule in rules:
        value, detail = _rule_value(rule, snapshot)
        if value is None:
            if rule.if_absent == "skip":
                results.append(RuleResult(rule, None, False,
                                          detail + " (skipped)"))
                continue
            if rule.if_absent == "fire":
                results.append(RuleResult(rule, None, True, detail))
                continue
            value = 0.0
            detail += " (treated as 0)"
        firing = _OPS[rule.op](value, rule.threshold)
        results.append(RuleResult(rule, value, firing, detail))
    return AlertReport(results=tuple(results))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.obs.alerts SNAPSHOT [--rules FILE]``."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.alerts",
        description="Evaluate threshold alert rules on a metrics snapshot.",
    )
    parser.add_argument("snapshot", help="JSON snapshot file "
                        "(--metrics-out / GET /snapshot output)")
    parser.add_argument("--rules", default=None,
                        help="JSON rules file (default: built-in rules)")
    args = parser.parse_args(argv)
    snapshot = json.loads(Path(args.snapshot).read_text(encoding="utf-8"))
    rules = load_rules(args.rules) if args.rules else None
    report = evaluate(snapshot, rules)
    sys.stdout.write(report.describe() + "\n")
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
