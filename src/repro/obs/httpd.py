"""Live introspection endpoint: a stdlib HTTP server for scrapes.

:class:`ObsServer` wraps ``http.server.ThreadingHTTPServer`` and serves
three read-only routes off the process-wide registry:

* ``GET /metrics`` — Prometheus text exposition format v0.0.4;
* ``GET /healthz`` — liveness JSON (``status``, ``uptime_seconds``);
* ``GET /snapshot`` — the key-sorted JSON snapshot.

When a process-wide :class:`~repro.obs.federation.Federation` is
installed (a coordinator serving a distributed job), ``/metrics`` and
``/snapshot`` consult it at request time, so each scrape also carries
the ``worker="..."`` per-worker series and ``worker="_total"``
aggregates merged from the workers' flushed snapshots.

Opt-in via ``--metrics-port`` on the CLI verbs (port ``0`` binds an
ephemeral port; the bound port is reported via :attr:`ObsServer.port`).
The server runs on a daemon thread, so a crashing run never hangs on
shutdown, and request logging is silenced — scrapes happen every few
seconds and would drown real output.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .exposition import CONTENT_TYPE_PROMETHEUS, render_json, render_prometheus
from .registry import MetricsRegistry, REGISTRY

__all__ = ["ObsServer", "start_server"]


class ObsServer:
    """Serve ``/metrics``, ``/healthz`` and ``/snapshot`` off a registry."""

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else REGISTRY
        self.started_unix = time.time()
        obs_server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *args: object) -> None:
                pass

            def _respond(self, status: int, content_type: str,
                         body: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                from .federation import get_federation

                route = self.path.split("?", 1)[0]
                federation = get_federation()
                if route == "/metrics":
                    if federation is not None:
                        body = federation.render_prometheus()
                    else:
                        body = render_prometheus(obs_server.registry)
                    self._respond(200, CONTENT_TYPE_PROMETHEUS, body)
                elif route == "/healthz":
                    body = json.dumps({
                        "status": "ok",
                        "uptime_seconds":
                            time.time() - obs_server.started_unix,
                    }, sort_keys=True)
                    self._respond(200, "application/json", body)
                elif route == "/snapshot":
                    if federation is not None:
                        body = json.dumps(federation.snapshot(),
                                          indent=2, sort_keys=True)
                    else:
                        body = render_json(obs_server.registry)
                    self._respond(200, "application/json", body)
                else:
                    self._respond(404, "text/plain; charset=utf-8",
                                  "not found\n")

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The actually bound port (useful with ``port=0``)."""
        return int(self._httpd.server_address[1])

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    def start(self) -> "ObsServer":
        """Begin serving on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"obs-httpd:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def start_server(port: int = 0, host: str = "127.0.0.1",
                 registry: Optional[MetricsRegistry] = None) -> ObsServer:
    """Create and start an :class:`ObsServer`; caller owns shutdown."""
    return ObsServer(port=port, host=host, registry=registry).start()
