"""Metrics federation: worker snapshots merged into a cluster view.

A distributed campaign runs one coordinator plus N worker *processes*,
each with its own in-process :class:`~repro.obs.registry.MetricsRegistry`
— so without help, worker metrics die with the worker and the
coordinator's ``/metrics`` only shows its own counters.  Federation
closes the gap with files, not sockets: the job directory is already the
shared medium (it holds the lease table), so each worker runs a
:class:`SnapshotFlusher` that periodically writes its PR-8 JSON snapshot
to ``<jobdir>/obs/<worker_id>/metrics.json`` (atomic rename, versioned
envelope), and the coordinator's :class:`Federation` re-reads those files
on every scrape and merges them:

* **counters** — summed across workers per original label tuple into a
  ``worker="_total"`` aggregate, alongside per-worker ``worker="<id>"``
  series;
* **histograms** — cumulative buckets summed per bound, plus summed
  ``sum``/``count``, same ``_total`` + per-worker scheme;
* **gauges** — last-write-wins per worker (each worker's file *is* its
  latest write), exposed per-worker only: summing a point-in-time gauge
  across processes is rarely meaningful.

The merged view is exposed on the coordinator's existing ``ObsServer``
(``/metrics`` and ``/snapshot`` consult the process-wide federation at
request time) and in ``campaign status --watch``.  Like everything in
:mod:`repro.obs` this is off by default — no federation is installed
unless a traced/observed distributed job sets one up — and reads no
simulation state, so disabled runs stay bit-identical.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Optional, Union

from . import exposition as _exposition
from .registry import MetricsRegistry, REGISTRY

__all__ = [
    "FEDERATION_VERSION",
    "Federation",
    "SnapshotFlusher",
    "TOTAL_WORKER",
    "get_federation",
    "merge_snapshots",
    "read_snapshots",
    "render_federated_prometheus",
    "set_federation",
    "write_snapshot",
]

#: Bump when the snapshot envelope layout changes incompatibly.
FEDERATION_VERSION = 1

#: File name each worker flushes inside ``<jobdir>/obs/<worker_id>/``.
SNAPSHOT_FILE = "metrics.json"

#: The reserved ``worker`` label value carrying cross-worker aggregates.
TOTAL_WORKER = "_total"


# --------------------------------------------------------------------- #
# worker side: periodic atomic snapshot flushes
# --------------------------------------------------------------------- #
def write_snapshot(obs_dir: Union[str, Path], worker: str, *, seq: int = 0,
                   registry: Optional[MetricsRegistry] = None) -> Path:
    """Write one versioned snapshot envelope for *worker*, atomically.

    The file is replaced wholesale (tmp + ``os.replace``), so readers
    always see a complete, self-consistent document — the worker's
    *latest* write, which is exactly the last-write-wins semantics
    federation wants for gauges.
    """
    worker_dir = Path(obs_dir) / worker
    worker_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "federation_version": FEDERATION_VERSION,
        "worker": worker,
        "seq": seq,
        "written_unix": time.time(),
        "snapshot": _exposition.snapshot(registry),
    }
    path = worker_dir / SNAPSHOT_FILE
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    tmp.replace(path)
    return path


def default_flush_interval() -> float:
    """Seconds between snapshot flushes (``REPRO_OBS_FLUSH_INTERVAL``
    overrides the 1 s default — CI tightens it for very short jobs)."""
    try:
        return float(os.environ.get("REPRO_OBS_FLUSH_INTERVAL", "1.0"))
    except ValueError:
        return 1.0


class SnapshotFlusher:
    """Daemon thread flushing a worker's registry to the job directory.

    ``stop()`` performs one final flush, so the post-completion totals
    the coordinator aggregates always include the worker's last cell.
    """

    def __init__(self, obs_dir: Union[str, Path], worker: str,
                 interval: Optional[float] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.obs_dir = Path(obs_dir)
        self.worker = worker
        if interval is None:
            interval = default_flush_interval()
        self.interval = max(float(interval), 0.05)
        self.registry = registry
        self._seq = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def flush(self) -> Path:
        self._seq += 1
        return write_snapshot(self.obs_dir, self.worker, seq=self._seq,
                              registry=self.registry)

    def start(self) -> "SnapshotFlusher":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name=f"obs-flush:{self.worker}", daemon=True)
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.flush()
            except OSError:
                # A transiently unwritable jobdir (NFS hiccup, teardown
                # race) must never kill the worker; the next tick retries.
                pass

    def stop(self) -> None:
        """Stop the thread and write the final snapshot (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self.flush()
        except OSError:
            pass

    def __enter__(self) -> "SnapshotFlusher":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


# --------------------------------------------------------------------- #
# coordinator side: read + merge
# --------------------------------------------------------------------- #
def read_snapshots(obs_dir: Union[str, Path]) -> dict[str, dict[str, Any]]:
    """``{worker: envelope}`` for every readable snapshot under *obs_dir*.

    Unreadable or half-written files are skipped (atomic replace makes
    that rare, but a scrape must never 500 because one worker died
    mid-rename); envelopes with a foreign ``federation_version`` raise —
    silent version skew would merge apples into oranges.
    """
    snapshots: dict[str, dict[str, Any]] = {}
    root = Path(obs_dir)
    if not root.is_dir():
        return snapshots
    for path in sorted(root.glob(f"*/{SNAPSHOT_FILE}")):
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        version = envelope.get("federation_version")
        if version != FEDERATION_VERSION:
            raise ValueError(
                f"{path} has federation_version {version!r}, this library "
                f"speaks version {FEDERATION_VERSION}")
        worker = str(envelope.get("worker") or path.parent.name)
        snapshots[worker] = envelope
    return snapshots


def _label_key(labels: dict[str, Any]) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def merge_snapshots(snapshots: dict[str, dict[str, Any]]) -> dict[str, Any]:
    """Merge worker envelopes into one exposition-shaped metrics dict.

    The result mirrors the PR-8 snapshot ``metrics`` schema with one
    addition: every sample carries a ``worker`` label — ``worker="<id>"``
    for the per-worker series and ``worker="_total"`` for the cross-worker
    aggregate (counters and histograms only; gauges stay per-worker).
    """
    merged: dict[str, Any] = {}
    # Aggregation state per (metric, original-label-tuple).
    counter_totals: dict[str, dict[tuple, float]] = {}
    hist_totals: dict[str, dict[tuple, dict[str, Any]]] = {}

    for worker in sorted(snapshots):
        metrics = snapshots[worker].get("snapshot", {}).get("metrics", {})
        for name, metric in metrics.items():
            kind = metric.get("type")
            entry = merged.setdefault(name, {
                "type": kind,
                "help": metric.get("help", ""),
                "labelnames": list(metric.get("labelnames", [])) + ["worker"],
                "samples": [],
            })
            for sample in metric.get("samples", []):
                labels = dict(sample.get("labels", {}))
                tagged = {**labels, "worker": worker}
                if kind in ("counter", "gauge"):
                    value = float(sample.get("value", 0.0))
                    entry["samples"].append(
                        {"labels": tagged, "value": value})
                    if kind == "counter":
                        per_name = counter_totals.setdefault(name, {})
                        key = _label_key(labels)
                        per_name[key] = per_name.get(key, 0.0) + value
                elif kind == "histogram":
                    entry["samples"].append({
                        "labels": tagged,
                        "count": sample.get("count", 0),
                        "sum": sample.get("sum", 0.0),
                        "buckets": dict(sample.get("buckets", {})),
                    })
                    per_name = hist_totals.setdefault(name, {})
                    key = _label_key(labels)
                    total = per_name.setdefault(
                        key, {"labels": labels, "count": 0, "sum": 0.0,
                              "buckets": {}})
                    total["count"] += int(sample.get("count", 0))
                    total["sum"] += float(sample.get("sum", 0.0))
                    for bound, cum in sample.get("buckets", {}).items():
                        total["buckets"][bound] = \
                            total["buckets"].get(bound, 0) + int(cum)

    for name, per_name in counter_totals.items():
        for key, value in sorted(per_name.items()):
            merged[name]["samples"].append({
                "labels": {**dict(key), "worker": TOTAL_WORKER},
                "value": value,
            })
    for name, per_name in hist_totals.items():
        for key, total in sorted(per_name.items()):
            merged[name]["samples"].append({
                "labels": {**total["labels"], "worker": TOTAL_WORKER},
                "count": total["count"],
                "sum": total["sum"],
                "buckets": dict(total["buckets"]),
            })
    return merged


def _bucket_order(bound: str) -> float:
    return float("inf") if bound == "+Inf" else float(bound)


def _render_metric_lines(name: str, metric: dict[str, Any],
                         lines: list[str]) -> None:
    """Append exposition sample lines for one snapshot-shaped metric."""
    label_block = _exposition._label_block
    format_value = _exposition._format_value
    kind = metric.get("type")
    for sample in metric.get("samples", []):
        labels = sample.get("labels", {})
        names = tuple(sorted(labels))
        values = tuple(str(labels[n]) for n in names)
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{label_block(names, values)} "
                         f"{format_value(float(sample.get('value', 0.0)))}")
        elif kind == "histogram":
            buckets = sample.get("buckets", {})
            for bound in sorted(buckets, key=_bucket_order):
                block = label_block(names, values, extra=("le", bound))
                lines.append(f"{name}_bucket{block} {int(buckets[bound])}")
            block = label_block(names, values)
            lines.append(f"{name}_sum{block} "
                         f"{format_value(float(sample.get('sum', 0.0)))}")
            lines.append(f"{name}_count{block} "
                         f"{int(sample.get('count', 0))}")


def render_federated_prometheus(
        federated: dict[str, Any],
        registry: Optional[MetricsRegistry] = None) -> str:
    """One text-exposition body: local registry plus federated series.

    Each metric name gets a single ``# HELP``/``# TYPE`` header block
    followed by the local (coordinator) samples and then the federated
    ``worker=...`` samples, so standard parsers see a well-formed page.
    """
    registry = registry if registry is not None else REGISTRY
    local = _exposition.snapshot(registry)["metrics"]
    lines: list[str] = []
    for name in sorted(set(local) | set(federated)):
        meta = local.get(name) or federated[name]
        help_text = _exposition._escape_help(meta.get("help", ""))
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {meta.get('type')}")
        if name in local:
            _render_metric_lines(name, local[name], lines)
        if name in federated:
            _render_metric_lines(name, federated[name], lines)
    return "\n".join(lines) + "\n"


class Federation:
    """The coordinator's read-side handle on a job's snapshot directory."""

    def __init__(self, obs_dir: Union[str, Path],
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.obs_dir = Path(obs_dir)
        self.registry = registry

    def collect(self) -> dict[str, dict[str, Any]]:
        """Fresh ``{worker: envelope}`` from disk (no caching — scrapes
        are seconds apart and files are tiny)."""
        return read_snapshots(self.obs_dir)

    def merged_metrics(self) -> dict[str, Any]:
        return merge_snapshots(self.collect())

    def workers(self) -> dict[str, dict[str, Any]]:
        """``{worker: {"seq", "written_unix", "age_seconds"}}`` liveness."""
        now = time.time()
        return {
            worker: {
                "seq": envelope.get("seq", 0),
                "written_unix": envelope.get("written_unix", 0.0),
                "age_seconds": now - float(envelope.get("written_unix",
                                                        now)),
            }
            for worker, envelope in self.collect().items()
        }

    def render_prometheus(self) -> str:
        return render_federated_prometheus(self.merged_metrics(),
                                           self.registry)

    def snapshot(self) -> dict[str, Any]:
        """The local PR-8 snapshot plus a ``federation`` section."""
        document = _exposition.snapshot(self.registry)
        document["federation"] = {
            "federation_version": FEDERATION_VERSION,
            "workers": self.workers(),
            "metrics": self.merged_metrics(),
        }
        return document


# --------------------------------------------------------------------- #
# process-wide handle (consulted by the ObsServer at request time)
# --------------------------------------------------------------------- #
_FEDERATION: Optional[Federation] = None


def set_federation(federation: Optional[Federation]) -> Optional[Federation]:
    """Install (or clear, with ``None``) the process-wide federation.

    Returns the previous handle so callers can restore it.
    """
    global _FEDERATION
    previous = _FEDERATION
    _FEDERATION = federation
    return previous


def get_federation() -> Optional[Federation]:
    """The process-wide federation (``None`` outside a distributed job)."""
    return _FEDERATION
