"""Named metric instruments and the process-wide registry.

Three instrument kinds, modelled on the Prometheus client data model:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — point-in-time values that move both ways;
* :class:`Histogram` — cumulative-bucket distributions with sum/count.

Every instrument supports **labels**: a fixed tuple of label *names* is
declared at creation and each recording call addresses one label-value
combination (a *child*).  Children materialise lazily on first use; an
unlabelled instrument always exposes its zero value so required series
exist from the moment the instrument is declared.

Thread safety and cost model
----------------------------
Each instrument guards its children map with one ``threading.Lock``, so
concurrent updates from :class:`~repro.experiments.batch.BatchRunner`
callbacks, HTTP scrape threads and renew loops never lose increments.
Every recording method first checks the module-level enabled flag and
returns immediately when observability is off — the disabled cost is one
attribute read and a branch.  Hot call sites are expected to guard with
:func:`enabled` *before* computing label values or doing any arithmetic,
mirroring the ``MetricsCollector.active`` fast-flag discipline in the
simulation layer.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "reset",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, tuned for wall-clock seconds of simulation
#: cells (milliseconds up to a minute); the catch-all +Inf bucket is
#: implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class _Runtime:
    """Holder for the process-wide enabled flag (one attribute read)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


_RUNTIME = _Runtime()


def enable() -> None:
    """Turn observability on process-wide."""
    _RUNTIME.enabled = True


def disable() -> None:
    """Turn observability off process-wide (the default)."""
    _RUNTIME.enabled = False


def enabled() -> bool:
    """Whether instruments currently record anything."""
    return _RUNTIME.enabled


def _label_values(instrument: "_Instrument",
                  labels: dict[str, str]) -> tuple[str, ...]:
    if set(labels) != set(instrument.labelnames):
        raise ValueError(
            f"metric {instrument.name!r} takes labels "
            f"{instrument.labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in instrument.labelnames)


class _Instrument:
    """Common machinery: identity, label validation, the child lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(labelnames)) != len(labelnames):
            raise ValueError(f"duplicate label names in {tuple(labelnames)}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    # Subclasses expose ``samples()`` -> list of per-child payloads used
    # by the exposition layer; the list is a consistent point-in-time
    # copy taken under the instrument lock.


class Counter(_Instrument):
    """A monotonically increasing total (use ``*_total`` names)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add *amount* (must be >= 0) to one child's total."""
        if not _RUNTIME.enabled:
            return
        if amount < 0:
            raise ValueError("counters can only increase")
        key = _label_values(self, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current total of one child (0.0 if never incremented)."""
        key = _label_values(self, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> list[tuple[tuple[str, ...], float]]:
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Instrument):
    """A value that can go up and down (states, in-flight work)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def set(self, value: float, **labels: str) -> None:
        if not _RUNTIME.enabled:
            return
        key = _label_values(self, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not _RUNTIME.enabled:
            return
        key = _label_values(self, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = _label_values(self, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> list[tuple[tuple[str, ...], float]]:
        with self._lock:
            return sorted(self._values.items())


class _HistogramChild:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """A cumulative-bucket distribution (Prometheus histogram semantics).

    ``buckets`` are the finite upper bounds, strictly increasing; the
    ``+Inf`` catch-all is implicit.  Exposition reports *cumulative*
    per-bucket counts, ``_sum`` and ``_count``, which is exactly what
    ``histogram_quantile`` (and :mod:`repro.obs.alerts`) consume.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in (buckets if buckets is not None
                                          else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= n for b, n in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.buckets = bounds
        self._children: dict[tuple[str, ...], _HistogramChild] = {}
        if not self.labelnames:
            self._children[()] = _HistogramChild(len(bounds))

    def observe(self, value: float, **labels: str) -> None:
        if not _RUNTIME.enabled:
            return
        key = _label_values(self, labels)
        value = float(value)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = _HistogramChild(len(self.buckets))
                self._children[key] = child
            # Non-cumulative per-bucket counts internally; exposition
            # accumulates them so a single observe touches one slot.
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    child.bucket_counts[i] += 1
                    break
            child.sum += value
            child.count += 1

    def child_state(self, **labels: str) -> tuple[list[int], float, int]:
        """(cumulative bucket counts, sum, count) of one child."""
        key = _label_values(self, labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                return [0] * len(self.buckets), 0.0, 0
            cumulative: list[int] = []
            running = 0
            for c in child.bucket_counts:
                running += c
                cumulative.append(running)
            return cumulative, child.sum, child.count

    def samples(self) -> list[tuple[tuple[str, ...],
                                    tuple[list[int], float, int]]]:
        with self._lock:
            out = []
            for key, child in sorted(self._children.items()):
                cumulative: list[int] = []
                running = 0
                for c in child.bucket_counts:
                    running += c
                    cumulative.append(running)
                out.append((key, (cumulative, child.sum, child.count)))
            return out


class MetricsRegistry:
    """Name-keyed instrument collection with get-or-create semantics.

    Declaring an instrument twice with the same kind and label names
    returns the existing one (so instrumentation sites never need module
    state); re-declaring with a different shape raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls: type, name: str, help: str,
                       labelnames: Sequence[str],
                       **kwargs: Any) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"  # type: ignore[attr-defined]
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} registered with labels "
                        f"{existing.labelnames}, requested {tuple(labelnames)}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        inst = self._get_or_create(Counter, name, help, labelnames)
        assert isinstance(inst, Counter)
        return inst

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        inst = self._get_or_create(Gauge, name, help, labelnames)
        assert isinstance(inst, Gauge)
        return inst

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        inst = self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)
        assert isinstance(inst, Histogram)
        return inst

    def instruments(self) -> list[_Instrument]:
        """Every registered instrument, name-sorted (a stable snapshot)."""
        with self._lock:
            return [self._instruments[name]
                    for name in sorted(self._instruments)]

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def reset(self) -> None:
        """Drop every instrument (tests; never called on live paths)."""
        with self._lock:
            self._instruments.clear()


#: The process-wide default registry every subsystem records into.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "",
            labelnames: Sequence[str] = ()) -> Counter:
    """Get-or-create a counter on the default registry."""
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "",
          labelnames: Sequence[str] = ()) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return REGISTRY.gauge(name, help, labelnames)


def histogram(name: str, help: str = "",
              labelnames: Sequence[str] = (),
              buckets: Optional[Iterable[float]] = None) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return REGISTRY.histogram(
        name, help, labelnames,
        buckets=tuple(buckets) if buckets is not None else None)


def reset() -> None:
    """Clear the default registry and disable recording (tests).

    Also clears the process-wide trace context, process name and
    federation handle so one test's tracing state never leaks into the
    next (imports deferred: those modules import this one).
    """
    REGISTRY.reset()
    disable()
    from . import federation, tracing
    tracing.set_context(None)
    tracing.set_process_name(None)
    federation.set_federation(None)
