"""Render a :class:`~repro.obs.registry.MetricsRegistry` for consumers.

Two formats:

* :func:`render_prometheus` — Prometheus text exposition format v0.0.4
  (``# HELP`` / ``# TYPE`` headers, one sample per line, histograms as
  cumulative ``_bucket``/``_sum``/``_count`` series with ``le`` labels);
* :func:`snapshot` / :func:`render_json` — a key-sorted JSON document,
  the machine-readable form consumed by ``--metrics-out``, the
  ``/snapshot`` endpoint, ``repro-urb obs snapshot`` and
  :mod:`repro.obs.alerts`.

The snapshot schema (version 1)::

    {
      "snapshot_version": 1,
      "generated_unix": 1723100000.0,
      "metrics": {
        "<name>": {
          "type": "counter" | "gauge" | "histogram",
          "help": "...",
          "labelnames": ["engine", ...],
          "samples": [
            {"labels": {"engine": "reference"}, "value": 12.0},      # counter/gauge
            {"labels": {...}, "count": 10, "sum": 1.25,              # histogram
             "buckets": {"0.005": 2, ..., "+Inf": 10}}               # cumulative
          ]
        }
      }
    }
"""

from __future__ import annotations

import json
import time
from typing import Any, Optional

from .registry import Counter, Gauge, Histogram, MetricsRegistry, REGISTRY

__all__ = ["render_prometheus", "render_json", "snapshot",
           "CONTENT_TYPE_PROMETHEUS"]

#: The Content-Type header value of the ``/metrics`` endpoint.
CONTENT_TYPE_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2 ** 53:
        return str(int(value))
    return repr(float(value))


def _label_block(names: tuple[str, ...], values: tuple[str, ...],
                 extra: Optional[tuple[str, str]] = None) -> str:
    pairs = [f'{n}="{_escape_label_value(v)}"'
             for n, v in zip(names, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape_label_value(extra[1])}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry's current state in text exposition format v0.0.4."""
    registry = registry if registry is not None else REGISTRY
    lines: list[str] = []
    for inst in registry.instruments():
        lines.append(f"# HELP {inst.name} {_escape_help(inst.help)}")
        lines.append(f"# TYPE {inst.name} {inst.kind}")
        if isinstance(inst, (Counter, Gauge)):
            for values, value in inst.samples():
                block = _label_block(inst.labelnames, values)
                lines.append(f"{inst.name}{block} {_format_value(value)}")
        elif isinstance(inst, Histogram):
            for values, (cumulative, total, count) in inst.samples():
                for bound, cum in zip(inst.buckets, cumulative):
                    block = _label_block(inst.labelnames, values,
                                         extra=("le", _format_value(bound)))
                    lines.append(f"{inst.name}_bucket{block} {cum}")
                block = _label_block(inst.labelnames, values,
                                     extra=("le", "+Inf"))
                lines.append(f"{inst.name}_bucket{block} {count}")
                block = _label_block(inst.labelnames, values)
                lines.append(
                    f"{inst.name}_sum{block} {_format_value(total)}")
                lines.append(f"{inst.name}_count{block} {count}")
    return "\n".join(lines) + "\n"


def snapshot(registry: Optional[MetricsRegistry] = None) -> dict[str, Any]:
    """A JSON-friendly snapshot of the registry (schema above)."""
    registry = registry if registry is not None else REGISTRY
    metrics: dict[str, Any] = {}
    for inst in registry.instruments():
        samples: list[dict[str, Any]] = []
        if isinstance(inst, (Counter, Gauge)):
            for values, value in inst.samples():
                samples.append({
                    "labels": dict(zip(inst.labelnames, values)),
                    "value": value,
                })
        elif isinstance(inst, Histogram):
            for values, (cumulative, total, count) in inst.samples():
                buckets = {_format_value(bound): cum
                           for bound, cum in zip(inst.buckets, cumulative)}
                buckets["+Inf"] = count
                samples.append({
                    "labels": dict(zip(inst.labelnames, values)),
                    "count": count,
                    "sum": total,
                    "buckets": buckets,
                })
        metrics[inst.name] = {
            "type": inst.kind,
            "help": inst.help,
            "labelnames": list(inst.labelnames),
            "samples": samples,
        }
    return {
        "snapshot_version": 1,
        "generated_unix": time.time(),
        "metrics": metrics,
    }


def render_json(registry: Optional[MetricsRegistry] = None,
                *, indent: Optional[int] = 2) -> str:
    """The JSON snapshot serialised with sorted keys (stable diffs)."""
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)
