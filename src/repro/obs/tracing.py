"""Dapper-style distributed tracing over the timeline sink.

A *trace* is one campaign-wide tree of timed spans.  The coordinator mints
a :class:`TraceContext` (``trace_id`` plus a root ``span_id``) when it
prepares a distributed job and persists it in the job directory; every
worker that joins the job inherits the context, so lease claims and cell
executions from all processes parent into one tree.  Span records are an
extension of the existing timeline JSON-lines format — same sink, new
``span`` kind carrying ``trace_id``/``span_id``/``parent_span_id`` — which
means :func:`phase` callsites upgrade to spans for free the moment a
context is active, and a plain ``tail -f`` still works.

Like the metrics registry, tracing is **off by default**: no context is
set, :func:`span` yields without recording anything, and :func:`phase`
falls back to the plain ``phase`` record.  Ids come from :mod:`uuid`, not
from any simulation RNG, so enabling tracing never perturbs determinism —
and with observability disabled nothing here runs at all.

Clock-skew normalisation
------------------------
Span timestamps are per-process wall clocks.  The lease table doubles as a
cross-process clock anchor: every claim/renew writes ``lease_expires =
worker_now + timeout`` into shared SQLite, and the coordinator's status
polls observe those rows at coordinator time, emitting ``anchor`` records
``(worker, worker_unix, observed_unix)`` — the *claim/grant pair*.  Since
the write provably happened before the observation, ``worker_unix >
observed_unix`` proves the worker clock runs at least that far ahead;
:func:`skew_offsets` takes the per-worker maximum of that violation (and
never shifts a worker whose clock cannot be proven ahead), which is exactly
enough to restore causal order in the merged tree.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

from . import timeline as _timeline

__all__ = [
    "TRACE_VERSION",
    "TraceContext",
    "TraceTree",
    "SpanNode",
    "chrome_trace_events",
    "current_context",
    "discover_span_files",
    "load_context",
    "load_trace",
    "mint_context",
    "phase",
    "save_context",
    "set_context",
    "set_process_name",
    "process_name",
    "skew_offsets",
    "span",
    "SpanHandle",
    "tracing_active",
]

#: Bump when the trace.json / span record layout changes incompatibly.
TRACE_VERSION = 1

#: File name of the persisted context inside a job's ``obs/`` directory.
TRACE_FILE = "trace.json"


def _new_id() -> str:
    """A fresh 16-hex-digit span id (64 bits, the Dapper/W3C width)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """One position in a trace: ids only, no timing state.

    ``parent_span_id`` is ``None`` for the root context minted by the
    coordinator; :meth:`child` derives the context a sub-span records
    under.
    """

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None

    def child(self) -> "TraceContext":
        """A new context one level down (fresh span id, parented here)."""
        return TraceContext(self.trace_id, _new_id(), self.span_id)


def mint_context() -> TraceContext:
    """A brand-new trace: fresh trace id plus its root span."""
    return TraceContext(trace_id=uuid.uuid4().hex, span_id=_new_id())


# --------------------------------------------------------------------- #
# process-wide state
# --------------------------------------------------------------------- #
# The *base* context is process-wide (set once per run by the coordinator,
# worker, or CLI session); the *active* context is thread-local so nested
# spans on concurrent threads parent correctly within their own chain.
_BASE: Optional[TraceContext] = None
_ACTIVE = threading.local()
# The span ``proc`` label is thread-local with a first-wins process-wide
# default: in-process tests run the coordinator and several workers as
# threads of one interpreter, and each must stamp its own identity.
_PROC = threading.local()
_PROC_DEFAULT: Optional[str] = None


def set_context(context: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install (or clear, with ``None``) the process-wide base context.

    Returns the previous base so callers can restore it.
    """
    global _BASE
    previous = _BASE
    _BASE = context
    return previous


def current_context() -> Optional[TraceContext]:
    """The innermost active context (thread-local), else the base."""
    active = getattr(_ACTIVE, "context", None)
    return active if active is not None else _BASE


def tracing_active() -> bool:
    """Whether :func:`span` currently records anything."""
    return current_context() is not None


def set_process_name(name: Optional[str]) -> Optional[str]:
    """Name stamped into every span's ``proc`` field (worker id, or
    ``coordinator``); returns the previous thread-local name.

    Sets the calling thread's label; the first non-``None`` name also
    becomes the process-wide default for threads that never set one
    (e.g. pool threads spawned by an instrumented layer).  ``None``
    clears both (tests).
    """
    global _PROC_DEFAULT
    previous = getattr(_PROC, "name", None)
    _PROC.name = name
    if name is None:
        _PROC_DEFAULT = None
    elif _PROC_DEFAULT is None:
        _PROC_DEFAULT = name
    return previous


def process_name() -> str:
    """The current span label (defaults to ``proc-<pid>``)."""
    import os

    return getattr(_PROC, "name", None) or _PROC_DEFAULT \
        or f"proc-{os.getpid()}"


# --------------------------------------------------------------------- #
# recording
# --------------------------------------------------------------------- #
class SpanHandle:
    """What :func:`span` yields: the child context plus live annotation.

    :meth:`annotate` attaches fields decided *inside* the block — a
    cell's outcome, a range's fate — which land on the span record
    emitted at exit.
    """

    __slots__ = ("context", "_fields")

    def __init__(self, context: TraceContext,
                 fields: dict[str, Any]) -> None:
        self.context = context
        self._fields = fields

    def annotate(self, **fields: Any) -> None:
        self._fields.update(fields)


@contextmanager
def span(name: str, **fields: Any) -> Iterator[Optional[SpanHandle]]:
    """Record one timed span under the current context.

    Yields a :class:`SpanHandle` (``None`` when tracing is off, making
    the wrapper free to leave in place).  The span record is emitted on
    exit through the timeline sink — one JSON line of kind ``span`` with
    ids, ``start_unix``/``end_unix``, wall/CPU seconds and an
    ``ok``/``error`` status; an exception inside the block records
    ``status: error`` and re-raises, mirroring ``Timeline.phase``.
    """
    parent = current_context()
    if parent is None:
        yield None
        return
    context = parent.child()
    previous = getattr(_ACTIVE, "context", None)
    _ACTIVE.context = context
    start_unix = time.time()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    status = "ok"
    try:
        yield SpanHandle(context, fields)
    except BaseException as exc:
        status = "error"
        fields.setdefault("error", f"{type(exc).__name__}: {exc}")
        raise
    finally:
        _ACTIVE.context = previous
        _timeline.emit(
            "span",
            trace_id=context.trace_id,
            span_id=context.span_id,
            parent_span_id=context.parent_span_id,
            name=name,
            proc=process_name(),
            status=status,
            start_unix=start_unix,
            end_unix=start_unix + (time.perf_counter() - wall0),
            wall_seconds=time.perf_counter() - wall0,
            cpu_seconds=time.process_time() - cpu0,
            **fields,
        )


def emit_root_span(context: TraceContext, name: str, *,
                   start_unix: float, **fields: Any) -> None:
    """Emit the trace's root span record (the coordinator's job span).

    The root context is minted long before its span can be closed, so the
    record is written explicitly at job completion rather than through the
    :func:`span` context manager.
    """
    _timeline.emit(
        "span",
        trace_id=context.trace_id,
        span_id=context.span_id,
        parent_span_id=None,
        name=name,
        proc=process_name(),
        status="ok",
        start_unix=start_unix,
        end_unix=time.time(),
        wall_seconds=time.time() - start_unix,
        cpu_seconds=0.0,
        **fields,
    )


@contextmanager
def phase(name: str, **fields: Any) -> Iterator[None]:
    """Trace-aware drop-in for :func:`repro.obs.timeline.phase`.

    With no active context this is exactly the plain timeline phase; with
    one, the callsite upgrades for free to a ``span`` record with ids and
    parenting (same sink, same ``name``/``status``/``wall_seconds``
    fields) — no instrumented layer needs to know about tracing.
    """
    if current_context() is None:
        with _timeline.phase(name, **fields):
            yield
        return
    with span(name, **fields):
        yield


# --------------------------------------------------------------------- #
# context persistence (the job directory hand-off)
# --------------------------------------------------------------------- #
def save_context(obs_dir: Union[str, Path], context: TraceContext,
                 **extra: Any) -> Path:
    """Persist *context* as ``<obs_dir>/trace.json`` for workers to inherit.

    ``minted_unix`` records the coordinator's clock at mint time; *extra*
    key/values (job name, suite) travel along for ``trace view`` headers.
    """
    obs_dir = Path(obs_dir)
    obs_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "trace_version": TRACE_VERSION,
        "trace_id": context.trace_id,
        "root_span_id": context.span_id,
        "minted_unix": time.time(),
        **extra,
    }
    path = obs_dir / TRACE_FILE
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n",
                   encoding="utf-8")
    tmp.replace(path)
    return path


def load_context(obs_dir: Union[str, Path]) -> Optional[TraceContext]:
    """Load the persisted job context (``None`` when the job is untraced).

    The returned context *is* the root — installing it as the process base
    makes every local span a child of the coordinator's job span.
    """
    path = Path(obs_dir) / TRACE_FILE
    if not path.exists():
        return None
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("trace_version") != TRACE_VERSION:
        raise ValueError(
            f"{path} has trace_version {data.get('trace_version')!r}, "
            f"this library speaks version {TRACE_VERSION}"
        )
    return TraceContext(trace_id=data["trace_id"],
                        span_id=data["root_span_id"])


def load_context_meta(obs_dir: Union[str, Path]) -> dict[str, Any]:
    """The raw ``trace.json`` payload (empty when absent)."""
    path = Path(obs_dir) / TRACE_FILE
    if not path.exists():
        return {}
    return json.loads(path.read_text(encoding="utf-8"))


# --------------------------------------------------------------------- #
# trace reconstruction (the `trace view` verb)
# --------------------------------------------------------------------- #
@dataclass
class SpanNode:
    """One span in the merged tree, timestamps already skew-normalised."""

    trace_id: str
    span_id: str
    parent_span_id: Optional[str]
    name: str
    proc: str
    status: str
    start_unix: float
    end_unix: float
    fields: dict[str, Any] = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)
    orphaned: bool = False

    @property
    def wall_seconds(self) -> float:
        return self.end_unix - self.start_unix

    def as_dict(self) -> dict[str, Any]:
        """JSON form for ``trace view --json`` (children by id)."""
        return {
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "name": self.name,
            "proc": self.proc,
            "status": self.status,
            "start_unix": self.start_unix,
            "end_unix": self.end_unix,
            "wall_seconds": self.wall_seconds,
            "orphaned": self.orphaned,
            "fields": self.fields,
            "children": [child.span_id for child in self.children],
        }


@dataclass
class TraceTree:
    """The reconstructed trace: roots, an id index, and bookkeeping."""

    trace_id: str
    roots: list[SpanNode]
    by_id: dict[str, SpanNode]
    orphans: list[SpanNode]
    offsets: dict[str, float]
    procs: tuple[str, ...]

    @property
    def span_count(self) -> int:
        return len(self.by_id)

    # ----------------------------------------------------------------- #
    def cell_spans(self) -> list[SpanNode]:
        """Every ``cell`` span, start-ordered (latency attribution)."""
        cells = [node for node in self.by_id.values()
                 if node.name == "cell"]
        cells.sort(key=lambda node: (node.start_unix, node.span_id))
        return cells

    def critical_path(self) -> list[SpanNode]:
        """Root-to-leaf chain ending at the latest finish under each hop.

        The chain answers "what was the job waiting on": from each span,
        descend into the child that finished last — the work whose
        completion gated the parent's completion.
        """
        if not self.roots:
            return []
        node = max(self.roots, key=lambda n: n.end_unix)
        path = [node]
        while node.children:
            node = max(node.children, key=lambda n: n.end_unix)
            path.append(node)
        return path

    def render(self, *, max_children: int = 40) -> str:
        """Indented text tree with durations, orphans flagged."""
        lines: list[str] = []

        def walk(node: SpanNode, depth: int) -> None:
            label = node.name
            detail = _node_detail(node)
            if detail:
                label += f" {detail}"
            flags = ""
            if node.status != "ok":
                flags += " [ERROR]"
            if node.orphaned:
                flags += " [ORPHAN]"
            lines.append(
                f"{'  ' * depth}{label}  ({node.proc}, "
                f"{node.wall_seconds:.3f}s){flags}"
            )
            shown = node.children[:max_children]
            for child in shown:
                walk(child, depth + 1)
            hidden = len(node.children) - len(shown)
            if hidden > 0:
                lines.append(f"{'  ' * (depth + 1)}... {hidden} more "
                             "child span(s)")

        for root in self.roots:
            walk(root, 0)
        return "\n".join(lines)


def _node_detail(node: SpanNode) -> str:
    """A short per-span annotation for the rendered tree."""
    fields = node.fields
    if node.name == "claim" and "range_id" in fields:
        return (f"range {fields['range_id']} "
                f"[{fields.get('start', '?')}"
                f"+{fields.get('count', '?')})")
    if node.name == "cell":
        key = str(fields.get("cell_key", ""))[:12]
        outcome = fields.get("outcome", "")
        group = fields.get("group", "")
        return " ".join(part for part in (group, key, outcome) if part)
    if node.name == "worker":
        return str(fields.get("worker", ""))
    if "job" in fields:
        return repr(fields["job"])
    return ""


_SPAN_CORE_FIELDS = frozenset({
    "ts", "kind", "trace_id", "span_id", "parent_span_id", "name", "proc",
    "status", "start_unix", "end_unix", "wall_seconds", "cpu_seconds",
})


def discover_span_files(jobdir: Union[str, Path]) -> list[Path]:
    """Every ``*.jsonl`` under ``<jobdir>/obs/`` (the per-process sinks).

    Accepts the job directory or its ``obs/`` subdirectory directly.
    """
    root = Path(jobdir)
    obs_dir = root if root.name == "obs" else root / "obs"
    if not obs_dir.is_dir():
        return []
    return sorted(obs_dir.rglob("*.jsonl"))


def read_records(paths: Iterable[Union[str, Path]]) \
        -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
    """``(span_records, anchor_records)`` from timeline JSON-lines files.

    Lines of other kinds (phases, lease traffic) are skipped; malformed
    lines raise — a truncated span file should be loud, not silently
    shorten the tree.
    """
    spans: list[dict[str, Any]] = []
    anchors: list[dict[str, Any]] = []
    for path in paths:
        for line_number, line in enumerate(
                Path(path).read_text(encoding="utf-8").splitlines(),
                start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed timeline line: {exc}"
                ) from exc
            kind = record.get("kind")
            if kind == "span":
                spans.append(record)
            elif kind == "anchor":
                anchors.append(record)
    return spans, anchors


def skew_offsets(anchors: Sequence[dict[str, Any]]) -> dict[str, float]:
    """Per-process clock corrections from claim/grant anchor pairs.

    Each anchor says: the worker's clock read ``worker_unix`` strictly
    *before* the coordinator's clock read ``observed_unix``.  When
    ``worker_unix > observed_unix`` the worker clock is provably at least
    that far ahead; the offset (subtracted from that worker's timestamps)
    is the maximum proven violation.  Workers never proven ahead keep
    offset 0 — a conservative rule that restores causal order without
    distorting well-synchronised runs.
    """
    offsets: dict[str, float] = {}
    for anchor in anchors:
        worker = anchor.get("worker")
        try:
            ahead = float(anchor["worker_unix"]) - \
                float(anchor["observed_unix"])
        except (KeyError, TypeError, ValueError):
            continue
        if worker and ahead > 0:
            offsets[worker] = max(offsets.get(worker, 0.0), ahead)
    return offsets


def build_tree(span_records: Sequence[dict[str, Any]],
               offsets: Optional[dict[str, float]] = None,
               *, trace_id: Optional[str] = None) -> TraceTree:
    """Merge span records from any number of processes into one tree.

    With several trace ids present, *trace_id* selects one (default: the
    id with the most spans).  Spans whose parent is missing from the
    record set become *orphans*, surfaced as extra roots with the
    ``orphaned`` flag — ``trace view`` treats any orphan as a propagation
    bug worth seeing.
    """
    offsets = offsets or {}
    by_trace: dict[str, list[dict[str, Any]]] = {}
    for record in span_records:
        by_trace.setdefault(str(record.get("trace_id")), []).append(record)
    if not by_trace:
        return TraceTree(trace_id="", roots=[], by_id={}, orphans=[],
                         offsets=dict(offsets), procs=())
    if trace_id is None:
        trace_id = max(by_trace, key=lambda t: len(by_trace[t]))
    elif trace_id not in by_trace:
        raise ValueError(
            f"trace {trace_id!r} not present (found: {sorted(by_trace)})")

    nodes: dict[str, SpanNode] = {}
    for record in by_trace[trace_id]:
        proc = str(record.get("proc", "?"))
        shift = offsets.get(proc, 0.0)
        node = SpanNode(
            trace_id=trace_id,
            span_id=str(record["span_id"]),
            parent_span_id=record.get("parent_span_id"),
            name=str(record.get("name", "?")),
            proc=proc,
            status=str(record.get("status", "ok")),
            start_unix=float(record.get("start_unix", record.get("ts", 0.0)))
            - shift,
            end_unix=float(record.get("end_unix", record.get("ts", 0.0)))
            - shift,
            fields={key: value for key, value in record.items()
                    if key not in _SPAN_CORE_FIELDS},
        )
        nodes[node.span_id] = node

    roots: list[SpanNode] = []
    orphans: list[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_span_id) \
            if node.parent_span_id else None
        if parent is not None:
            parent.children.append(node)
        elif node.parent_span_id is None:
            roots.append(node)
        else:
            node.orphaned = True
            orphans.append(node)
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.start_unix, n.span_id))
    roots.sort(key=lambda n: (n.orphaned, n.start_unix, n.span_id))
    procs = tuple(sorted({node.proc for node in nodes.values()}))
    return TraceTree(trace_id=trace_id, roots=roots, by_id=nodes,
                     orphans=orphans, offsets=dict(offsets), procs=procs)


def load_trace(target: Union[str, Path, Sequence[Union[str, Path]]],
               *, trace_id: Optional[str] = None) -> TraceTree:
    """One-call reconstruction: job directories and/or span files → tree.

    A directory target is searched for ``obs/**/*.jsonl`` sinks; files
    are read as timeline JSON-lines.  Mixing is allowed — e.g. a job
    workdir plus a coordinator's external ``--timeline-out`` file.
    """
    entries = [target] if isinstance(target, (str, Path)) else list(target)
    paths: list[Path] = []
    for entry in entries:
        candidate = Path(entry)
        if candidate.is_dir():
            found = discover_span_files(candidate)
            if not found:
                raise ValueError(
                    f"no span files under {candidate} (expected "
                    "<jobdir>/obs/<proc>/*.jsonl — was the job run with "
                    "observability enabled?)")
            paths.extend(found)
        else:
            paths.append(candidate)
    missing = [path for path in paths if not path.exists()]
    if missing:
        raise ValueError(f"no such span file(s): "
                         f"{', '.join(str(p) for p in missing)}")
    spans, anchors = read_records(paths)
    return build_tree(spans, skew_offsets(anchors), trace_id=trace_id)


def chrome_trace_events(tree: TraceTree) -> list[dict[str, Any]]:
    """The tree as Chrome ``chrome://tracing`` / Perfetto JSON events.

    Complete (``ph: "X"``) events, microsecond timestamps, one row
    (``tid``) per process so the coordinator and each worker stack
    visually; span fields travel in ``args``.
    """
    if not tree.by_id:
        return []
    base = min(node.start_unix for node in tree.by_id.values())
    events: list[dict[str, Any]] = []
    for proc in tree.procs:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": proc,
            "args": {"name": proc},
        })
    for node in sorted(tree.by_id.values(),
                       key=lambda n: (n.start_unix, n.span_id)):
        events.append({
            "name": node.name + (f" {_node_detail(node)}"
                                 if _node_detail(node) else ""),
            "cat": "span",
            "ph": "X",
            "ts": (node.start_unix - base) * 1e6,
            "dur": max(node.wall_seconds, 0.0) * 1e6,
            "pid": 1,
            "tid": node.proc,
            "args": {"span_id": node.span_id,
                     "status": node.status, **node.fields},
        })
    return events
