"""Process-wide observability: metrics registry, timeline, exposition.

This package is the instrumentation layer shared by every subsystem —
engine backends, batch runners, the result store, distributed workers and
the explore loop all record into one process-wide
:class:`~repro.obs.registry.MetricsRegistry`.  It is deliberately
dependency-free (stdlib only) and **off by default**: every recording
method checks a module-level enabled flag before doing any work, so the
disabled cost at an instrumentation site is one function call and one
attribute read.  Instrumented hot paths additionally guard with
:func:`enabled` *before* computing label values, keeping the disabled
path within the repo's 2% overhead budget (see the ``obs_overhead``
benchmark) and leaving the bit-identical determinism invariant untouched
— no instrument ever reads or advances simulation RNG state.

Components
----------
:mod:`~repro.obs.registry`
    Named ``Counter`` / ``Gauge`` / ``Histogram`` instruments with label
    support, atomic under threads.
:mod:`~repro.obs.exposition`
    Prometheus text format v0.0.4 and a key-sorted JSON snapshot.
:mod:`~repro.obs.timeline`
    Structured JSON-lines run events: phase spans with wall/CPU time,
    dispatch-mode transitions, lease and store activity.
:mod:`~repro.obs.httpd`
    A stdlib ``ThreadingHTTPServer`` serving ``/metrics``, ``/healthz``
    and ``/snapshot`` (CLI opt-in via ``--metrics-port``).
:mod:`~repro.obs.alerts`
    Declarative threshold rules evaluated against a snapshot into
    exit-code-carrying reports for CI.
:mod:`~repro.obs.tracing`
    Dapper-style trace contexts propagated coordinator → workers through
    the job directory; spans ride the timeline as a ``span`` kind and
    merge into one causally-ordered tree (``repro-urb trace view``).
:mod:`~repro.obs.federation`
    Worker metric snapshots flushed into the job directory and merged by
    the coordinator into ``worker="..."`` + ``worker="_total"`` series.

The package-level :func:`phase` is the *trace-aware* one: with no active
trace context it behaves exactly like the plain timeline phase, and with
one it upgrades the record to a ``span`` — instrumented callsites never
need to know which.
"""

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    histogram,
    reset,
)
from .exposition import render_json, render_prometheus, snapshot
from .timeline import (
    Timeline,
    emit,
    get_timeline,
    set_timeline,
    timeline_active,
)
from .httpd import ObsServer, start_server
from .alerts import AlertReport, AlertRule, default_rules, evaluate, load_rules
from .tracing import (
    TraceContext,
    current_context,
    load_context,
    mint_context,
    phase,
    save_context,
    set_context,
    set_process_name,
    span,
    tracing_active,
)
from .federation import (
    Federation,
    SnapshotFlusher,
    get_federation,
    set_federation,
)

__all__ = [
    "AlertReport",
    "AlertRule",
    "Counter",
    "Federation",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsServer",
    "REGISTRY",
    "SnapshotFlusher",
    "Timeline",
    "TraceContext",
    "counter",
    "current_context",
    "default_rules",
    "disable",
    "emit",
    "enable",
    "enabled",
    "evaluate",
    "gauge",
    "get_federation",
    "get_timeline",
    "histogram",
    "load_context",
    "load_rules",
    "mint_context",
    "phase",
    "render_json",
    "render_prometheus",
    "reset",
    "save_context",
    "set_context",
    "set_federation",
    "set_process_name",
    "set_timeline",
    "snapshot",
    "span",
    "start_server",
    "timeline_active",
    "tracing_active",
]
