"""Structured JSON-lines run telemetry (the *timeline*).

While the registry answers "how much / how fast", the timeline answers
"what happened when": one JSON object per line, append-only, cheap to
``tail -f`` and trivially machine-parseable.  Event kinds written by the
instrumented layers:

* ``phase`` — a named span (``expand``, ``shard``, ``execute``,
  ``persist``, ``merge``, …) with wall-clock and CPU seconds and an
  ``ok``/``error`` status;
* ``span`` — a *traced* phase (see :mod:`repro.obs.tracing`): the same
  timing fields plus ``trace_id``/``span_id``/``parent_span_id``,
  ``proc`` and ``start_unix``/``end_unix``, written whenever a trace
  context is active so per-process files merge into one campaign tree;
* ``anchor`` — a cross-process clock sample ``(worker, worker_unix,
  observed_unix)`` emitted by the coordinator from lease-table
  observations, used for wall-clock skew normalisation in
  ``trace view``;
* ``engine.dispatch_mode`` — which dispatch path a backend took;
* ``lease.claim`` / ``lease.renew`` / ``lease.reclaim`` — distributed
  lease lifecycle;
* ``store.put`` / ``store.hit`` / ``store.miss`` — result-store traffic.

Every record carries ``ts`` (unix seconds) and ``kind``; everything else
is event-specific.  Like the metrics registry the timeline is off by
default: the module-level sink is ``None`` and :func:`emit` returns
after one attribute read.  Writes are serialised under a lock so worker
threads never interleave partial lines.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, IO, Iterator, Optional, Union

__all__ = ["Timeline", "emit", "get_timeline", "phase", "set_timeline",
           "timeline_active"]


class Timeline:
    """One JSON-lines sink (an opened file or any text stream)."""

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._stream: IO[str] = path.open("a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._lock = threading.Lock()

    def emit(self, kind: str, **fields: Any) -> None:
        """Append one event; unknown-type fields fall back to ``repr``."""
        record = {"ts": time.time(), "kind": kind}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=repr)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()

    @contextmanager
    def phase(self, name: str, **fields: Any) -> Iterator[None]:
        """Record a span: wall + CPU seconds, ``ok`` or ``error`` status."""
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        status = "ok"
        try:
            yield
        except BaseException as exc:
            status = "error"
            fields.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            self.emit(
                "phase",
                name=name,
                status=status,
                wall_seconds=time.perf_counter() - wall0,
                cpu_seconds=time.process_time() - cpu0,
                **fields,
            )

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


_TIMELINE: Optional[Timeline] = None


def set_timeline(timeline: Optional[Timeline]) -> Optional[Timeline]:
    """Install (or clear, with ``None``) the process-wide sink.

    Returns the previous sink so callers can restore it; the previous
    sink is **not** closed — ownership stays with whoever created it.
    """
    global _TIMELINE
    previous = _TIMELINE
    _TIMELINE = timeline
    return previous


def get_timeline() -> Optional[Timeline]:
    """The current process-wide sink (``None`` when disabled)."""
    return _TIMELINE


def timeline_active() -> bool:
    """Whether :func:`emit` currently writes anywhere."""
    return _TIMELINE is not None


def emit(kind: str, **fields: Any) -> None:
    """Emit to the process-wide sink; a no-op when none is installed."""
    timeline = _TIMELINE
    if timeline is not None:
        timeline.emit(kind, **fields)


@contextmanager
def phase(name: str, **fields: Any) -> Iterator[None]:
    """Span on the process-wide sink; transparent when none installed."""
    timeline = _TIMELINE
    if timeline is None:
        yield
        return
    with timeline.phase(name, **fields):
        yield
