"""Anonymity audits.

The protocols must work without process identifiers.  Two things are worth
auditing mechanically on finished runs:

* **Acknowledgement-tag uniqueness** — Algorithm 1's correctness rests on
  distinct processes choosing distinct random ``tag_ack`` values for the
  same message («different processes generate distinct ACKs to the same m»).
  :func:`audit_ack_tag_uniqueness` verifies it on the trace (a failure would
  indicate a tag-width misconfiguration or a broken RNG setup).
* **Payload opacity** — nothing a protocol puts on the wire may contain a
  process index.  :func:`audit_payload_opacity` walks every sent payload and
  checks it only uses the sanctioned wire types, whose fields are contents,
  random tags and opaque labels.  (The identified baseline is exempt — it is
  non-anonymous by design.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.messages import AckPayload, LabeledAckPayload, MsgPayload
from ..simulation.engine import SimulationResult
from ..simulation.tracing import TraceCategory


@dataclass(frozen=True)
class AnonymityAudit:
    """Result of the anonymity audits on one run."""

    ack_tags_unique: bool
    payloads_opaque: bool
    violations: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        """Whether every audit passed."""
        return self.ack_tags_unique and self.payloads_opaque

    def describe(self) -> str:
        """One-line summary."""
        status = "passed" if self.passed else "FAILED"
        return f"anonymity audit {status} ({len(self.violations)} violations)"


def audit_ack_tag_uniqueness(result: SimulationResult) -> tuple[bool, list[str]]:
    """Check that distinct processes never share a ``tag_ack`` for a message."""
    violations: list[str] = []
    # message -> ack_tag -> set of source processes that sent it
    senders: dict[tuple, dict[int, set[int]]] = {}
    # message -> process -> set of ack tags used (must be a singleton)
    per_process: dict[tuple, dict[int, set[int]]] = {}
    for event in result.trace.filter(category=TraceCategory.SEND):
        payload = event.detail("payload")
        if not isinstance(payload, (AckPayload, LabeledAckPayload)):
            continue
        key = (payload.message.content, payload.message.tag)
        senders.setdefault(key, {}).setdefault(payload.ack_tag, set()).add(
            event.process
        )
        per_process.setdefault(key, {}).setdefault(event.process, set()).add(
            payload.ack_tag
        )
    for key, tag_map in senders.items():
        for ack_tag, processes in tag_map.items():
            if len(processes) > 1:
                violations.append(
                    f"ack tag {ack_tag} for message {key!r} was used by "
                    f"multiple processes: {sorted(processes)}"
                )
    for key, proc_map in per_process.items():
        for process, tags in proc_map.items():
            if len(tags) > 1:
                violations.append(
                    f"process p{process} used multiple ack tags for message "
                    f"{key!r}: {sorted(tags)}"
                )
    return (not violations, violations)


def audit_payload_opacity(result: SimulationResult,
                          *, allow_identified: bool = False) -> tuple[bool, list[str]]:
    """Check that only the sanctioned anonymous wire types were sent."""
    violations: list[str] = []
    allowed = (MsgPayload, AckPayload, LabeledAckPayload)
    for event in result.trace.filter(category=TraceCategory.SEND):
        payload = event.detail("payload")
        if payload is None:
            continue
        if not isinstance(payload, allowed):
            if allow_identified:
                continue
            violations.append(
                f"p{event.process} sent a non-standard payload "
                f"{type(payload).__name__}"
            )
    return (not violations, violations)


def audit_anonymity(result: SimulationResult,
                    *, allow_identified: bool = False) -> AnonymityAudit:
    """Run every anonymity audit on *result*."""
    tags_ok, tag_violations = audit_ack_tag_uniqueness(result)
    opaque_ok, opacity_violations = audit_payload_opacity(
        result, allow_identified=allow_identified
    )
    return AnonymityAudit(
        ack_tags_unique=tags_ok,
        payloads_opaque=opaque_ok,
        violations=tuple(tag_violations + opacity_violations),
    )
