"""Plain-text table rendering.

Experiment results are reported as monospace tables (the library has no
plotting dependency); the same rows back both the CLI output and
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_cell(value: Any, float_format: str = "{:.3g}") -> str:
    """Render one cell: floats are compacted, booleans become ✓/✗."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return float_format.format(value)
    if value is None:
        return "-"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    float_format: str = "{:.3g}",
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Row cell values (any printable objects).
    float_format:
        Format applied to float cells.
    title:
        Optional title printed above the table.
    """
    rendered_rows = [
        [format_cell(cell, float_format) for cell in row] for row in rows
    ]
    headers = [str(h) for h in headers]
    n_columns = len(headers)
    for row in rendered_rows:
        if len(row) != n_columns:
            raise ValueError(
                f"row has {len(row)} cells but the table has {n_columns} columns"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(headers))
    parts.append(separator)
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def render_series(
    name: str,
    points: Iterable[tuple[Any, Any]],
    *,
    x_label: str = "x",
    y_label: str = "y",
    float_format: str = "{:.4g}",
) -> str:
    """Render a data series (a "figure" in text form): two-column table."""
    return render_table(
        [x_label, y_label],
        list(points),
        float_format=float_format,
        title=name,
    )


def render_ascii_curve(
    points: Sequence[tuple[float, float]],
    *,
    width: int = 60,
    label: str = "",
) -> str:
    """Very small ASCII bar rendering of a curve (used by the CLI).

    Each point becomes one line whose bar length is proportional to the y
    value relative to the maximum.
    """
    if not points:
        return f"{label}(no data)"
    max_y = max(y for _, y in points) or 1.0
    lines = [label] if label else []
    for x, y in points:
        bar = "#" * int(round(width * y / max_y))
        lines.append(f"{x:>10.3g} | {bar} {y:g}")
    return "\n".join(lines)
