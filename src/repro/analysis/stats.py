"""Small statistics helpers used by the experiment harness.

Experiments repeat every configuration over several seeds and report means,
spreads and simple confidence intervals.  Nothing here is novel — it exists
so that the experiment modules stay readable and the numerics are tested in
one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    p95: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (JSON friendly)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "p95": self.p95,
            "max": self.maximum,
        }


def summarize(values: Iterable[float]) -> Optional[SummaryStats]:
    """Summary statistics of *values* (``None`` for an empty sample)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return None
    return SummaryStats(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        median=float(np.median(data)),
        p95=float(np.percentile(data, 95)),
        maximum=float(data.max()),
    )


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """Mean and a normal-approximation confidence interval.

    Returns ``(mean, low, high)``.  With fewer than two samples the interval
    degenerates to the mean itself.  The normal approximation (rather than a
    t-interval) keeps the dependency footprint to NumPy; for the 5–20 seeds
    typically used it is a reasonable, clearly-documented simplification.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("cannot summarise an empty sample")
    mean = float(data.mean())
    if data.size == 1:
        return (mean, mean, mean)
    std_err = float(data.std(ddof=1)) / math.sqrt(data.size)
    z = _normal_quantile(0.5 + confidence / 2.0)
    half_width = z * std_err
    return (mean, mean - half_width, mean + half_width)


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio that maps ``x / 0`` to ``inf`` (and ``0 / 0`` to ``nan``)."""
    if denominator == 0:
        return math.nan if numerator == 0 else math.inf
    return numerator / denominator


def _normal_quantile(p: float) -> float:
    """Inverse CDF of the standard normal (Acklam's rational approximation).

    Accurate to ~1e-9 over (0, 1); avoids a SciPy dependency for one number.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    # Coefficients of Peter Acklam's approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    p_high = 1 - p_low
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
