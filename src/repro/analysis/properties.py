"""Machine-checkable URB property verdicts.

The paper defines Uniform Reliable Broadcast by three properties (§II):

* **Validity** — if a correct process broadcasts ``m``, it eventually
  delivers ``m``.
* **Uniform Agreement** — if *some* process (correct or not) delivers ``m``,
  then every correct process eventually delivers ``m``.
* **Uniform Integrity** — every process delivers ``m`` at most once, and
  only if ``m`` was previously broadcast.

The checkers below evaluate the three properties on a finished
:class:`~repro.simulation.engine.SimulationResult`.  "Eventually" is
interpreted as "by the end of the run": experiments choose horizons long
enough for the liveness properties to have materialised, and the correctness
experiment (E1) reports the verdicts per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..simulation.engine import SimulationResult
from ..simulation.tracing import TraceCategory


@dataclass(frozen=True)
class PropertyVerdict:
    """Outcome of checking one URB property on one run."""

    name: str
    holds: bool
    violations: tuple[str, ...] = ()
    checked: int = 0

    def describe(self) -> str:
        """One-line summary."""
        status = "OK" if self.holds else "VIOLATED"
        extra = f" ({len(self.violations)} violations)" if self.violations else ""
        return f"{self.name}: {status}{extra}"


@dataclass(frozen=True)
class UrbVerdict:
    """Combined verdict of the three URB properties on one run."""

    validity: PropertyVerdict
    uniform_agreement: PropertyVerdict
    uniform_integrity: PropertyVerdict

    @property
    def all_hold(self) -> bool:
        """Whether every property holds."""
        return (
            self.validity.holds
            and self.uniform_agreement.holds
            and self.uniform_integrity.holds
        )

    def verdicts(self) -> tuple[PropertyVerdict, ...]:
        """The three verdicts as a tuple."""
        return (self.validity, self.uniform_agreement, self.uniform_integrity)

    def violations(self) -> list[str]:
        """All violation messages across the three properties."""
        result: list[str] = []
        for verdict in self.verdicts():
            result.extend(verdict.violations)
        return result

    def describe(self) -> str:
        """Multi-line summary."""
        return "\n".join(verdict.describe() for verdict in self.verdicts())


# --------------------------------------------------------------------------- #
# individual property checkers
# --------------------------------------------------------------------------- #
def check_validity(result: SimulationResult) -> PropertyVerdict:
    """Validity: correct broadcasters deliver their own messages."""
    violations: list[str] = []
    checked = 0
    for command in _broadcast_commands(result):
        sender = command["process"]
        content = command["content"]
        if not result.crash_schedule.is_correct(sender):
            continue
        checked += 1
        if not result.delivery_logs[sender].has_content(content):
            violations.append(
                f"correct process p{sender} broadcast {content!r} but never "
                "delivered it"
            )
    return PropertyVerdict(
        name="Validity", holds=not violations,
        violations=tuple(violations), checked=checked,
    )


def check_uniform_agreement(result: SimulationResult) -> PropertyVerdict:
    """Uniform Agreement: anything delivered anywhere is delivered by every
    correct process."""
    violations: list[str] = []
    delivered_anywhere: dict[Any, list[int]] = {}
    for event in result.trace.filter(category=TraceCategory.URB_DELIVER):
        delivered_anywhere.setdefault(event.detail("content"), []).append(
            event.process
        )
    correct = result.crash_schedule.correct_indices()
    checked = 0
    for content, deliverers in delivered_anywhere.items():
        checked += 1
        for index in correct:
            if not result.delivery_logs[index].has_content(content):
                violations.append(
                    f"{content!r} was delivered by p{deliverers[0]} but correct "
                    f"process p{index} never delivered it"
                )
    return PropertyVerdict(
        name="Uniform Agreement", holds=not violations,
        violations=tuple(violations), checked=checked,
    )


def check_uniform_integrity(result: SimulationResult) -> PropertyVerdict:
    """Uniform Integrity: at-most-once delivery, only of broadcast messages,
    never before their broadcast."""
    violations: list[str] = []
    broadcast_times: dict[Any, float] = {}
    for command in _broadcast_commands(result):
        broadcast_times.setdefault(command["content"], command["time"])

    seen: dict[tuple[int, Any, Any], int] = {}
    checked = 0
    for event in result.trace.filter(category=TraceCategory.URB_DELIVER):
        checked += 1
        content = event.detail("content")
        tag = event.detail("tag")
        key = (event.process, content, tag)
        seen[key] = seen.get(key, 0) + 1
        if seen[key] > 1:
            violations.append(
                f"p{event.process} delivered {content!r} (tag {tag}) "
                f"{seen[key]} times"
            )
        if content not in broadcast_times:
            violations.append(
                f"p{event.process} delivered {content!r} which was never "
                "URB-broadcast"
            )
        elif event.time < broadcast_times[content]:
            violations.append(
                f"p{event.process} delivered {content!r} at t={event.time:g} "
                f"before its broadcast at t={broadcast_times[content]:g}"
            )
    return PropertyVerdict(
        name="Uniform Integrity", holds=not violations,
        violations=tuple(violations), checked=checked,
    )


def check_urb_properties(result: SimulationResult) -> UrbVerdict:
    """Check all three URB properties on *result*."""
    return UrbVerdict(
        validity=check_validity(result),
        uniform_agreement=check_uniform_agreement(result),
        uniform_integrity=check_uniform_integrity(result),
    )


def violation_signature(verdict: UrbVerdict) -> tuple[str, ...]:
    """Canonical signature of *which* properties a run violates.

    The schedule explorer's shrinker uses signature equality as its notion
    of "the same violation": a reduced schedule is accepted only while it
    still violates exactly this set of properties (the violation *messages*
    are allowed to differ — delivery counts and times legitimately change
    as decisions are removed).
    """
    return tuple(v.name for v in verdict.verdicts() if not v.holds)


# --------------------------------------------------------------------------- #
# agreement among correct processes only (for the non-uniform baselines)
# --------------------------------------------------------------------------- #
def check_correct_agreement(result: SimulationResult) -> PropertyVerdict:
    """(Non-uniform) Agreement: a message delivered by a *correct* process is
    delivered by all correct processes.

    This is the weaker guarantee of plain Reliable Broadcast; the baseline
    comparison experiment uses it to show that the eager-relay baseline may
    satisfy it while still violating *uniform* agreement.
    """
    violations: list[str] = []
    correct = set(result.crash_schedule.correct_indices())
    delivered_by_correct: set[Any] = set()
    for event in result.trace.filter(category=TraceCategory.URB_DELIVER):
        if event.process in correct:
            delivered_by_correct.add(event.detail("content"))
    checked = 0
    for content in delivered_by_correct:
        checked += 1
        for index in correct:
            if not result.delivery_logs[index].has_content(content):
                violations.append(
                    f"{content!r} delivered by some correct process but not by "
                    f"correct process p{index}"
                )
    return PropertyVerdict(
        name="Agreement (correct only)", holds=not violations,
        violations=tuple(violations), checked=checked,
    )


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _broadcast_commands(result: SimulationResult) -> list[dict[str, Any]]:
    """The URB_BROADCAST events of the trace as plain dictionaries."""
    commands = []
    for event in result.trace.filter(category=TraceCategory.URB_BROADCAST):
        commands.append(
            {
                "process": event.process,
                "content": event.detail("content"),
                "time": event.time,
            }
        )
    return commands
