"""Trace analysis: URB property checking, quiescence detection, anonymity
audits, statistics helpers and plain-text table rendering."""

from .anonymity import (
    AnonymityAudit,
    audit_ack_tag_uniqueness,
    audit_anonymity,
    audit_payload_opacity,
)
from .properties import (
    PropertyVerdict,
    UrbVerdict,
    check_correct_agreement,
    check_uniform_agreement,
    check_uniform_integrity,
    check_urb_properties,
    check_validity,
)
from .quiescence import (
    QuiescenceReport,
    analyze_quiescence,
    cumulative_send_curve,
    retire_times,
)
from .stats import SummaryStats, mean_confidence_interval, ratio, summarize
from .tables import format_cell, render_ascii_curve, render_series, render_table

__all__ = [
    "AnonymityAudit",
    "PropertyVerdict",
    "QuiescenceReport",
    "SummaryStats",
    "UrbVerdict",
    "analyze_quiescence",
    "audit_ack_tag_uniqueness",
    "audit_anonymity",
    "audit_payload_opacity",
    "check_correct_agreement",
    "check_uniform_agreement",
    "check_uniform_integrity",
    "check_urb_properties",
    "check_validity",
    "cumulative_send_curve",
    "format_cell",
    "mean_confidence_interval",
    "ratio",
    "render_ascii_curve",
    "render_series",
    "render_table",
    "retire_times",
    "summarize",
]
