"""Quiescence analysis.

«An algorithm is quiescent [if] eventually no process sends or receives
messages» (paper §V-B).  On a finite trace, quiescence is assessed by looking
at *when the last send happened* relative to the end of the run: a protocol
that quiesces stops sending and the tail of the run is silent, whereas
Algorithm 1 keeps re-broadcasting until the horizon.

:func:`analyze_quiescence` produces a :class:`QuiescenceReport` with the last
send time, the length of the silent tail, a per-window send histogram (the
data series behind experiment E3's figure) and a boolean verdict given a
required idle-tail length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..simulation.engine import SimulationResult
from ..simulation.simtime import SimTime
from ..simulation.tracing import TraceCategory


@dataclass(frozen=True)
class QuiescenceReport:
    """Quiescence verdict and supporting measurements for one run."""

    #: Time of the last channel send (``None`` when nothing was ever sent).
    last_send_time: Optional[SimTime]
    #: Time of the last message retirement (Algorithm 2), if any.
    last_retire_time: Optional[SimTime]
    #: End of the run.
    final_time: SimTime
    #: Length of the silent tail (``final_time - last_send_time``).
    idle_tail: float
    #: Idle tail required to declare the run quiescent.
    required_idle_tail: float
    #: Whether the run is quiescent under that requirement.
    quiescent: bool
    #: Total number of sends.
    total_sends: int
    #: ``(window_start, sends_in_window)`` histogram.
    sends_per_window: tuple[tuple[SimTime, int], ...]

    def describe(self) -> str:
        """One-line summary."""
        status = "quiescent" if self.quiescent else "NOT quiescent"
        last = (
            f"last send at t={self.last_send_time:g}"
            if self.last_send_time is not None
            else "no sends at all"
        )
        return (
            f"{status}: {last}, idle tail {self.idle_tail:g} "
            f"(required {self.required_idle_tail:g}), "
            f"{self.total_sends} sends in total"
        )


def analyze_quiescence(
    result: SimulationResult,
    *,
    required_idle_tail: Optional[float] = None,
    window: float = 5.0,
) -> QuiescenceReport:
    """Build the :class:`QuiescenceReport` of a finished run.

    Parameters
    ----------
    result:
        The finished run.
    required_idle_tail:
        Minimum silent-tail length for the run to count as quiescent.
        Defaults to two retransmission periods — long enough that a
        still-active Task 1 would certainly have sent something.
    window:
        Bucket width of the send histogram.
    """
    if required_idle_tail is None:
        required_idle_tail = 2.0 * result.config.tick_interval
    last_send = result.trace.last_time(TraceCategory.SEND)
    if last_send is None and result.metrics.last_send_time is not None:
        # Trace may be disabled for large runs; fall back to metrics.
        last_send = result.metrics.last_send_time
    last_retire = result.trace.last_time(TraceCategory.RETIRE)
    final_time = result.final_time
    idle_tail = final_time - last_send if last_send is not None else final_time
    histogram = tuple(result.trace.timeline(TraceCategory.SEND, window))
    if not histogram and result.metrics.send_timeline:
        histogram = tuple(_histogram_from_metrics(result, window))
    return QuiescenceReport(
        last_send_time=last_send,
        last_retire_time=last_retire,
        final_time=final_time,
        idle_tail=idle_tail,
        required_idle_tail=required_idle_tail,
        quiescent=idle_tail >= required_idle_tail,
        total_sends=result.metrics.total_sends,
        sends_per_window=histogram,
    )


def cumulative_send_curve(
    result: SimulationResult, n_points: int = 50
) -> list[tuple[SimTime, int]]:
    """``(time, cumulative sends)`` samples — the series of figure E3."""
    if n_points < 2:
        raise ValueError("n_points must be at least 2")
    final = result.final_time if result.final_time > 0 else 1.0
    points = []
    for i in range(n_points):
        t = final * i / (n_points - 1)
        points.append((t, result.metrics.cumulative_sends_at(t)))
    return points


def retire_times(result: SimulationResult) -> list[tuple[SimTime, int]]:
    """``(time, process)`` pairs for every message retirement in the run."""
    return [
        (event.time, event.process)
        for event in result.trace.filter(category=TraceCategory.RETIRE)
    ]


def _histogram_from_metrics(result: SimulationResult,
                            window: float) -> list[tuple[SimTime, int]]:
    """Send histogram computed from metrics when the trace is disabled."""
    if window <= 0:
        raise ValueError("window must be positive")
    times = [t for t, _ in result.metrics.send_timeline]
    if not times:
        return []
    end = max(times)
    n_buckets = int(end // window) + 1
    counts = [0] * n_buckets
    for t in times:
        counts[int(t // window)] += 1
    return [(i * window, counts[i]) for i in range(n_buckets)]
