"""Command-line interface.

Installed as ``repro-urb`` (see ``pyproject.toml``); also runnable as
``python -m repro``.

Sub-commands
------------
``list``
    List the registered experiments.
``run E3 [--seeds 3] [--quick] [--output FILE]``
    Run one experiment (or ``all``) and print / save its tables and figures.
``demo [--algorithm algorithm2] [--n 5] [--loss 0.3] [--crashes 2]``
    Run a single scenario and print its analysis (a fast way to poke at the
    protocols without writing code).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.tables import render_table
from .experiments import registry
from .experiments.config import ALGORITHMS, Scenario
from .experiments.common import crash_last
from .experiments.runner import run_scenario
from .network.loss import LossSpec


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-urb",
        description=(
            "Uniform Reliable Broadcast in anonymous distributed systems with "
            "fair lossy channels — experiment harness."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. E3, or 'all'")
    run_parser.add_argument("--seeds", type=int, default=None,
                            help="replications per configuration")
    run_parser.add_argument("--quick", action="store_true",
                            help="smaller grids / fewer seeds")
    run_parser.add_argument("--output", type=str, default=None,
                            help="write the rendered report to this file")

    demo_parser = subparsers.add_parser("demo", help="run a single scenario")
    demo_parser.add_argument("--algorithm", choices=ALGORITHMS,
                             default="algorithm2")
    demo_parser.add_argument("--n", type=int, default=5, help="number of processes")
    demo_parser.add_argument("--loss", type=float, default=0.2,
                             help="Bernoulli loss probability")
    demo_parser.add_argument("--crashes", type=int, default=1,
                             help="number of processes crashed at t=2")
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.add_argument("--max-time", type=float, default=150.0)
    return parser


def _command_list() -> int:
    rows = []
    for experiment_id in registry.experiment_ids():
        entry = registry.get_experiment(experiment_id)
        rows.append([entry.experiment_id, entry.title])
    print(render_table(["id", "title"], rows, title="Registered experiments"))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.experiment.lower() == "all":
        results = registry.run_all(seeds=args.seeds, quick=args.quick)
    else:
        results = [
            registry.run_experiment(args.experiment, seeds=args.seeds,
                                    quick=args.quick)
        ]
    text = "\n\n".join(result.render() for result in results)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n(report written to {args.output})")
    return 0


def _command_demo(args: argparse.Namespace) -> int:
    if args.crashes >= args.n:
        print("error: at least one process must remain correct", file=sys.stderr)
        return 2
    scenario = Scenario(
        name="cli-demo",
        algorithm=args.algorithm,
        n_processes=args.n,
        seed=args.seed,
        crashes=crash_last(args.n, args.crashes, time=2.0),
        loss=LossSpec.bernoulli(args.loss) if args.loss > 0 else LossSpec.none(),
        max_time=args.max_time,
        stop_when_quiescent=args.algorithm == "algorithm2",
        stop_when_all_correct_delivered=args.algorithm != "algorithm2",
        drain_grace_period=3.0,
    )
    result = run_scenario(scenario)
    print(result.describe())
    summary = result.metrics
    rows = [[k, v] for k, v in sorted(summary.as_dict().items())
            if not isinstance(v, dict)]
    print()
    print(render_table(["metric", "value"], rows, title="Metrics"))
    return 0 if result.all_properties_hold else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "demo":
        return _command_demo(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
