"""Command-line interface.

Installed as ``repro-urb`` (see ``pyproject.toml``); also runnable as
``python -m repro``.

Sub-commands
------------
``list``
    List the registered experiments.
``components``
    List the registered pluggable components (algorithms, channel families,
    failure-detector setups, workload presets) with their metadata.
``run E3 [--seeds 3] [--quick] [--output FILE]``
    Run one experiment (or ``all``) and print / save its tables and figures.
``demo [--algorithm algorithm2] [--n 5] [--loss 0.3] [--crashes 2]``
    Run a single scenario and print its analysis (a fast way to poke at the
    protocols without writing code).
``sweep --field loss --values 0.0,0.2,0.4 [--seeds 3] [--parallel 4]``
    Declarative scenario sweep through the batch runner, optionally fanned
    out over worker processes.
``explore --strategy random_walk --budget 200 [--parallel 4] [--artifacts D]``
    Adversarial schedule exploration (see :mod:`repro.explore`): search the
    space of admissible schedules for URB property violations, shrinking any
    counterexample to a minimal replayable decision trace.  With ``--store``
    counterexamples are persisted into a campaign result store.
``replay counterexample.json [--full]``
    Re-execute a counterexample artifact and check that it still reproduces
    the recorded violation.
``campaign run/status/query/export/gc``
    Persistent campaigns (see :mod:`repro.campaigns`): run a sweep against a
    content-addressed result store — cells already computed are never
    simulated again, a killed run resumes with ``--resume`` — then query,
    aggregate, export and garbage-collect the stored data.
``campaign serve/work/plan``
    Distributed campaigns (see :mod:`repro.campaigns.distributed`): ``serve``
    writes the lease table for a sweep and coordinates until every cell is
    executed, then merges the worker stores; ``work`` runs one lease-driven
    worker process against a job workdir; ``plan`` estimates wall cost and
    suggests a worker count from stored per-cell timings.
``store merge --into DEST SRC [SRC ...]``
    Idempotent union of result stores by cell hash; semantically conflicting
    cells (a determinism bug) abort the merge loudly.
``obs snapshot/check``
    Observability (see :mod:`repro.obs`): render a metrics snapshot taken
    from a live ``--metrics-port`` server or a ``--metrics-out`` file, and
    evaluate threshold alert rules against one for CI gating.

Observability flags (``--metrics-port PORT``, ``--metrics-out FILE``,
``--timeline-out FILE``) are accepted by the executing verbs — ``demo``,
``sweep``, ``explore``, ``campaign run/serve/work`` — and are strictly
opt-in: without them the metrics registry stays disabled and runs are
bit-identical to an uninstrumented build.

The ``--algorithm`` choices everywhere come from the live algorithm registry,
so protocols registered by plugin modules (imported via ``--plugin``) are
selectable by name.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Sequence, Union

from . import obs
from .analysis.tables import render_table
from .experiments import registry as experiment_registry
from .experiments.batch import ScenarioSuite, SuiteResult
from .experiments.config import Scenario
from .experiments.common import crash_last
from .experiments.runner import run_scenario
from .network.loss import LossSpec
from .registry import (
    algorithm_names,
    all_registries,
    engine_names,
    get_algorithm,
    strategies,
    strategy_names,
)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests).

    Built lazily per invocation so that ``choices`` reflect every component
    registered at call time, including third-party plugins.
    """
    parser = argparse.ArgumentParser(
        prog="repro-urb",
        description=(
            "Uniform Reliable Broadcast in anonymous distributed systems with "
            "fair lossy channels — experiment harness."
        ),
    )
    # --plugin is accepted both before and after the subcommand; the values
    # are collected by the position-agnostic pre-scan in main() (a subparser
    # default would clobber top-level values, hence SUPPRESS).
    plugin_parent = argparse.ArgumentParser(add_help=False)
    plugin_parent.add_argument(
        "--plugin", action="append", default=argparse.SUPPRESS, metavar="MODULE",
        help="import MODULE before running (for repro.registry registrations); "
             "repeatable",
    )
    parser.add_argument(
        "--plugin", action="append", default=[], metavar="MODULE",
        help=argparse.SUPPRESS,
    )
    # Observability opt-ins shared by every executing verb.  All three
    # default to None == "leave the registry disabled" — the tier-1 parity
    # guarantee is that omitting them costs (nearly) nothing.
    obs_parent = argparse.ArgumentParser(add_help=False)
    obs_group = obs_parent.add_argument_group("observability")
    obs_group.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="enable metrics and serve /metrics, /healthz and /snapshot on "
             "127.0.0.1:PORT for the duration of the run (0 picks an "
             "ephemeral port, reported on stderr)")
    obs_group.add_argument(
        "--metrics-out", type=str, default=None, metavar="FILE",
        help="enable metrics and write the final JSON snapshot to FILE "
             "when the command exits")
    obs_group.add_argument(
        "--timeline-out", type=str, default=None, metavar="FILE",
        help="append structured JSON-lines run events (phases, leases, "
             "store traffic) to FILE")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments",
                          parents=[plugin_parent])
    subparsers.add_parser(
        "components",
        help="list every registered component, one table per registry",
        parents=[plugin_parent],
    )

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')",
                                       parents=[plugin_parent])
    run_parser.add_argument("experiment", help="experiment id, e.g. E3, or 'all'")
    run_parser.add_argument("--seeds", type=int, default=None,
                            help="replications per configuration")
    run_parser.add_argument("--quick", action="store_true",
                            help="smaller grids / fewer seeds")
    run_parser.add_argument("--output", type=str, default=None,
                            help="write the rendered report to this file")

    demo_parser = subparsers.add_parser("demo", help="run a single scenario",
                                        parents=[plugin_parent, obs_parent])
    demo_parser.add_argument("--algorithm", choices=algorithm_names(),
                             default="algorithm2")
    demo_parser.add_argument("--n", type=int, default=5, help="number of processes")
    demo_parser.add_argument("--loss", type=float, default=0.2,
                             help="Bernoulli loss probability")
    demo_parser.add_argument("--crashes", type=int, default=1,
                             help="number of processes crashed at t=2")
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.add_argument("--max-time", type=float, default=150.0)
    demo_parser.add_argument("--engine", choices=engine_names(),
                             default="reference",
                             help="simulation-engine backend (all backends "
                                  "are bit-identical; pick for speed)")

    sweep_parser = subparsers.add_parser(
        "sweep", help="sweep one scenario field through the batch runner",
        parents=[plugin_parent, obs_parent])
    sweep_parser.add_argument("--algorithm", choices=algorithm_names(),
                              default="algorithm2")
    sweep_parser.add_argument("--field", default="loss",
                              help="Scenario field to vary (default: loss; "
                                   "'loss' values are Bernoulli probabilities)")
    sweep_parser.add_argument("--values", required=True,
                              help="comma-separated grid, e.g. 0.0,0.2,0.4")
    sweep_parser.add_argument("--n", type=int, default=5,
                              help="number of processes")
    sweep_parser.add_argument("--crashes", type=int, default=0,
                              help="number of processes crashed at t=2")
    sweep_parser.add_argument("--seeds", type=int, default=3,
                              help="replications per grid point")
    sweep_parser.add_argument("--parallel", type=int, default=1,
                              help="worker processes (1 = sequential)")
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument("--max-time", type=float, default=150.0)
    sweep_parser.add_argument("--engine", choices=engine_names(),
                              default="reference",
                              help="simulation-engine backend (all backends "
                                   "are bit-identical; pick for speed)")
    sweep_parser.add_argument("--progress", action="store_true",
                              help="print one 'completed/total cells' line "
                                   "per finished run (default: a single "
                                   "in-place counter)")

    explore_parser = subparsers.add_parser(
        "explore",
        help="search the schedule space for URB property violations",
        parents=[plugin_parent, obs_parent])
    explore_parser.add_argument("--algorithm", choices=algorithm_names(),
                                default="algorithm1")
    explore_parser.add_argument("--strategy", choices=strategy_names(),
                                default="random_walk")
    explore_parser.add_argument("--budget", type=int, default=200,
                                help="maximum schedules to run (enumerative "
                                     "strategies cap this at their space size)")
    explore_parser.add_argument("--parallel", type=int, default=1,
                                help="worker processes (1 = sequential)")
    explore_parser.add_argument("--n", type=int, default=4,
                                help="number of processes")
    explore_parser.add_argument("--loss", type=float, default=0.0,
                                help="baseline Bernoulli loss probability; "
                                     "only meaningful for strategies that "
                                     "delegate loss to the channels (e.g. "
                                     "crash_points) — decision-driven "
                                     "strategies take --option "
                                     "explore_drop_probability instead")
    explore_parser.add_argument("--crashes", type=int, default=0,
                                help="number of processes crashed at t=2")
    explore_parser.add_argument("--seed", type=int, default=0)
    explore_parser.add_argument("--max-time", type=float, default=150.0)
    explore_parser.add_argument("--no-shrink", action="store_true",
                                help="skip ddmin minimisation of counterexamples")
    explore_parser.add_argument("--artifacts", type=str, default=None,
                                metavar="DIR",
                                help="write counterexample JSON artifacts here")
    explore_parser.add_argument("--store", type=str, default=None,
                                metavar="DIR",
                                help="persist counterexamples as first-class "
                                     "artifacts of the result store at DIR")
    explore_parser.add_argument("--option", action="append", default=[],
                                metavar="KEY=VALUE",
                                help="strategy tunable placed in the scenario "
                                     "metadata (e.g. explore_drop_probability"
                                     "=0.4); repeatable")
    explore_parser.add_argument("--expect-violation", action="store_true",
                                help="invert the exit code: succeed only if a "
                                     "violation is found and its shrunk "
                                     "counterexample replays to the same "
                                     "violation (self-test mode)")

    replay_parser = subparsers.add_parser(
        "replay",
        help="replay a counterexample artifact and verify its violation",
        parents=[plugin_parent])
    replay_parser.add_argument("artifact",
                               help="counterexample JSON written by "
                                    "'explore --artifacts' or 'campaign "
                                    "export --counterexample'")
    replay_parser.add_argument("--full", action="store_true",
                               help="replay the full recorded trace instead "
                                    "of the shrunk one")

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="persistent, resumable sweeps over a content-addressed store",
        parents=[plugin_parent])
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command",
                                                  required=True)

    def store_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--store", required=True, metavar="DIR",
                         help="result store directory")

    def sweep_arguments(sub: argparse.ArgumentParser) -> None:
        """The one-field sweep grid shared by run/serve/plan."""
        sub.add_argument("--algorithm", choices=algorithm_names(),
                         default="algorithm2")
        sub.add_argument("--field", default="loss",
                         help="Scenario field to vary (default: loss; 'loss' "
                              "values are Bernoulli probabilities)")
        sub.add_argument("--values", required=True,
                         help="comma-separated grid, e.g. 0.0,0.2,0.4")
        sub.add_argument("--n", type=int, default=5,
                         help="number of processes")
        sub.add_argument("--crashes", type=int, default=0,
                         help="number of processes crashed at t=2")
        sub.add_argument("--seeds", type=int, default=3,
                         help="replications per grid point")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument("--max-time", type=float, default=150.0)
        sub.add_argument("--engine", choices=engine_names(),
                         default="reference",
                         help="simulation-engine backend (all backends are "
                              "bit-identical; pick for speed)")

    crun = campaign_sub.add_parser(
        "run", help="run (or resume) a sweep campaign against the store",
        parents=[plugin_parent, obs_parent])
    store_argument(crun)
    crun.add_argument("--name", default=None,
                      help="campaign name (default: derived from the sweep)")
    crun.add_argument("--algorithm", choices=algorithm_names(),
                      default="algorithm2")
    crun.add_argument("--field", default="loss",
                      help="Scenario field to vary (default: loss; 'loss' "
                           "values are Bernoulli probabilities)")
    crun.add_argument("--values", required=True,
                      help="comma-separated grid, e.g. 0.0,0.2,0.4")
    crun.add_argument("--n", type=int, default=5, help="number of processes")
    crun.add_argument("--crashes", type=int, default=0,
                      help="number of processes crashed at t=2")
    crun.add_argument("--seeds", type=int, default=3,
                      help="replications per grid point")
    crun.add_argument("--parallel", type=int, default=1,
                      help="worker processes (1 = sequential)")
    crun.add_argument("--seed", type=int, default=0)
    crun.add_argument("--max-time", type=float, default=150.0)
    crun.add_argument("--engine", choices=engine_names(),
                      default="reference",
                      help="simulation-engine backend (all backends are "
                           "bit-identical; pick for speed)")
    crun.add_argument("--resume", action="store_true",
                      help="continue a previously started campaign of the "
                           "same name (completed cells are never re-run)")
    crun.add_argument("--recompute", action="store_true",
                      help="ignore and overwrite stored cells")
    crun.add_argument("--shard-size", type=int, default=None,
                      help="cells per checkpointed shard")
    crun.add_argument("--progress", action="store_true",
                      help="print one 'completed/total cells' line per "
                           "finished cell")

    cstatus = campaign_sub.add_parser(
        "status", help="show campaign completion against the store",
        parents=[plugin_parent])
    store_argument(cstatus)
    cstatus.add_argument("name", nargs="?", default=None,
                         help="campaign to detail (default: list all)")
    cstatus.add_argument("--workdir", default=None, metavar="DIR",
                         help="also show the lease-table progress of the "
                              "distributed job at DIR (completed/leased/"
                              "pending cells, ETA from stored timings)")
    cstatus.add_argument("--watch", action="store_true",
                         help="refresh the status until the campaign (or "
                              "distributed job) completes")
    cstatus.add_argument("--interval", type=float, default=2.0,
                         help="seconds between --watch refreshes")

    cquery = campaign_sub.add_parser(
        "query", help="query stored results (or counterexamples)",
        parents=[plugin_parent])
    store_argument(cquery)
    cquery.add_argument("--algorithm", default=None)
    cquery.add_argument("--loss", type=float, default=None,
                        help="Bernoulli loss probability")
    cquery.add_argument("--n", type=int, default=None, dest="n_processes")
    cquery.add_argument("--seed", type=int, default=None)
    cquery.add_argument("--campaign", default=None)
    cquery.add_argument("--group", default=None)
    cquery.add_argument("--violations-only", action="store_true",
                        help="only cells where a URB property was violated")
    cquery.add_argument("--limit", type=int, default=None)
    cquery.add_argument("--counterexamples", action="store_true",
                        help="list stored counterexample artifacts instead "
                             "of results")

    cexport = campaign_sub.add_parser(
        "export", help="export a campaign (or counterexample) from the store",
        parents=[plugin_parent])
    store_argument(cexport)
    cexport.add_argument("--campaign", default=None,
                         help="campaign to export (JSON report, or CSV when "
                              "--output ends in .csv)")
    cexport.add_argument("--counterexample", default=None, metavar="ID",
                         help="artifact id (or unambiguous schedule hash) of "
                              "a stored counterexample to export as a "
                              "replayable artifact")
    cexport.add_argument("--output", required=True, help="output file")

    cgc = campaign_sub.add_parser(
        "gc", help="repair and compact the store", parents=[plugin_parent])
    store_argument(cgc)
    cgc.add_argument("--drop-campaign", default=None, metavar="NAME",
                     help="delete this campaign's manifest first")
    cgc.add_argument("--drop-unreferenced", action="store_true",
                     help="also delete results referenced by no campaign")

    cserve = campaign_sub.add_parser(
        "serve",
        help="coordinate a distributed campaign: write the lease table, "
             "wait for workers, merge their stores",
        parents=[plugin_parent, obs_parent])
    store_argument(cserve)
    cserve.add_argument("--workdir", required=True, metavar="DIR",
                        help="job directory shared with the workers (holds "
                             "leases.sqlite and the per-worker stores)")
    cserve.add_argument("--name", default=None,
                        help="campaign name (default: derived from the sweep)")
    sweep_arguments(cserve)
    cserve.add_argument("--lease-timeout", type=float, default=60.0,
                        help="seconds a worker may go without heartbeating "
                             "before its lease is reclaimed")
    cserve.add_argument("--range-size", type=int, default=8,
                        help="cells per initial lease range")
    cserve.add_argument("--timeout", type=float, default=None,
                        help="abort if the job is not complete after this "
                             "many seconds (default: wait forever)")
    cserve.add_argument("--poll-interval", type=float, default=0.5,
                        help="seconds between coordinator status polls")
    cserve.add_argument("--progress", action="store_true",
                        help="print one status line per poll (default: an "
                             "in-place counter)")

    cwork = campaign_sub.add_parser(
        "work",
        help="run one lease-driven worker against a distributed job",
        parents=[plugin_parent, obs_parent])
    cwork.add_argument("--workdir", required=True, metavar="DIR",
                       help="job directory written by 'campaign serve'")
    cwork.add_argument("--store-root", default=None, metavar="DIR",
                       help="this worker's private result store (default: "
                            "WORKDIR/workers/<worker-id>/store)")
    cwork.add_argument("--worker-id", default=None,
                       help="stable worker identity (default: <host>-<pid>)")
    cwork.add_argument("--poll-interval", type=float, default=0.2,
                       help="seconds to sleep when nothing is claimable")
    cwork.add_argument("--wait-for-job", type=float, default=0.0,
                       metavar="SECONDS",
                       help="wait up to SECONDS for the lease table to "
                            "appear (lets workers start before 'serve')")

    cplan = campaign_sub.add_parser(
        "plan",
        help="estimate a sweep's wall cost and suggest a worker count "
             "from stored per-cell timings",
        parents=[plugin_parent])
    cplan.add_argument("--store", default=None, metavar="DIR",
                       help="result store supplying per-cell timings "
                            "(default: assume a flat per-cell cost)")
    sweep_arguments(cplan)
    cplan.add_argument("--target-seconds", type=float, default=60.0,
                       help="target wall time the worker suggestion aims for")

    store_parser = subparsers.add_parser(
        "store",
        help="result-store maintenance across stores",
        parents=[plugin_parent])
    store_sub = store_parser.add_subparsers(dest="store_command",
                                            required=True)
    smerge = store_sub.add_parser(
        "merge",
        help="merge result stores into one (idempotent union by cell hash)",
        parents=[plugin_parent])
    smerge.add_argument("--into", required=True, metavar="DIR",
                        help="destination store (created if missing)")
    smerge.add_argument("sources", nargs="+", metavar="SRC",
                        help="source store directories")

    obs_parser = subparsers.add_parser(
        "obs",
        help="observability: render metrics snapshots, evaluate alert rules",
        parents=[plugin_parent])
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    osnap = obs_sub.add_parser(
        "snapshot",
        help="render a metrics snapshot from a live run or a file",
        parents=[plugin_parent])
    osnap_source = osnap.add_mutually_exclusive_group(required=True)
    osnap_source.add_argument(
        "--url", default=None,
        help="base URL of a live --metrics-port server, e.g. "
             "http://127.0.0.1:9300 (its /snapshot route is fetched)")
    osnap_source.add_argument(
        "--file", default=None,
        help="JSON snapshot file written by --metrics-out")
    osnap.add_argument("--raw", action="store_true",
                       help="print the raw JSON instead of rendered tables")
    ocheck = obs_sub.add_parser(
        "check",
        help="evaluate threshold alert rules against a snapshot "
             "(exit 1 when any rule fires)",
        parents=[plugin_parent])
    ocheck.add_argument("snapshot",
                        help="JSON snapshot file, or a live server base URL "
                             "when it starts with http:// or https://")
    ocheck.add_argument("--rules", default=None, metavar="FILE",
                        help="JSON rules file (default: built-in rules)")

    trace_parser = subparsers.add_parser(
        "trace",
        help="distributed traces: merge per-process span files into one "
             "tree, export to Chrome tracing",
        parents=[plugin_parent])
    trace_sub = trace_parser.add_subparsers(dest="trace_command",
                                            required=True)
    trace_target_help = (
        "a job workdir (span files are discovered under <workdir>/obs/) "
        "or explicit timeline .jsonl files")
    tview = trace_sub.add_parser(
        "view",
        help="reconstruct the causally-ordered span tree of a campaign",
        parents=[plugin_parent])
    tview.add_argument("targets", nargs="+", metavar="TARGET",
                       help=trace_target_help)
    tview.add_argument("--trace-id", default=None,
                       help="select one trace when several are present "
                            "(default: the one with the most spans)")
    tview.add_argument("--json", action="store_true",
                       help="machine-readable output (tree, latency and "
                            "critical-path sections) instead of text")
    tview.add_argument("--max-children", type=int, default=40,
                       help="children rendered per span in text mode "
                            "(default %(default)s)")
    texport = trace_sub.add_parser(
        "export",
        help="export the merged trace for external viewers",
        parents=[plugin_parent])
    texport.add_argument("targets", nargs="+", metavar="TARGET",
                        help=trace_target_help)
    texport.add_argument("--trace-id", default=None,
                         help="select one trace when several are present")
    texport.add_argument("--format", choices=("chrome",), default="chrome",
                         help="output format: 'chrome' is Chrome "
                              "chrome://tracing / Perfetto JSON")
    texport.add_argument("--output", "-o", default=None, metavar="FILE",
                         help="write to FILE instead of stdout")
    return parser


@contextmanager
def _obs_session(args: argparse.Namespace) -> Iterator[None]:
    """Enable observability for one CLI command when any obs flag is set.

    ``--metrics-port`` serves live scrapes for the duration of the run,
    ``--metrics-out`` writes the final JSON snapshot when the command
    exits (on success *and* on failure — a crashed run's partial counters
    are exactly what the post-mortem wants), and ``--timeline-out``
    streams structured run events.  Without any of the flags the registry
    stays disabled and this wrapper is a no-op, preserving the
    bit-identical baseline.
    """
    port = getattr(args, "metrics_port", None)
    metrics_out = getattr(args, "metrics_out", None)
    timeline_out = getattr(args, "timeline_out", None)
    if port is None and metrics_out is None and timeline_out is None:
        yield
        return
    obs.enable()
    timeline = previous = server = None
    if timeline_out is not None:
        timeline = obs.Timeline(timeline_out)
        previous = obs.set_timeline(timeline)
    if port is not None:
        server = obs.start_server(port=port)
        print(f"obs: serving http://{server.host}:{server.port}/metrics",
              file=sys.stderr)
    try:
        yield
    finally:
        if server is not None:
            server.shutdown()
        if timeline is not None:
            obs.set_timeline(previous)
            timeline.close()
        if metrics_out is not None:
            output = Path(metrics_out)
            output.parent.mkdir(parents=True, exist_ok=True)
            output.write_text(obs.render_json() + "\n", encoding="utf-8")
            print(f"obs: metrics snapshot written to {output}",
                  file=sys.stderr)


def _load_snapshot(source: str) -> dict[str, Any]:
    """Load a snapshot from a ``--metrics-out`` file or a live server."""
    if source.startswith(("http://", "https://")):
        from urllib.request import urlopen

        url = source.rstrip("/")
        if not url.endswith("/snapshot"):
            url += "/snapshot"
        with urlopen(url, timeout=10.0) as response:
            return json.loads(response.read().decode("utf-8"))
    return json.loads(Path(source).read_text(encoding="utf-8"))


def _obs_snapshot(args: argparse.Namespace) -> int:
    source = args.url if args.url is not None else args.file
    try:
        data = _load_snapshot(source)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load snapshot from {source!r}: {exc}",
              file=sys.stderr)
        return 2
    if args.raw:
        print(json.dumps(data, indent=2, sort_keys=True))
        return 0
    rows = []
    for name, metric in sorted(data.get("metrics", {}).items()):
        for sample in metric.get("samples", ()):
            labels = ",".join(f"{key}={value}" for key, value
                              in sorted(sample.get("labels", {}).items()))
            if metric.get("type") == "histogram":
                count = sample.get("count", 0)
                mean = sample.get("sum", 0.0) / count if count else 0.0
                shown = f"count={count} mean={mean:.4g}"
            else:
                shown = sample.get("value")
            rows.append([name, metric.get("type", "?"), labels, shown])
    if not rows:
        print("(snapshot contains no metrics — was the run started with "
              "--metrics-port or --metrics-out?)")
        return 0
    print(render_table(["metric", "type", "labels", "value"], rows,
                       title=f"Metrics snapshot ({source})"))
    return 0


def _obs_check(args: argparse.Namespace) -> int:
    try:
        data = _load_snapshot(args.snapshot)
        rules = obs.load_rules(args.rules) if args.rules else None
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = obs.evaluate(data, rules)
    print(report.describe())
    return report.exit_code


def _command_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "snapshot":
        return _obs_snapshot(args)
    if args.obs_command == "check":
        return _obs_check(args)
    print(f"error: unknown obs command {args.obs_command!r}",
          file=sys.stderr)  # pragma: no cover - argparse enforces
    return 2  # pragma: no cover


def _command_list() -> int:
    rows = []
    for experiment_id in experiment_registry.experiment_ids():
        entry = experiment_registry.get_experiment(experiment_id)
        rows.append([entry.experiment_id, entry.title])
    print(render_table(["id", "title"], rows, title="Registered experiments"))
    return 0


def _component_cell(value: Any) -> Any:
    return ("yes" if value else "no") if isinstance(value, bool) else value


def _command_components() -> int:
    """One table per registry, driven entirely by the registry enumeration.

    ``all_registries()`` supplies the registries and their display order;
    each spec class's ``TABLE_COLUMNS`` supplies the columns — adding a
    registry (or a spec column) needs no CLI edit.
    """
    tables = []
    for title, registry in all_registries().items():
        specs = registry.specs()
        if specs:
            columns = type(specs[0]).TABLE_COLUMNS
        else:  # pragma: no cover - every registry ships built-ins
            columns = (("name", "name"), ("description", "description"))
        rows = [
            [_component_cell(getattr(spec, field)) for _, field in columns]
            for spec in specs
        ]
        tables.append(render_table([header for header, _ in columns],
                                   rows, title=title))
    print("\n\n".join(tables))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.experiment.lower() == "all":
        results = experiment_registry.run_all(seeds=args.seeds, quick=args.quick)
    else:
        results = [
            experiment_registry.run_experiment(args.experiment, seeds=args.seeds,
                                               quick=args.quick)
        ]
    text = "\n\n".join(result.render() for result in results)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n(report written to {args.output})")
    return 0


def _base_scenario(args: argparse.Namespace, name: str,
                   loss: float = 0.0) -> Scenario:
    """Scenario shared by the demo and sweep commands: crash-last pattern,
    stop conditions derived from the algorithm spec's quiescence metadata."""
    spec = get_algorithm(args.algorithm)
    return Scenario(
        name=name,
        algorithm=args.algorithm,
        n_processes=args.n,
        seed=args.seed,
        crashes=crash_last(args.n, args.crashes, time=2.0),
        loss=LossSpec.bernoulli(loss) if loss > 0 else LossSpec.none(),
        max_time=args.max_time,
        stop_when_quiescent=spec.supports_quiescence,
        stop_when_all_correct_delivered=not spec.supports_quiescence,
        drain_grace_period=3.0,
        # explore has no --engine flag: a controller forces per-event
        # dispatch anyway, so offering a backend there would be a no-op.
        engine=getattr(args, "engine", "reference"),
    )


def _command_demo(args: argparse.Namespace) -> int:
    if args.crashes >= args.n:
        print("error: at least one process must remain correct", file=sys.stderr)
        return 2
    result = run_scenario(_base_scenario(args, "cli-demo", loss=args.loss))
    print(result.describe())
    summary = result.metrics
    rows = [[k, v] for k, v in sorted(summary.as_dict().items())
            if not isinstance(v, dict)]
    print()
    print(render_table(["metric", "value"], rows, title="Metrics"))
    return 0 if result.all_properties_hold else 1


def _coerce_token(raw: str) -> Any:
    """Coerce a CLI value token: bool (``true``/``false``), int, float, str."""
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    for caster in (int, float):
        try:
            return caster(raw)
        except ValueError:
            continue
    return raw


def _parse_sweep_value(field: str, raw: str) -> Any:
    """Parse one ``--values`` token for *field*.

    ``loss`` floats become Bernoulli loss specs; other tokens go through the
    standard coercion cascade (which covers registered workload names for
    ``--field workload``).
    """
    if field == "loss":
        probability = float(raw)
        return LossSpec.bernoulli(probability) if probability > 0 else LossSpec.none()
    return _coerce_token(raw)


def _render_sweep_result(result: SuiteResult) -> str:
    from .campaigns.reporting import GROUP_TABLE_HEADERS, format_group_rows

    rows = format_group_rows(
        result.groups(),
        mean_latency_of=lambda r: r.metrics.mean_latency,
        ok_of=lambda r: r.all_properties_hold,
        quiescent_of=lambda r: r.quiescence.quiescent,
    )
    return render_table(
        list(GROUP_TABLE_HEADERS),
        rows,
        title=f"Sweep ({result.parallel} worker(s), "
              f"{result.elapsed_seconds:.1f}s wall-clock)",
    )


def _progress_printer(args: argparse.Namespace, unit: str = "runs"):
    """The CLI progress callback: verbose one-line-per-completion with
    ``--progress``, an in-place stderr counter otherwise."""
    if getattr(args, "progress", False):
        def verbose(done: int, total: int, item) -> None:
            print(f"{done}/{total} {unit} completed ({item.group})",
                  file=sys.stderr)
        return verbose

    def counter(done: int, total: int, item) -> None:
        print(f"\r{done}/{total} {unit} finished", end="", file=sys.stderr)
    return counter


def _build_sweep_suite(args: argparse.Namespace,
                       name: str) -> Union[ScenarioSuite, str]:
    """The one-field sweep suite shared by ``sweep`` and ``campaign run``.

    Returns the suite, or an error message (the caller prints it and exits
    with status 2).
    """
    if args.crashes >= args.n:
        return "at least one process must remain correct"
    base = _base_scenario(args, name)
    try:
        values = [_parse_sweep_value(args.field, token)
                  for token in args.values.split(",") if token]
    except ValueError as exc:
        return f"bad --values entry for field {args.field!r}: {exc}"
    if not values:
        return "--values contained no usable entries"
    try:
        return (
            ScenarioSuite(f"{name}-{args.field}")
            .add_sweep(base, args.field, values,
                       groups=[f"{args.field}={token}"
                               for token in args.values.split(",") if token])
            .with_seeds(args.seeds)
        )
    except (TypeError, ValueError) as exc:
        return f"cannot build sweep over field {args.field!r}: {exc}"


def _command_sweep(args: argparse.Namespace) -> int:
    suite = _build_sweep_suite(args, f"sweep-{args.algorithm}")
    if isinstance(suite, str):
        print(f"error: {suite}", file=sys.stderr)
        return 2
    result = suite.run(
        parallel=args.parallel,
        progress=_progress_printer(args),
        worker_plugins=tuple(args.plugin),
    )
    if not args.progress:
        print(file=sys.stderr)
    print(_render_sweep_result(result))
    for failure in result.failures:
        print(f"warning: {failure.describe()}", file=sys.stderr)
        if failure.details:
            print(failure.details.rstrip(), file=sys.stderr)
    # Like demo: exit 1 when any run violated the URB properties (or failed
    # to execute), so CI jobs can gate on the sweep outcome.
    all_hold = all(r.all_properties_hold for r in result.results)
    return 0 if result.ok and all_hold else 1


def _parse_option_token(raw: str) -> tuple[str, Any]:
    """Parse one ``--option KEY=VALUE`` token (bool, int, float, then str)."""
    key, separator, value = raw.partition("=")
    if not key or not separator:
        raise ValueError(f"expected KEY=VALUE, got {raw!r}")
    return key, _coerce_token(value)


def _command_explore(args: argparse.Namespace) -> int:
    from .explore import Explorer

    if args.crashes >= args.n:
        print("error: at least one process must remain correct", file=sys.stderr)
        return 2
    if args.loss > 0 and not strategies.get(args.strategy).extra.get(
            "channel_loss", False):
        # Decision-driven strategies never consult the channel loss model,
        # so a baseline loss would be a silent no-op — reject it loudly.
        print(
            f"error: --loss has no effect with strategy {args.strategy!r} "
            "(it decides every copy's fate itself); use "
            "--option explore_drop_probability=... instead",
            file=sys.stderr,
        )
        return 2
    try:
        metadata = dict(_parse_option_token(token) for token in args.option)
    except ValueError as exc:
        print(f"error: bad --option: {exc}", file=sys.stderr)
        return 2
    scenario = _base_scenario(args, f"explore-{args.algorithm}",
                              loss=args.loss).with_(metadata=metadata)
    from .campaigns import ResultStore, StoreError

    store = None
    try:
        if args.store is not None:
            store = ResultStore(args.store)
        explorer = Explorer(
            scenario=scenario,
            strategy=args.strategy,
            budget=args.budget,
            parallel=args.parallel,
            shrink=not args.no_shrink,
            artifacts_dir=None if args.artifacts is None
            else Path(args.artifacts),
            store=store,
        )
        report = explorer.run(
            progress=lambda done, total, item: print(
                f"\r{done}/{total} schedules explored", end="", file=sys.stderr),
        )
    except (ValueError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if store is not None:
            store.close()
    print(file=sys.stderr)
    print(report.describe())
    for counterexample in report.counterexamples:
        if counterexample.artifact_path is not None:
            print(f"  (artifact written to {counterexample.artifact_path})")
    if args.expect_violation:
        caught = bool(report.counterexamples)
        if not caught:
            print("error: expected a violation but none was found",
                  file=sys.stderr)
            return 1
        if args.no_shrink:
            # Without shrinking there is no replay to verify — only claim
            # what actually happened.
            print("expected violation found (shrinking disabled, replay "
                  "not verified)")
            return 0
        # Shrinking ran: every counterexample must have produced a shrunk
        # trace whose replay reproduced the same violation.  A missing
        # shrunk trace means the sanity replay diverged — exactly the
        # record/replay regression this self-test exists to catch.
        if all(c.shrunk_verified for c in report.counterexamples):
            print("expected violation found (and its shrunk counterexample "
                  "replays to the same violation)")
            return 0
        print("error: expected a violation and found one, but a shrunk "
              "counterexample failed to replay to the same violation",
              file=sys.stderr)
        return 1
    return 0 if report.ok else 1


def _command_replay(args: argparse.Namespace) -> int:
    from .analysis.properties import violation_signature
    from .explore.serialize import load_counterexample
    from .explore.explorer import replay_decisions

    path = Path(args.artifact)
    if not path.exists():
        print(f"error: no such artifact {path}", file=sys.stderr)
        return 2
    try:
        data = load_counterexample(path)
    except (ValueError, KeyError) as exc:
        print(f"error: cannot load counterexample: {exc}", file=sys.stderr)
        return 2
    decisions = data["decisions"]
    which = "full"
    if not args.full and data.get("shrunk_decisions") is not None:
        decisions = data["shrunk_decisions"]
        which = "shrunk"
    simulation, verdict = replay_decisions(data["scenario"], decisions)
    recorded = tuple(data["signature"])
    replayed = violation_signature(verdict)
    print(f"replayed {which} trace ({len(decisions)} decisions) of schedule "
          f"{data['schedule_hash']} on {data['scenario'].describe()}")
    print(simulation.describe())
    print(verdict.describe())
    if replayed == recorded:
        print(f"violation reproduced: {', '.join(recorded) or '<none>'}")
        return 0
    print(
        f"error: replay diverged — artifact records violations "
        f"[{', '.join(recorded)}] but the replay produced "
        f"[{', '.join(replayed)}]",
        file=sys.stderr,
    )
    return 1


def _render_campaign_status(store: "ResultStore") -> str:
    rows = [
        [info.name, info.suite_name, info.done, info.total,
         "complete" if info.complete else "in progress"]
        for info in store.campaigns()
    ]
    return render_table(
        ["campaign", "suite", "done", "cells", "state"],
        rows, title=f"Campaigns in {store.root}",
    )


def _campaign_run(store: "ResultStore", args: argparse.Namespace) -> int:
    from .campaigns import Campaign, campaign_table

    suite = _build_sweep_suite(args, f"campaign-{args.algorithm}")
    if isinstance(suite, str):
        print(f"error: {suite}", file=sys.stderr)
        return 2
    campaign = Campaign(
        store, suite,
        name=args.name,
        parallel=args.parallel,
        shard_size=args.shard_size,
        worker_plugins=tuple(args.plugin),
    )
    report = campaign.run(
        resume=args.resume,
        recompute=args.recompute,
        progress=_progress_printer(args, unit="cells"),
    )
    if not args.progress:
        print(file=sys.stderr)
    print(report.describe())
    print()
    print(campaign_table(store, report.name).render())
    for failure in report.failures:
        print(f"warning: {failure.describe()}", file=sys.stderr)
        if failure.details:
            print(failure.details.rstrip(), file=sys.stderr)
    rows = campaign.rows()
    all_hold = all(row.all_properties_hold for row in rows if row is not None)
    return 0 if report.complete and all_hold else 1


def _store_mean_wall_time(store: "ResultStore") -> Optional[float]:
    """Mean stored per-cell wall seconds, or ``None`` without timing data."""
    timings = [row.wall_time for row in store.query()
               if row.wall_time is not None]
    return sum(timings) / len(timings) if timings else None


def _lease_status_line(workdir: str,
                       store: "ResultStore") -> tuple[str, bool, int]:
    """One distributed-job progress line (with ETA when timings exist),
    plus whether the job is complete and its completed-cell count."""
    from .campaigns import LeaseTable

    with LeaseTable(workdir) as table:
        status = table.status()
    line = f"job at {workdir}: {status.describe()}"
    mean = _store_mean_wall_time(store)
    remaining = status.total_cells - status.completed_cells
    if not status.complete and remaining > 0 and mean is not None:
        eta = remaining * mean / max(status.active_workers, 1)
        line += f", eta ~{eta:.0f}s"
    return line, status.complete, status.completed_cells


def _campaign_status_once(
        store: "ResultStore",
        args: argparse.Namespace) -> tuple[int, bool, int]:
    """Print the status once; returns ``(exit_code, everything_complete,
    done_cells)`` — the cell count feeds the ``--watch`` rate line."""
    complete = True
    done_cells = 0
    if args.name is None:
        print(_render_campaign_status(store))
        complete = all(info.complete for info in store.campaigns())
        done_cells = sum(info.done for info in store.campaigns())
    else:
        info = store.campaign_info(args.name)
        if info is None:
            print(f"error: unknown campaign {args.name!r} in {store.root}",
                  file=sys.stderr)
            return 2, True, 0
        print(f"campaign {info.name!r} (suite {info.suite_name!r}): "
              f"{info.done}/{info.total} cells computed"
              f"{' — complete' if info.complete else ''}")
        groups: dict[str, list[int]] = {}
        for _position, group, cell_key in store.campaign_cells(args.name):
            groups.setdefault(group, [0, 0])
            groups[group][1] += 1
            if store.contains(cell_key, count=False):
                groups[group][0] += 1
        rows = [[group, f"{done}/{total}"]
                for group, (done, total) in groups.items()]
        print(render_table(["configuration", "done"], rows))
        complete = info.complete
        done_cells = info.done
    if args.workdir is not None:
        from .campaigns import LeaseError

        try:
            line, job_complete, job_done = _lease_status_line(args.workdir,
                                                              store)
        except LeaseError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2, True, 0
        print(line)
        federated = _federation_status_line(args.workdir)
        if federated is not None:
            print(federated)
        complete = complete and job_complete
        # During a distributed run the destination store stays empty until
        # the merge, so the lease table carries the live progress.
        done_cells = max(done_cells, job_done)
    return 0, complete, done_cells


def _federation_status_line(workdir: str) -> Optional[str]:
    """Per-worker cell counts from federated metric snapshots, if any.

    Workers flush snapshots into ``<workdir>/obs/<worker_id>/`` when obs
    is enabled; an untraced job has no snapshots and gets no line.
    """
    import time as time_module

    from .obs import federation

    try:
        envelopes = federation.read_snapshots(Path(workdir) / "obs")
    except (OSError, ValueError):
        return None
    if not envelopes:
        return None
    now = time_module.time()
    parts = []
    for worker in sorted(envelopes):
        metrics = envelopes[worker].get("snapshot", {}).get("metrics", {})
        cells = sum(
            sample.get("value", 0.0)
            for sample in metrics.get("repro_worker_cells_total",
                                      {}).get("samples", ()))
        age = now - float(envelopes[worker].get("written_unix", now))
        parts.append(f"{worker} {cells:.0f} cell(s), {age:.0f}s ago")
    return "workers (federated): " + "; ".join(parts)


def _campaign_status(store: "ResultStore", args: argparse.Namespace) -> int:
    import math
    import time as time_module

    previous: Optional[tuple[float, int]] = None
    ewma: Optional[float] = None
    # Time constant of ~5 poll intervals: long enough to smooth jitter,
    # short enough that a late-run straggler phase (rate collapsing while
    # one worker grinds the tail) is visible instead of being averaged
    # away by the fast early ramp, as a since-start mean would do.
    tau = max(5.0 * getattr(args, "interval", 1.0), 1e-6)
    while True:
        now = time_module.monotonic()
        code, complete, done = _campaign_status_once(store, args)
        if args.watch and previous is not None:
            elapsed = now - previous[0]
            delta = done - previous[1]
            if elapsed > 0:
                instant = delta / elapsed
                alpha = 1.0 - math.exp(-elapsed / tau)
                ewma = instant if ewma is None \
                    else ewma + alpha * (instant - ewma)
                print(f"rate: {ewma:.2f} cells/s "
                      f"(EWMA; +{delta} cell(s) in {elapsed:.1f}s)")
        previous = (now, done)
        if not args.watch or code != 0 or complete:
            return code
        time_module.sleep(args.interval)
        print()


def _campaign_query(store: "ResultStore", args: argparse.Namespace) -> int:
    from .campaigns import query_table

    if args.counterexamples:
        ignored = [flag for flag, value in (
            ("--algorithm", args.algorithm), ("--loss", args.loss),
            ("--n", args.n_processes), ("--seed", args.seed),
            ("--campaign", args.campaign), ("--group", args.group),
            ("--limit", args.limit),
        ) if value is not None] + (
            ["--violations-only"] if args.violations_only else []
        )
        if ignored:
            # Result filters do not apply to the artifacts table; refusing
            # beats returning an unfiltered listing that looks filtered.
            print(f"error: {', '.join(ignored)} cannot be combined with "
                  "--counterexamples", file=sys.stderr)
            return 2
        rows = [
            [ce.artifact_id, ce.schedule_hash, ce.strategy, ce.algorithm,
             ", ".join(ce.signature), ce.shrunk_verified]
            for ce in store.counterexamples()
        ]
        print(render_table(
            ["artifact", "schedule", "strategy", "algorithm", "violates",
             "shrunk ok"],
            rows, title=f"Counterexamples in {store.root}",
        ))
        return 0
    filters: dict[str, Any] = {}
    if args.algorithm is not None:
        filters["algorithm"] = args.algorithm
    if args.loss is not None:
        filters["loss"] = args.loss
    if args.n_processes is not None:
        filters["n_processes"] = args.n_processes
    if args.seed is not None:
        filters["seed"] = args.seed
    if args.campaign is not None:
        filters["campaign"] = args.campaign
    if args.group is not None:
        filters["group"] = args.group
    if args.violations_only:
        filters["all_hold"] = False
    try:
        print(query_table(store, limit=args.limit, **filters).render())
    except Exception as exc:  # noqa: BLE001 - user-facing query errors
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _campaign_export(store: "ResultStore", args: argparse.Namespace) -> int:
    from .campaigns import campaign_report, campaign_table
    from .experiments.export import write_artifact_csv, write_experiment_json

    if (args.campaign is None) == (args.counterexample is None):
        print("error: pass exactly one of --campaign / --counterexample",
              file=sys.stderr)
        return 2
    output = Path(args.output)
    try:
        if args.counterexample is not None:
            store.export_counterexample(args.counterexample, output)
        elif output.suffix.lower() == ".csv":
            write_artifact_csv(campaign_table(store, args.campaign), output)
        else:
            write_experiment_json(campaign_report(store, args.campaign),
                                  output)
    except (KeyError, ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"exported to {output}")
    return 0


def _campaign_gc(store: "ResultStore", args: argparse.Namespace) -> int:
    if args.drop_campaign is not None:
        try:
            store.delete_campaign(args.drop_campaign)
        except RuntimeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"dropped campaign {args.drop_campaign!r}")
    stats = store.gc(drop_unreferenced=args.drop_unreferenced)
    print(stats.describe())
    return 0


def _campaign_serve(store: "ResultStore", args: argparse.Namespace) -> int:
    from .campaigns import Coordinator, LeaseError, campaign_table

    suite = _build_sweep_suite(args, f"campaign-{args.algorithm}")
    if isinstance(suite, str):
        print(f"error: {suite}", file=sys.stderr)
        return 2
    coordinator = Coordinator(
        args.workdir, suite,
        name=args.name,
        lease_timeout=args.lease_timeout,
        range_size=args.range_size,
    )
    if args.progress:
        def on_status(status) -> None:
            print(status.describe(), file=sys.stderr)
    else:
        def on_status(status) -> None:
            print(f"\r{status.completed_cells}/{status.total_cells} cells "
                  "completed", end="", file=sys.stderr)
    try:
        report = coordinator.serve(
            store,
            poll_interval=args.poll_interval,
            timeout=args.timeout,
            on_status=on_status,
        )
    except LeaseError as exc:
        print(file=sys.stderr)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not args.progress:
        print(file=sys.stderr)
    print(report.describe())
    print()
    print(campaign_table(store, report.name).render())
    rows = store.query(campaign=report.name)
    all_hold = all(row.all_properties_hold for row in rows)
    return 0 if report.status.complete and all_hold else 1


def _campaign_work(args: argparse.Namespace) -> int:
    from .campaigns import LeaseError, run_worker

    def progress(worker_id: str, done: int) -> None:
        print(f"\r{worker_id}: {done} cell(s) processed", end="",
              file=sys.stderr)

    try:
        report = run_worker(
            args.workdir,
            store_root=args.store_root,
            worker_id=args.worker_id,
            poll_interval=args.poll_interval,
            worker_plugins=tuple(args.plugin),
            wait_for_job=args.wait_for_job,
            progress=progress,
        )
    except (LeaseError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(file=sys.stderr)
    print(report.describe())
    for error in report.errors:
        print(f"warning: {error}", file=sys.stderr)
    return 0 if not report.errors else 1


def _campaign_plan(args: argparse.Namespace) -> int:
    from .campaigns import StoreError, plan_campaign

    suite = _build_sweep_suite(args, f"campaign-{args.algorithm}")
    if isinstance(suite, str):
        print(f"error: {suite}", file=sys.stderr)
        return 2
    try:
        plan = plan_campaign(suite, args.store,
                             target_seconds=args.target_seconds)
    except (StoreError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(plan.describe())
    print()
    print(plan.table().render())
    return 0


def _command_store(args: argparse.Namespace) -> int:
    from .campaigns import MergeConflictError, StoreError, merge_store_paths

    if args.store_command != "merge":  # pragma: no cover - argparse enforces
        print(f"error: unknown store command {args.store_command!r}",
              file=sys.stderr)
        return 2
    try:
        stats = merge_store_paths(args.into, args.sources)
    except MergeConflictError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(stats.describe())
    return 0


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(int(q * (len(sorted_values) - 1) + 0.5),
                len(sorted_values) - 1)
    return sorted_values[index]


def _command_trace(args: argparse.Namespace) -> int:
    from .obs import tracing

    targets = args.targets[0] if len(args.targets) == 1 else args.targets
    try:
        tree = tracing.load_trace(targets, trace_id=args.trace_id)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if tree.span_count == 0:
        print("error: no span records found (was the job traced? spans "
              "require an enabled obs layer)", file=sys.stderr)
        return 2

    if args.trace_command == "export":
        events = tracing.chrome_trace_events(tree)
        body = json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                          indent=2, sort_keys=True)
        if args.output is not None:
            output = Path(args.output)
            output.parent.mkdir(parents=True, exist_ok=True)
            output.write_text(body + "\n", encoding="utf-8")
            print(f"trace: wrote {len(events)} event(s) for trace "
                  f"{tree.trace_id} to {output}")
        else:
            print(body)
        return 0

    cells = tree.cell_spans()
    latencies = sorted(cell.wall_seconds for cell in cells)
    critical = tree.critical_path()
    by_proc: dict[str, list[float]] = {}
    for cell in cells:
        by_proc.setdefault(cell.proc, []).append(cell.wall_seconds)

    if args.json:
        document = {
            "trace_id": tree.trace_id,
            "span_count": tree.span_count,
            "procs": list(tree.procs),
            "orphan_span_ids": [node.span_id for node in tree.orphans],
            "skew_offsets": tree.offsets,
            "spans": {span_id: node.as_dict()
                      for span_id, node in tree.by_id.items()},
            "cells": {
                "count": len(cells),
                "wall_seconds_total": sum(latencies),
                "wall_seconds_mean":
                    (sum(latencies) / len(latencies)) if latencies else 0.0,
                "wall_seconds_p95": _percentile(latencies, 0.95),
                "by_proc": {proc: {"count": len(values),
                                   "wall_seconds_total": sum(values)}
                            for proc, values in sorted(by_proc.items())},
            },
            "critical_path": [node.span_id for node in critical],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    print(f"trace {tree.trace_id}: {tree.span_count} span(s) across "
          f"{len(tree.procs)} process(es) ({', '.join(tree.procs)})")
    if tree.offsets:
        shifts = ", ".join(f"{proc}: -{offset * 1000:.1f}ms"
                           for proc, offset in sorted(tree.offsets.items()))
        print(f"clock skew normalised: {shifts}")
    if tree.orphans:
        print(f"WARNING: {len(tree.orphans)} orphan span(s) — a parent "
              "record is missing (partial files or broken propagation)")
    print()
    print(tree.render(max_children=args.max_children))
    if cells:
        print()
        print(f"cells: {len(cells)} — total {sum(latencies):.3f}s, "
              f"mean {sum(latencies) / len(latencies):.3f}s, "
              f"p95 {_percentile(latencies, 0.95):.3f}s")
        for proc, values in sorted(by_proc.items()):
            print(f"  {proc}: {len(values)} cell(s), "
                  f"{sum(values):.3f}s total")
        slowest = sorted(cells, key=lambda c: c.wall_seconds,
                         reverse=True)[:3]
        for cell in slowest:
            key = str(cell.fields.get("cell_key", ""))[:12]
            print(f"  slowest: {key} on {cell.proc} "
                  f"({cell.wall_seconds:.3f}s)")
    if critical:
        print()
        total = critical[0].wall_seconds
        print(f"critical path ({total:.3f}s at the root):")
        for node in critical:
            share = (node.wall_seconds / total * 100) if total > 0 else 0.0
            print(f"  {node.name} ({node.proc}) {node.wall_seconds:.3f}s "
                  f"[{share:.0f}%]")
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    from .campaigns import LeaseError, ResultStore, StoreError

    # `work` and `plan` manage their own stores (a worker's store lives
    # under the job workdir; a plan may have no store at all).
    if args.campaign_command == "work":
        return _campaign_work(args)
    if args.campaign_command == "plan":
        return _campaign_plan(args)
    try:
        # Read verbs must not silently initialise an empty store at a typo.
        store = ResultStore(args.store,
                            create=args.campaign_command in ("run", "serve"))
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    handlers = {
        "run": _campaign_run,
        "status": _campaign_status,
        "query": _campaign_query,
        "export": _campaign_export,
        "gc": _campaign_gc,
        "serve": _campaign_serve,
    }
    with store:
        try:
            return handlers[args.campaign_command](store, args)
        except (StoreError, LeaseError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    # Import plugins before building the parser so their registrations
    # show up in --algorithm choices.
    plugin_args, _ = _PLUGIN_PARSER.parse_known_args(argv)
    for module_name in plugin_args.plugin:
        try:
            importlib.import_module(module_name)
        except ImportError as exc:
            print(f"error: cannot import --plugin {module_name!r}: {exc}",
                  file=sys.stderr)
            return 2
    parser = build_parser()
    args = parser.parse_args(argv)
    # The pre-scan saw --plugin wherever it appeared; make that the value
    # commands consume (subparser parsing may have partially clobbered it).
    args.plugin = plugin_args.plugin
    if args.command == "list":
        return _command_list()
    if args.command == "components":
        return _command_components()
    if args.command == "run":
        return _command_run(args)
    handlers = {
        "demo": _command_demo,
        "sweep": _command_sweep,
        "explore": _command_explore,
        "replay": _command_replay,
        "campaign": _command_campaign,
        "store": _command_store,
        "obs": _command_obs,
        "trace": _command_trace,
    }
    handler = handlers.get(args.command)
    if handler is not None:
        # _obs_session is a no-op unless the verb carries an obs flag.
        with _obs_session(args):
            return handler(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


#: Minimal pre-parser so plugins can extend the registries before the real
#: parser snapshots the registry names into ``choices``.
_PLUGIN_PARSER = argparse.ArgumentParser(add_help=False)
_PLUGIN_PARSER.add_argument("--plugin", action="append", default=[])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
