"""Command-line interface.

Installed as ``repro-urb`` (see ``pyproject.toml``); also runnable as
``python -m repro``.

Sub-commands
------------
``list``
    List the registered experiments.
``components``
    List the registered pluggable components (algorithms, channel families,
    failure-detector setups, workload presets) with their metadata.
``run E3 [--seeds 3] [--quick] [--output FILE]``
    Run one experiment (or ``all``) and print / save its tables and figures.
``demo [--algorithm algorithm2] [--n 5] [--loss 0.3] [--crashes 2]``
    Run a single scenario and print its analysis (a fast way to poke at the
    protocols without writing code).
``sweep --field loss --values 0.0,0.2,0.4 [--seeds 3] [--parallel 4]``
    Declarative scenario sweep through the batch runner, optionally fanned
    out over worker processes.
``explore --strategy random_walk --budget 200 [--parallel 4] [--artifacts D]``
    Adversarial schedule exploration (see :mod:`repro.explore`): search the
    space of admissible schedules for URB property violations, shrinking any
    counterexample to a minimal replayable decision trace.

The ``--algorithm`` choices everywhere come from the live algorithm registry,
so protocols registered by plugin modules (imported via ``--plugin``) are
selectable by name.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from .analysis.tables import render_table
from .experiments import registry as experiment_registry
from .experiments.batch import ScenarioSuite, SuiteResult
from .experiments.config import Scenario
from .experiments.common import crash_last
from .experiments.runner import run_scenario
from .network.loss import LossSpec
from .registry import (
    algorithm_names,
    algorithms,
    channels,
    detector_setups,
    get_algorithm,
    strategies,
    strategy_names,
    workloads,
)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests).

    Built lazily per invocation so that ``choices`` reflect every component
    registered at call time, including third-party plugins.
    """
    parser = argparse.ArgumentParser(
        prog="repro-urb",
        description=(
            "Uniform Reliable Broadcast in anonymous distributed systems with "
            "fair lossy channels — experiment harness."
        ),
    )
    # --plugin is accepted both before and after the subcommand; the values
    # are collected by the position-agnostic pre-scan in main() (a subparser
    # default would clobber top-level values, hence SUPPRESS).
    plugin_parent = argparse.ArgumentParser(add_help=False)
    plugin_parent.add_argument(
        "--plugin", action="append", default=argparse.SUPPRESS, metavar="MODULE",
        help="import MODULE before running (for repro.registry registrations); "
             "repeatable",
    )
    parser.add_argument(
        "--plugin", action="append", default=[], metavar="MODULE",
        help=argparse.SUPPRESS,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments",
                          parents=[plugin_parent])
    subparsers.add_parser(
        "components",
        help="list registered algorithms, channels, detector setups, workloads",
        parents=[plugin_parent],
    )

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')",
                                       parents=[plugin_parent])
    run_parser.add_argument("experiment", help="experiment id, e.g. E3, or 'all'")
    run_parser.add_argument("--seeds", type=int, default=None,
                            help="replications per configuration")
    run_parser.add_argument("--quick", action="store_true",
                            help="smaller grids / fewer seeds")
    run_parser.add_argument("--output", type=str, default=None,
                            help="write the rendered report to this file")

    demo_parser = subparsers.add_parser("demo", help="run a single scenario",
                                        parents=[plugin_parent])
    demo_parser.add_argument("--algorithm", choices=algorithm_names(),
                             default="algorithm2")
    demo_parser.add_argument("--n", type=int, default=5, help="number of processes")
    demo_parser.add_argument("--loss", type=float, default=0.2,
                             help="Bernoulli loss probability")
    demo_parser.add_argument("--crashes", type=int, default=1,
                             help="number of processes crashed at t=2")
    demo_parser.add_argument("--seed", type=int, default=0)
    demo_parser.add_argument("--max-time", type=float, default=150.0)

    sweep_parser = subparsers.add_parser(
        "sweep", help="sweep one scenario field through the batch runner",
        parents=[plugin_parent])
    sweep_parser.add_argument("--algorithm", choices=algorithm_names(),
                              default="algorithm2")
    sweep_parser.add_argument("--field", default="loss",
                              help="Scenario field to vary (default: loss; "
                                   "'loss' values are Bernoulli probabilities)")
    sweep_parser.add_argument("--values", required=True,
                              help="comma-separated grid, e.g. 0.0,0.2,0.4")
    sweep_parser.add_argument("--n", type=int, default=5,
                              help="number of processes")
    sweep_parser.add_argument("--crashes", type=int, default=0,
                              help="number of processes crashed at t=2")
    sweep_parser.add_argument("--seeds", type=int, default=3,
                              help="replications per grid point")
    sweep_parser.add_argument("--parallel", type=int, default=1,
                              help="worker processes (1 = sequential)")
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument("--max-time", type=float, default=150.0)

    explore_parser = subparsers.add_parser(
        "explore",
        help="search the schedule space for URB property violations",
        parents=[plugin_parent])
    explore_parser.add_argument("--algorithm", choices=algorithm_names(),
                                default="algorithm1")
    explore_parser.add_argument("--strategy", choices=strategy_names(),
                                default="random_walk")
    explore_parser.add_argument("--budget", type=int, default=200,
                                help="maximum schedules to run (enumerative "
                                     "strategies cap this at their space size)")
    explore_parser.add_argument("--parallel", type=int, default=1,
                                help="worker processes (1 = sequential)")
    explore_parser.add_argument("--n", type=int, default=4,
                                help="number of processes")
    explore_parser.add_argument("--loss", type=float, default=0.0,
                                help="baseline Bernoulli loss probability; "
                                     "only meaningful for strategies that "
                                     "delegate loss to the channels (e.g. "
                                     "crash_points) — decision-driven "
                                     "strategies take --option "
                                     "explore_drop_probability instead")
    explore_parser.add_argument("--crashes", type=int, default=0,
                                help="number of processes crashed at t=2")
    explore_parser.add_argument("--seed", type=int, default=0)
    explore_parser.add_argument("--max-time", type=float, default=150.0)
    explore_parser.add_argument("--no-shrink", action="store_true",
                                help="skip ddmin minimisation of counterexamples")
    explore_parser.add_argument("--artifacts", type=str, default=None,
                                metavar="DIR",
                                help="write counterexample JSON artifacts here")
    explore_parser.add_argument("--option", action="append", default=[],
                                metavar="KEY=VALUE",
                                help="strategy tunable placed in the scenario "
                                     "metadata (e.g. explore_drop_probability"
                                     "=0.4); repeatable")
    explore_parser.add_argument("--expect-violation", action="store_true",
                                help="invert the exit code: succeed only if a "
                                     "violation is found and its shrunk "
                                     "counterexample replays to the same "
                                     "violation (self-test mode)")
    return parser


def _command_list() -> int:
    rows = []
    for experiment_id in experiment_registry.experiment_ids():
        entry = experiment_registry.get_experiment(experiment_id)
        rows.append([entry.experiment_id, entry.title])
    print(render_table(["id", "title"], rows, title="Registered experiments"))
    return 0


def _command_components() -> int:
    algorithm_rows = [
        [spec.name,
         "yes" if spec.requires_majority else "no",
         "yes" if spec.supports_quiescence else "no",
         "yes" if spec.uses_failure_detectors else "no",
         "yes" if spec.anonymous else "no",
         spec.description]
        for spec in algorithms.specs()
    ]
    print(render_table(
        ["name", "needs majority", "quiescent", "uses FDs", "anonymous",
         "description"],
        algorithm_rows, title="Algorithms",
    ))
    print()
    print(render_table(
        ["name", "lossy", "description"],
        [[s.name, "yes" if s.lossy else "no", s.description]
         for s in channels.specs()],
        title="Channel families",
    ))
    print()
    print(render_table(
        ["name", "description"],
        [[s.name, s.description] for s in detector_setups.specs()],
        title="Failure-detector setups",
    ))
    print()
    print(render_table(
        ["name", "description"],
        [[s.name, s.description] for s in workloads.specs()],
        title="Workload presets",
    ))
    print()
    print(render_table(
        ["name", "enumerative", "description"],
        [[s.name, "yes" if s.enumerative else "no", s.description]
         for s in strategies.specs()],
        title="Exploration strategies",
    ))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.experiment.lower() == "all":
        results = experiment_registry.run_all(seeds=args.seeds, quick=args.quick)
    else:
        results = [
            experiment_registry.run_experiment(args.experiment, seeds=args.seeds,
                                               quick=args.quick)
        ]
    text = "\n\n".join(result.render() for result in results)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n(report written to {args.output})")
    return 0


def _base_scenario(args: argparse.Namespace, name: str,
                   loss: float = 0.0) -> Scenario:
    """Scenario shared by the demo and sweep commands: crash-last pattern,
    stop conditions derived from the algorithm spec's quiescence metadata."""
    spec = get_algorithm(args.algorithm)
    return Scenario(
        name=name,
        algorithm=args.algorithm,
        n_processes=args.n,
        seed=args.seed,
        crashes=crash_last(args.n, args.crashes, time=2.0),
        loss=LossSpec.bernoulli(loss) if loss > 0 else LossSpec.none(),
        max_time=args.max_time,
        stop_when_quiescent=spec.supports_quiescence,
        stop_when_all_correct_delivered=not spec.supports_quiescence,
        drain_grace_period=3.0,
    )


def _command_demo(args: argparse.Namespace) -> int:
    if args.crashes >= args.n:
        print("error: at least one process must remain correct", file=sys.stderr)
        return 2
    result = run_scenario(_base_scenario(args, "cli-demo", loss=args.loss))
    print(result.describe())
    summary = result.metrics
    rows = [[k, v] for k, v in sorted(summary.as_dict().items())
            if not isinstance(v, dict)]
    print()
    print(render_table(["metric", "value"], rows, title="Metrics"))
    return 0 if result.all_properties_hold else 1


def _coerce_token(raw: str) -> Any:
    """Coerce a CLI value token: bool (``true``/``false``), int, float, str."""
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    for caster in (int, float):
        try:
            return caster(raw)
        except ValueError:
            continue
    return raw


def _parse_sweep_value(field: str, raw: str) -> Any:
    """Parse one ``--values`` token for *field*.

    ``loss`` floats become Bernoulli loss specs; other tokens go through the
    standard coercion cascade (which covers registered workload names for
    ``--field workload``).
    """
    if field == "loss":
        probability = float(raw)
        return LossSpec.bernoulli(probability) if probability > 0 else LossSpec.none()
    return _coerce_token(raw)


def _render_sweep_result(result: SuiteResult) -> str:
    stats = result.group_stats(lambda r: r.metrics.mean_latency)
    ok = result.group_fraction(lambda r: r.all_properties_hold)
    quiescent = result.group_fraction(lambda r: r.quiescence.quiescent)
    rows = []
    for group, results in result.groups().items():
        latency = stats[group]
        rows.append([
            group,
            len(results),
            f"{latency.mean:.3f}" if latency else "-",
            f"{ok[group]:.2f}",
            f"{quiescent[group]:.2f}",
        ])
    return render_table(
        ["configuration", "runs", "mean latency", "URB ok", "quiescent"],
        rows,
        title=f"Sweep ({result.parallel} worker(s), "
              f"{result.elapsed_seconds:.1f}s wall-clock)",
    )


def _command_sweep(args: argparse.Namespace) -> int:
    if args.crashes >= args.n:
        print("error: at least one process must remain correct", file=sys.stderr)
        return 2
    base = _base_scenario(args, f"sweep-{args.algorithm}")
    try:
        values = [_parse_sweep_value(args.field, token)
                  for token in args.values.split(",") if token]
    except ValueError as exc:
        print(f"error: bad --values entry for field {args.field!r}: {exc}",
              file=sys.stderr)
        return 2
    if not values:
        print("error: --values contained no usable entries", file=sys.stderr)
        return 2
    try:
        suite = (
            ScenarioSuite(f"cli-sweep-{args.field}")
            .add_sweep(base, args.field, values,
                       groups=[f"{args.field}={token}"
                               for token in args.values.split(",") if token])
            .with_seeds(args.seeds)
        )
    except (TypeError, ValueError) as exc:
        print(f"error: cannot build sweep over field {args.field!r}: {exc}",
              file=sys.stderr)
        return 2
    result = suite.run(
        parallel=args.parallel,
        progress=lambda done, total, item: print(
            f"\r{done}/{total} runs finished", end="", file=sys.stderr),
        worker_plugins=tuple(args.plugin),
    )
    print(file=sys.stderr)
    print(_render_sweep_result(result))
    for failure in result.failures:
        print(f"warning: {failure.describe()}", file=sys.stderr)
        if failure.details:
            print(failure.details.rstrip(), file=sys.stderr)
    # Like demo: exit 1 when any run violated the URB properties (or failed
    # to execute), so CI jobs can gate on the sweep outcome.
    all_hold = all(r.all_properties_hold for r in result.results)
    return 0 if result.ok and all_hold else 1


def _parse_option_token(raw: str) -> tuple[str, Any]:
    """Parse one ``--option KEY=VALUE`` token (bool, int, float, then str)."""
    key, separator, value = raw.partition("=")
    if not key or not separator:
        raise ValueError(f"expected KEY=VALUE, got {raw!r}")
    return key, _coerce_token(value)


def _command_explore(args: argparse.Namespace) -> int:
    from .explore import Explorer

    if args.crashes >= args.n:
        print("error: at least one process must remain correct", file=sys.stderr)
        return 2
    if args.loss > 0 and not strategies.get(args.strategy).extra.get(
            "channel_loss", False):
        # Decision-driven strategies never consult the channel loss model,
        # so a baseline loss would be a silent no-op — reject it loudly.
        print(
            f"error: --loss has no effect with strategy {args.strategy!r} "
            "(it decides every copy's fate itself); use "
            "--option explore_drop_probability=... instead",
            file=sys.stderr,
        )
        return 2
    try:
        metadata = dict(_parse_option_token(token) for token in args.option)
    except ValueError as exc:
        print(f"error: bad --option: {exc}", file=sys.stderr)
        return 2
    scenario = _base_scenario(args, f"explore-{args.algorithm}",
                              loss=args.loss).with_(metadata=metadata)
    try:
        explorer = Explorer(
            scenario=scenario,
            strategy=args.strategy,
            budget=args.budget,
            parallel=args.parallel,
            shrink=not args.no_shrink,
            artifacts_dir=None if args.artifacts is None
            else Path(args.artifacts),
        )
        report = explorer.run(
            progress=lambda done, total, item: print(
                f"\r{done}/{total} schedules explored", end="", file=sys.stderr),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(file=sys.stderr)
    print(report.describe())
    for counterexample in report.counterexamples:
        if counterexample.artifact_path is not None:
            print(f"  (artifact written to {counterexample.artifact_path})")
    if args.expect_violation:
        caught = bool(report.counterexamples)
        if not caught:
            print("error: expected a violation but none was found",
                  file=sys.stderr)
            return 1
        if args.no_shrink:
            # Without shrinking there is no replay to verify — only claim
            # what actually happened.
            print("expected violation found (shrinking disabled, replay "
                  "not verified)")
            return 0
        # Shrinking ran: every counterexample must have produced a shrunk
        # trace whose replay reproduced the same violation.  A missing
        # shrunk trace means the sanity replay diverged — exactly the
        # record/replay regression this self-test exists to catch.
        if all(c.shrunk_verified for c in report.counterexamples):
            print("expected violation found (and its shrunk counterexample "
                  "replays to the same violation)")
            return 0
        print("error: expected a violation and found one, but a shrunk "
              "counterexample failed to replay to the same violation",
              file=sys.stderr)
        return 1
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    # Import plugins before building the parser so their registrations
    # show up in --algorithm choices.
    plugin_args, _ = _PLUGIN_PARSER.parse_known_args(argv)
    for module_name in plugin_args.plugin:
        try:
            importlib.import_module(module_name)
        except ImportError as exc:
            print(f"error: cannot import --plugin {module_name!r}: {exc}",
                  file=sys.stderr)
            return 2
    parser = build_parser()
    args = parser.parse_args(argv)
    # The pre-scan saw --plugin wherever it appeared; make that the value
    # commands consume (subparser parsing may have partially clobbered it).
    args.plugin = plugin_args.plugin
    if args.command == "list":
        return _command_list()
    if args.command == "components":
        return _command_components()
    if args.command == "run":
        return _command_run(args)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "explore":
        return _command_explore(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


#: Minimal pre-parser so plugins can extend the registries before the real
#: parser snapshots the registry names into ``choices``.
_PLUGIN_PARSER = argparse.ArgumentParser(add_help=False)
_PLUGIN_PARSER.add_argument("--plugin", action="append", default=[])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
