"""Opaque labels used by the anonymous failure detectors.

The failure-detector classes AΘ and AP\\* (paper §V) output pairs
``(label, number)``.  A *label* is a temporary, randomly assigned identifier
of a process: it lets the detector talk about "some process" without
revealing *which* process it is, because «each process does not know the
mapping relationship between a label and a process (even itself)».

:class:`Label` is therefore an opaque, hashable token whose representation
deliberately exposes nothing but a random value; the mapping between labels
and process indices lives only inside the oracle (the simulator's omniscient
side) and is never handed to protocol code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping


@dataclass(frozen=True, slots=True)
class Label:
    """An opaque random identifier.

    Two labels are equal iff their random values are equal; the value itself
    carries no information about the process it was assigned to.
    """

    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.value, int) or isinstance(self.value, bool):
            raise TypeError("label value must be an int")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Label(0x{self.value:016x})"

    def short(self) -> str:
        """Short hex form used in reports and debug traces."""
        return f"{self.value & 0xFFFF:04x}"


class LabelAssigner:
    """Assigns a distinct random :class:`Label` to each process index.

    The assignment is owned by the oracle; protocol code only ever sees the
    labels themselves (inside failure-detector views and ACK payloads), never
    the index → label mapping.

    Parameters
    ----------
    n_processes:
        Number of processes to label.
    rng:
        Random substream used for label values (derived from the run's
        master seed, so assignments are reproducible).
    bits:
        Size of the random label values.  128 bits makes accidental
        collisions essentially impossible; uniqueness is enforced regardless.
    """

    def __init__(self, n_processes: int, rng: random.Random, bits: int = 128) -> None:
        if n_processes < 1:
            raise ValueError("n_processes must be positive")
        if bits < 8:
            raise ValueError("labels need at least 8 bits")
        self._labels: dict[int, Label] = {}
        seen: set[int] = set()
        for index in range(n_processes):
            while True:
                value = rng.getrandbits(bits)
                if value not in seen:
                    seen.add(value)
                    break
            self._labels[index] = Label(value)

    @property
    def n_processes(self) -> int:
        """Number of labelled processes."""
        return len(self._labels)

    def label_of(self, index: int) -> Label:
        """Label assigned to process *index* (oracle-side use only)."""
        try:
            return self._labels[index]
        except KeyError:
            raise IndexError(
                f"process index {index} out of range [0, {len(self._labels)})"
            ) from None

    def index_of(self, label: Label) -> int:
        """Inverse lookup (oracle-side / analysis use only)."""
        for index, candidate in self._labels.items():
            if candidate == label:
                return index
        raise KeyError(f"unknown label {label!r}")

    def labels_of(self, indices: Iterable[int]) -> frozenset[Label]:
        """Labels of several processes as a frozenset."""
        return frozenset(self.label_of(i) for i in indices)

    def all_labels(self) -> frozenset[Label]:
        """Every assigned label."""
        return frozenset(self._labels.values())

    def as_mapping(self) -> Mapping[int, Label]:
        """Read-only view of the full assignment (analysis use only)."""
        return dict(self._labels)
