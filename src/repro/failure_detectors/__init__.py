"""Failure detectors: the paper's anonymous classes AΘ and AP\\*, the ground
truth oracle they are built on, and classic Θ/P for identified baselines."""

from .apstar import APStarOracle
from .atheta import AnonymousDetectorBase, AThetaKeepCrashed, AThetaOracle
from .base import (
    FailureDetector,
    FailureDetectorView,
    FDPair,
    StaticFailureDetector,
)
from .classic import PerfectDetector, ThetaDetector
from .labels import Label, LabelAssigner
from .oracle import GroundTruthOracle
from .policies import DisseminationPolicy

__all__ = [
    "AnonymousDetectorBase",
    "APStarOracle",
    "AThetaKeepCrashed",
    "AThetaOracle",
    "DisseminationPolicy",
    "FailureDetector",
    "FailureDetectorView",
    "FDPair",
    "GroundTruthOracle",
    "Label",
    "LabelAssigner",
    "PerfectDetector",
    "StaticFailureDetector",
    "ThetaDetector",
]
