"""Ground-truth oracle over a run's failure pattern.

Failure detectors are formally defined as functions of the *failure pattern*
of a run (which processes crash, and when).  The simulator knows the failure
pattern exactly — it is the :class:`~repro.simulation.faults.CrashSchedule`
injected into the run — so the detectors are implemented on top of a
:class:`GroundTruthOracle` that answers questions like "is process ``j``
correct in this run?" and "has the crash of ``j`` been detected by time
``t``, given a detection delay ``δ``?".

The oracle also owns the process → label assignment used by the anonymous
detectors; protocol code never sees this object.
"""

from __future__ import annotations

import random
from typing import Optional

from ..simulation.faults import CrashSchedule
from ..simulation.simtime import SimTime
from .labels import Label, LabelAssigner


class GroundTruthOracle:
    """Omniscient view of one run's failure pattern and label assignment.

    Parameters
    ----------
    crash_schedule:
        The run's failure pattern.
    labels:
        Label assignment; built internally from *rng* when omitted.
    rng:
        Random substream for label generation (required if *labels* is not
        given).
    """

    def __init__(
        self,
        crash_schedule: CrashSchedule,
        labels: Optional[LabelAssigner] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.crash_schedule = crash_schedule
        if labels is None:
            if rng is None:
                rng = random.Random(0)
            labels = LabelAssigner(crash_schedule.n_processes, rng)
        if labels.n_processes != crash_schedule.n_processes:
            raise ValueError(
                "label assignment size does not match the crash schedule "
                f"({labels.n_processes} != {crash_schedule.n_processes})"
            )
        self.labels = labels

    # ------------------------------------------------------------------ #
    # failure-pattern queries
    # ------------------------------------------------------------------ #
    @property
    def n_processes(self) -> int:
        """Number of processes in the run."""
        return self.crash_schedule.n_processes

    def is_correct(self, index: int) -> bool:
        """Whether process *index* is correct in this run."""
        return self.crash_schedule.is_correct(index)

    def is_faulty(self, index: int) -> bool:
        """Whether process *index* crashes at some point in this run."""
        return self.crash_schedule.is_faulty(index)

    def correct_indices(self) -> tuple[int, ...]:
        """Indices of the correct processes."""
        return self.crash_schedule.correct_indices()

    def faulty_indices(self) -> tuple[int, ...]:
        """Indices of the faulty processes."""
        return self.crash_schedule.faulty_indices()

    @property
    def n_correct(self) -> int:
        """Number of correct processes."""
        return self.crash_schedule.n_correct

    def crash_time(self, index: int) -> SimTime:
        """Crash time of process *index* (``inf`` for correct processes)."""
        return self.crash_schedule.crash_time(index)

    def is_crashed_at(self, index: int, now: SimTime) -> bool:
        """Whether process *index* has crashed by time *now*."""
        return self.crash_schedule.is_crashed_at(index, now)

    def is_detected_crashed(self, index: int, now: SimTime,
                            detection_delay: float) -> bool:
        """Whether the crash of *index* is *detected* by time *now*.

        A crash that happened at time ``c`` is detected from ``c + δ`` on,
        where ``δ`` is the detector's detection delay.
        """
        crash = self.crash_schedule.crash_time(index)
        return crash + detection_delay <= now

    def detected_crash_count(self, now: SimTime, detection_delay: float) -> int:
        """Number of crashes detected by time *now* for delay ``δ``."""
        return sum(
            1
            for index in range(self.n_processes)
            if self.is_detected_crashed(index, now, detection_delay)
        )

    def undetected_indices(self, now: SimTime, detection_delay: float) -> tuple[int, ...]:
        """Processes not (yet) detected as crashed at time *now*."""
        return tuple(
            index
            for index in range(self.n_processes)
            if not self.is_detected_crashed(index, now, detection_delay)
        )

    # ------------------------------------------------------------------ #
    # label queries (oracle / analysis side only)
    # ------------------------------------------------------------------ #
    def label_of(self, index: int) -> Label:
        """Label of process *index*."""
        return self.labels.label_of(index)

    def index_of(self, label: Label) -> int:
        """Process carrying *label* (inverse lookup)."""
        return self.labels.index_of(label)

    def labels_of_correct(self) -> frozenset[Label]:
        """Labels of the correct processes."""
        return self.labels.labels_of(self.correct_indices())

    def labels_of_all(self) -> frozenset[Label]:
        """Labels of every process."""
        return self.labels.all_labels()

    def describe(self) -> str:
        """Human-readable summary used in reports."""
        return (
            f"oracle(n={self.n_processes}, correct={self.n_correct}, "
            f"crashes=[{self.crash_schedule.describe()}])"
        )
