"""Label dissemination policies for the anonymous failure-detector oracles.

The formal properties of AΘ hinge on the set ``S(label)`` of processes that
ever *know* a label (have it in their detector view), because the accuracy
property quantifies over subsets of ``S(label)``: every ``number``-sized
subset of ``S(label)`` must contain a correct process.

The oracle therefore lets experiments choose **who gets to see which
labels** — the dissemination policy:

``CORRECT_ONLY`` (default, "prescient" oracle)
    Only correct processes' labels are output, and only correct processes'
    views contain them.  ``S(label) ⊆ Correct`` for every output label, so
    AΘ-accuracy holds *in every run, with any number of crashes*; this is the
    instantiation needed for the paper's headline claim that Algorithm 2
    works without a correct majority.  Faulty processes see empty views (they
    simply never URB-deliver, which uniform reliable broadcast allows).

``ALL_PROCESSES`` ("detection-based", realistic oracle)
    Every alive process sees the labels of every process not yet detected as
    crashed, with ``number`` shrinking as crashes are detected.  This is what
    an actual timeout-based detector could plausibly compute, but it only
    satisfies AΘ-accuracy when a majority of processes are correct (the
    ablation experiment E10 demonstrates the failure without a majority).

``OWN_ONLY`` (degenerate, deliberately unsound)
    Each process only ever sees its own label, with ``number = 1``.
    Algorithm 2 then degenerates to "deliver as soon as your own
    acknowledgement loops back", which violates AΘ-accuracy (the single
    knower of the label may be faulty) and can break Uniform Agreement when
    the deliverer crashes.  It exists for negative tests that demonstrate
    why the accuracy property matters.
"""

from __future__ import annotations

import enum


class DisseminationPolicy(enum.Enum):
    """Which processes' detector views contain which labels."""

    CORRECT_ONLY = "correct_only"
    ALL_PROCESSES = "all_processes"
    OWN_ONLY = "own_only"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def from_string(cls, value: "str | DisseminationPolicy") -> "DisseminationPolicy":
        """Parse a policy from its string value (idempotent on enum input)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            valid = ", ".join(p.value for p in cls)
            raise ValueError(
                f"unknown dissemination policy {value!r}; expected one of: {valid}"
            ) from None

    @property
    def is_safe_without_majority(self) -> bool:
        """Whether the policy yields accuracy in runs without a correct majority."""
        return self is DisseminationPolicy.CORRECT_ONLY
