"""Classic (non-anonymous) failure detectors Θ and P.

These are *not* used by the paper's anonymous algorithms; they exist for the
identified baseline protocol (``repro.core.baselines.IdentifiedMajorityUrb``
does not actually need one, but experiments comparing against the classic
Θ-based URB construction of Aguilera, Toueg & Deianov use them) and for
didactic comparison in the examples.

* **Θ (Theta)** — outputs a set of *trusted* process identifiers such that
  (accuracy) at every time the set contains at least one correct process,
  and (completeness) eventually it contains no crashed process.
* **P (Perfect)** — outputs a set of *suspected* identifiers such that no
  process is suspected before it crashes (strong accuracy) and every crashed
  process is eventually suspected permanently (strong completeness).

Both are implemented as ground-truth oracles with a configurable detection
delay, mirroring the anonymous detectors.
"""

from __future__ import annotations

from ..simulation.simtime import SimTime
from .oracle import GroundTruthOracle


class ThetaDetector:
    """Classic Θ detector: a trusted set that always contains a correct process."""

    def __init__(self, oracle: GroundTruthOracle, detection_delay: float = 0.0) -> None:
        if detection_delay < 0:
            raise ValueError("detection_delay must be non-negative")
        self.oracle = oracle
        self.detection_delay = float(detection_delay)

    def trusted(self, process_index: int, now: SimTime) -> frozenset[int]:
        """The trusted set output at *process_index* at time *now*.

        Processes are trusted until their crash is detected; since at least
        one correct process exists, the set always contains a correct
        process (accuracy), and eventually contains only correct processes
        (completeness).
        """
        if not (0 <= process_index < self.oracle.n_processes):
            raise IndexError("process index out of range")
        return frozenset(
            self.oracle.undetected_indices(now, self.detection_delay)
        )

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return f"Theta(detection_delay={self.detection_delay:g})"


class PerfectDetector:
    """Classic perfect detector P: suspects exactly the crashed processes."""

    def __init__(self, oracle: GroundTruthOracle, detection_delay: float = 0.0) -> None:
        if detection_delay < 0:
            raise ValueError("detection_delay must be non-negative")
        self.oracle = oracle
        self.detection_delay = float(detection_delay)

    def suspected(self, process_index: int, now: SimTime) -> frozenset[int]:
        """The suspected set output at *process_index* at time *now*.

        A process is suspected from ``crash_time + detection_delay`` on;
        correct processes are never suspected (strong accuracy holds because
        suspicion only starts after an actual crash).
        """
        if not (0 <= process_index < self.oracle.n_processes):
            raise IndexError("process index out of range")
        return frozenset(
            index
            for index in range(self.oracle.n_processes)
            if self.oracle.is_detected_crashed(index, now, self.detection_delay)
        )

    def alive(self, process_index: int, now: SimTime) -> frozenset[int]:
        """Complement of :meth:`suspected` (convenience)."""
        suspected = self.suspected(process_index, now)
        return frozenset(
            index
            for index in range(self.oracle.n_processes)
            if index not in suspected
        )

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return f"P(detection_delay={self.detection_delay:g})"
