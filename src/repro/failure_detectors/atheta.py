r"""The anonymous failure-detector class AΘ (paper §V-A).

AΘ provides each process a read-only variable ``a_theta`` containing pairs
``(label, number)`` such that:

* **AΘ-completeness** — eventually the output permanently contains pairs
  associated with all correct processes, with
  ``number = |S(label) ∩ Correct|``.
* **AΘ-accuracy** — at every time, for every output pair, every
  ``number``-sized subset of ``S(label)`` (the processes that know the
  label) contains at least one correct process.

The oracle implementation is parameterised by a
:class:`~repro.failure_detectors.policies.DisseminationPolicy` deciding who
knows which labels, a *detection delay* governing how long after a crash the
crashed process's pair disappears, and a *learning delay* that staggers when
each viewer first sees each label (exercising Algorithm 2's reconciliation of
repeated ACKs carrying more/fewer labels).  See DESIGN.md §3.3 for which
parameterisations satisfy the formal properties in which runs.
"""

from __future__ import annotations

import random
from typing import Optional

from ..simulation.simtime import SimTime
from .base import FailureDetector, FailureDetectorView, FDPair
from .labels import Label
from .oracle import GroundTruthOracle
from .policies import DisseminationPolicy


class AnonymousDetectorBase(FailureDetector):
    """Shared machinery of the AΘ and AP\\* oracles.

    Parameters
    ----------
    oracle:
        Ground-truth view of the run's failure pattern and labels.
    policy:
        Label dissemination policy (see :mod:`repro.failure_detectors.policies`).
    detection_delay:
        Time after a crash at which the crashed process's pair is removed
        from views (only relevant when ``remove_crashed`` is true and the
        policy exposes faulty labels at all).
    learn_delay:
        Upper bound of the uniform per-(viewer, subject) delay before the
        subject's label first appears in the viewer's view.  ``0`` makes all
        labels visible from the start.
    remove_crashed:
        Whether crashed processes' pairs are removed after detection.
    rng:
        Random substream for the staggered learning delays.
    """

    def __init__(
        self,
        oracle: GroundTruthOracle,
        *,
        policy: DisseminationPolicy | str = DisseminationPolicy.CORRECT_ONLY,
        detection_delay: float = 0.0,
        learn_delay: float = 0.0,
        remove_crashed: bool = True,
        rng: Optional[random.Random] = None,
    ) -> None:
        if detection_delay < 0:
            raise ValueError("detection_delay must be non-negative")
        if learn_delay < 0:
            raise ValueError("learn_delay must be non-negative")
        self.oracle = oracle
        self.policy = DisseminationPolicy.from_string(policy)
        self.detection_delay = float(detection_delay)
        self.learn_delay = float(learn_delay)
        self.remove_crashed = remove_crashed
        rng = rng or random.Random(0)
        n = oracle.n_processes
        # Staggered learning times: viewer i first sees subject j's label at
        # learn_time[(i, j)].  A process always knows its own label at once.
        self._learn_time: dict[tuple[int, int], float] = {}
        for viewer in range(n):
            for subject in range(n):
                if viewer == subject or self.learn_delay == 0.0:
                    self._learn_time[(viewer, subject)] = 0.0
                else:
                    self._learn_time[(viewer, subject)] = rng.uniform(
                        0.0, self.learn_delay
                    )
        # Per-viewer view cache for the stable policies: maps viewer to
        # ``(valid_from, valid_until, view)``.  Views are immutable, and for
        # CORRECT_ONLY the output only changes when ``now`` crosses one of
        # the (static) learning times, so a cached view can be returned for
        # the whole half-open validity window — the hot path of Algorithm 2,
        # which reads AΘ on every tick of every process.
        self._view_cache: dict[int, tuple[float, float, FailureDetectorView]] = {}
        # Shared empty view handed out by view_window for faulty CORRECT_ONLY
        # viewers: identity-stable so batch consumers can key caches on it
        # (view() itself keeps returning fresh equal objects).
        self._stable_empty = FailureDetectorView.empty()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def learn_time(self, viewer: int, subject: int) -> float:
        """Time at which *viewer* first sees *subject*'s label."""
        return self._learn_time[(viewer, subject)]

    def _knows(self, viewer: int, subject: int, now: SimTime) -> bool:
        """Whether *viewer*'s view may contain *subject*'s label at *now*."""
        return now >= self._learn_time[(viewer, subject)]

    def _subject_removed(self, subject: int, now: SimTime) -> bool:
        """Whether *subject*'s pair has been removed due to a detected crash."""
        if not self.remove_crashed:
            return False
        return self.oracle.is_detected_crashed(subject, now, self.detection_delay)

    def _detection_based_number(self, now: SimTime) -> int:
        """``n`` minus the number of detected crashes (ALL_PROCESSES policy)."""
        return self.oracle.n_processes - self.oracle.detected_crash_count(
            now, self.detection_delay
        )

    # ------------------------------------------------------------------ #
    # FailureDetector interface
    # ------------------------------------------------------------------ #
    def view(self, process_index: int, now: SimTime) -> FailureDetectorView:
        if not (0 <= process_index < self.oracle.n_processes):
            raise IndexError(
                f"process index {process_index} out of range "
                f"[0, {self.oracle.n_processes})"
            )
        if self.policy is DisseminationPolicy.OWN_ONLY:
            return self._own_only_view(process_index)
        if self.policy is DisseminationPolicy.CORRECT_ONLY:
            return self._correct_only_view(process_index, now)
        return self._all_processes_view(process_index, now)

    @property
    def has_stable_view_windows(self) -> bool:
        """OWN_ONLY and CORRECT_ONLY outputs change only at the (static)
        learning times, so their validity windows are exact; ALL_PROCESSES
        rebuilds per query as crashes are detected."""
        return self.policy is not DisseminationPolicy.ALL_PROCESSES

    def view_window(
        self, process_index: int, now: SimTime
    ) -> tuple[FailureDetectorView, SimTime]:
        if self.policy is DisseminationPolicy.OWN_ONLY:
            return self._own_only_view(process_index), float("inf")
        if self.policy is DisseminationPolicy.CORRECT_ONLY:
            if self.oracle.is_faulty(process_index):
                # A faulty viewer reads the empty view for the whole run
                # (prescient oracle); hand out one identity-stable object.
                return self._stable_empty, float("inf")
            view = self._correct_only_view(process_index, now)
            return view, self._view_cache[process_index][1]
        return self.view(process_index, now), now

    # -- policy implementations ------------------------------------------ #
    def _own_only_view(self, viewer: int) -> FailureDetectorView:
        cached = self._view_cache.get(viewer)
        if cached is not None:
            return cached[2]
        label = self.oracle.label_of(viewer)
        view = FailureDetectorView([FDPair(label, 1)])
        self._view_cache[viewer] = (0.0, float("inf"), view)
        return view

    def _correct_only_view(self, viewer: int, now: SimTime) -> FailureDetectorView:
        # Prescient oracle: only correct processes' labels, visible only to
        # correct viewers; the associated number is |Correct| from the start,
        # so every output pair satisfies accuracy in every run (S(label) is a
        # subset of Correct) and completeness once learning delays elapse.
        cached = self._view_cache.get(viewer)
        if cached is not None and cached[0] <= now < cached[1]:
            return cached[2]
        if self.oracle.is_faulty(viewer):
            return FailureDetectorView.empty()
        number = self.oracle.n_correct
        learn_time = self._learn_time
        valid_from = 0.0
        valid_until = float("inf")
        pairs = []
        for subject in self.oracle.correct_indices():
            lt = learn_time[(viewer, subject)]
            if lt <= now:
                pairs.append(FDPair(self.oracle.label_of(subject), number))
                if lt > valid_from:
                    valid_from = lt
            elif lt < valid_until:
                valid_until = lt
        view = FailureDetectorView(pairs)
        self._view_cache[viewer] = (valid_from, valid_until, view)
        return view

    def _all_processes_view(self, viewer: int, now: SimTime) -> FailureDetectorView:
        # Detection-based oracle: every not-yet-detected process appears,
        # with a number that shrinks as crashes are detected.  Satisfies the
        # formal properties only in majority-correct runs (see policies.py).
        number = self._detection_based_number(now)
        pairs = []
        for subject in range(self.oracle.n_processes):
            if self._subject_removed(subject, now):
                continue
            if not self._knows(viewer, subject, now):
                continue
            pairs.append(FDPair(self.oracle.label_of(subject), number))
        return FailureDetectorView(pairs)

    # ------------------------------------------------------------------ #
    # analysis helpers
    # ------------------------------------------------------------------ #
    def knower_set(self, label: Label, horizon: SimTime) -> frozenset[int]:
        """``S(label)``: the processes whose view ever contains *label*
        up to *horizon* (used by the formal-property checkers in tests)."""
        subject = self.oracle.index_of(label)
        knowers = set()
        for viewer in range(self.oracle.n_processes):
            # A crashed viewer can only have known the label before crashing.
            effective_horizon = min(horizon, self.oracle.crash_time(viewer))
            probe_times = [0.0, self._learn_time[(viewer, subject)], effective_horizon]
            for t in probe_times:
                if t > effective_horizon:
                    continue
                if label in self.view(viewer, t):
                    knowers.add(viewer)
                    break
        return frozenset(knowers)

    def converged_view(self) -> FailureDetectorView:
        """The eventual, stable view at correct processes (for tests)."""
        horizon = max(
            [0.0]
            + [
                self.oracle.crash_time(i) + self.detection_delay
                for i in self.oracle.faulty_indices()
            ]
            + [self.learn_delay]
        )
        correct = self.oracle.correct_indices()
        if not correct:  # pragma: no cover - schedule forbids this
            return FailureDetectorView.empty()
        return self.view(correct[0], horizon + 1.0)

    def describe(self) -> str:
        return (
            f"{type(self).__name__}(policy={self.policy.value}, "
            f"detection_delay={self.detection_delay:g}, "
            f"learn_delay={self.learn_delay:g})"
        )


class AThetaOracle(AnonymousDetectorBase):
    r"""The AΘ oracle.

    With the default ``CORRECT_ONLY`` policy this detector satisfies
    AΘ-completeness and AΘ-accuracy in **every** run, regardless of how many
    processes crash — which is what Algorithm 2 needs to circumvent the
    majority impossibility (paper Theorem 2).
    """


class AThetaKeepCrashed(AThetaOracle):
    """AΘ variant that never removes crashed processes' pairs.

    AΘ-completeness only constrains the pairs of correct processes, so
    keeping stale pairs is allowed by the definition; this variant exists to
    exercise Algorithm 2 under a detector that converges "from above" only.
    """

    def __init__(self, oracle: GroundTruthOracle, **kwargs) -> None:
        kwargs["remove_crashed"] = False
        super().__init__(oracle, **kwargs)
