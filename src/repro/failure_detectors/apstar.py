r"""The anonymous perfect failure-detector class AP\* (paper §V-B).

AP\* provides each process a read-only variable ``a_p*`` containing pairs
``(label, number)`` such that:

* **AP\*-completeness** — eventually the output permanently contains pairs
  associated with all correct processes (with
  ``number = |S(label) ∩ Correct|``).
* **AP\*-accuracy** — if a process crashes, its pair is eventually and
  permanently removed from every output.

Eventually the number of pairs equals the number of correct processes.
Algorithm 2 uses AP\* solely to decide when the Task 1 retransmission of a
message may stop (quiescence): once ACKs covering every AP\*-listed pair have
been collected for an already-delivered message, the message is retired from
the ``MSG`` set.

The implementation shares all machinery with the AΘ oracle
(:class:`~repro.failure_detectors.atheta.AnonymousDetectorBase`); the only
AP\*-specific constraint is that crashed processes' pairs *must* be removed
after the detection delay, which is exactly the ``remove_crashed=True``
behaviour (forced here).
"""

from __future__ import annotations

import random
from typing import Optional

from .atheta import AnonymousDetectorBase
from .oracle import GroundTruthOracle
from .policies import DisseminationPolicy


class APStarOracle(AnonymousDetectorBase):
    r"""The AP\* oracle.

    Identical machinery to :class:`~repro.failure_detectors.atheta.AThetaOracle`
    except that removal of crashed processes' pairs cannot be disabled
    (AP\*-accuracy requires it).
    """

    def __init__(
        self,
        oracle: GroundTruthOracle,
        *,
        policy: DisseminationPolicy | str = DisseminationPolicy.CORRECT_ONLY,
        detection_delay: float = 0.0,
        learn_delay: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(
            oracle,
            policy=policy,
            detection_delay=detection_delay,
            learn_delay=learn_delay,
            remove_crashed=True,
            rng=rng,
        )
