"""Failure-detector interfaces.

A failure detector (paper §II, citing Chandra & Toueg) is a module providing
each process a read-only local variable containing (possibly unreliable)
failure information.  The anonymous classes AΘ and AP\\* output a set of
``(label, number)`` pairs.

The simulator realises detectors as *oracles*: objects that, given a process
index and the current simulated time, return that process's current view.
Formally a failure detector is a function of the run's failure pattern, which
is exactly what the oracles compute (they read the ground-truth crash
schedule); see DESIGN.md §3.3 for the discussion of which instantiations
satisfy the formal properties in which runs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..simulation.simtime import SimTime
from .labels import Label


@dataclass(frozen=True, slots=True)
class FDPair:
    """One ``(label, number)`` pair of an anonymous failure-detector output."""

    label: Label
    number: int

    def __post_init__(self) -> None:
        if self.number < 0:
            raise ValueError("number must be non-negative")


class FailureDetectorView:
    """An immutable snapshot of a failure detector's output at one process.

    The view is what protocol code reads (the paper's read-only local
    variable ``a_theta_i`` / ``a_p*_i``): a set of :class:`FDPair`.
    """

    __slots__ = ("_pairs", "_by_label", "_labels")

    def __init__(self, pairs: Iterable[FDPair] = ()) -> None:
        pairs = tuple(pairs)
        by_label: dict[Label, int] = {}
        for pair in pairs:
            if pair.label in by_label:
                raise ValueError(
                    f"duplicate label {pair.label!r} in failure-detector view"
                )
            by_label[pair.label] = pair.number
        self._pairs = pairs
        self._by_label = by_label
        self._labels: Optional[frozenset[Label]] = None

    # -- set-like access ------------------------------------------------ #
    def __iter__(self) -> Iterator[FDPair]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __contains__(self, label: Label) -> bool:
        return label in self._by_label

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailureDetectorView):
            return NotImplemented
        return self._by_label == other._by_label

    def __hash__(self) -> int:
        return hash(frozenset(self._by_label.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"({pair.label.short()}, {pair.number})" for pair in self._pairs
        )
        return f"FDView{{{inner}}}"

    # -- queries used by the protocols ----------------------------------- #
    @property
    def pairs(self) -> tuple[FDPair, ...]:
        """The pairs as a tuple (stable iteration order)."""
        return self._pairs

    def labels(self) -> frozenset[Label]:
        """The set of labels in the view (what Algorithm 2 attaches to ACKs).

        Cached: views are immutable and oracles return the same view object
        for every query inside its validity window, so protocol code that
        attaches the label set to each outgoing ACK gets one shared (and
        hash-cached) frozenset instead of a fresh allocation per send.
        """
        labels = self._labels
        if labels is None:
            labels = self._labels = frozenset(self._by_label)
        return labels

    def number_for(self, label: Label) -> Optional[int]:
        """The ``number`` associated with *label*, or ``None`` if absent."""
        return self._by_label.get(label)

    def is_empty(self) -> bool:
        """Whether the view currently outputs no pairs."""
        return not self._pairs

    @classmethod
    def empty(cls) -> "FailureDetectorView":
        """The empty view."""
        return cls(())

    @classmethod
    def from_mapping(cls, mapping: dict[Label, int]) -> "FailureDetectorView":
        """Build a view from a ``label -> number`` mapping."""
        return cls(FDPair(label, number) for label, number in mapping.items())


class FailureDetector(abc.ABC):
    """Oracle-side interface of an anonymous failure detector."""

    #: Whether :meth:`view_window` returns genuine validity windows
    #: (``valid_until`` strictly after ``now`` whenever the view is stable).
    #: The vectorized engine's batched receiver requires this to share one
    #: view query across a whole stretch of ACK receptions; detectors that
    #: rebuild their output on every query leave it ``False`` and force the
    #: boxed per-payload path.
    has_stable_view_windows: bool = False

    @abc.abstractmethod
    def view(self, process_index: int, now: SimTime) -> FailureDetectorView:
        """Return the output of the detector at *process_index* at time *now*."""

    def view_window(
        self, process_index: int, now: SimTime
    ) -> tuple[FailureDetectorView, SimTime]:
        """The view at *now* plus the first time it may differ.

        The default is the degenerate window ``(view, now)`` — "valid for
        this query only" — which is correct for any detector but batches
        nothing; callers must re-query per read.  Detectors with cacheable
        outputs override this (and set :attr:`has_stable_view_windows`).
        """
        return self.view(process_index, now), now

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return type(self).__name__


class StaticFailureDetector(FailureDetector):
    """A detector whose output never changes (useful in unit tests)."""

    has_stable_view_windows = True

    def __init__(self, views: dict[int, FailureDetectorView],
                 default: Optional[FailureDetectorView] = None) -> None:
        self._views = dict(views)
        self._default = default if default is not None else FailureDetectorView.empty()

    def view(self, process_index: int, now: SimTime) -> FailureDetectorView:
        return self._views.get(process_index, self._default)

    def view_window(
        self, process_index: int, now: SimTime
    ) -> tuple[FailureDetectorView, SimTime]:
        return self.view(process_index, now), float("inf")

    def describe(self) -> str:
        return "static"
