"""Anonymous process skeleton shared by the paper's algorithms.

The paper's processes are anonymous (no identifiers), run the same code, and
interact with the world only through ``broadcast``/``receive`` and the
failure-detector variables.  :class:`AnonymousProcess` fixes that shape: it
owns a tag generator fed from the process-local random stream, dispatches
received payloads to MSG/ACK handlers, and provides the delivery plumbing of
:class:`~repro.core.interfaces.BroadcastProtocol`.
"""

from __future__ import annotations

from typing import Any

from .interfaces import BroadcastProtocol, EnvironmentAPI
from .messages import AckPayload, LabeledAckPayload, MsgPayload
from .tags import TagGenerator


class AnonymousProcess(BroadcastProtocol):
    """Base class of the anonymous broadcast protocols.

    Parameters
    ----------
    env:
        The process environment (anonymous broadcast primitive, randomness,
        failure detectors, delivery notification).
    eager_first_broadcast:
        When ``True`` (default), ``urb_broadcast`` immediately performs the
        first Task 1 transmission of the new message instead of waiting for
        the next tick.  This is purely a latency optimisation and is
        equivalent to the tick happening to fire right after the broadcast;
        the paper's Task 1 semantics («repeat forever») are unchanged.
    """

    name = "anonymous-process"

    def __init__(self, env: EnvironmentAPI, *, eager_first_broadcast: bool = True) -> None:
        super().__init__(env)
        self.eager_first_broadcast = eager_first_broadcast
        self._tags = TagGenerator(env.random)

    # ------------------------------------------------------------------ #
    # receive dispatch
    # ------------------------------------------------------------------ #
    def on_receive(self, payload: Any) -> None:
        """Dispatch a received payload to the MSG or ACK handler.

        Unknown payload types raise: in the paper's model channels never
        create messages, so receiving something the protocol never sent is
        a wiring bug worth failing loudly on.
        """
        if isinstance(payload, MsgPayload):
            self._on_msg(payload)
        elif isinstance(payload, (AckPayload, LabeledAckPayload)):
            self._on_ack(payload)
        else:
            raise TypeError(
                f"{type(self).__name__} received unsupported payload "
                f"{payload!r}"
            )

    def _on_msg(self, payload: MsgPayload) -> None:
        """Handle a ``(MSG, m, tag)`` reception.  Overridden by protocols."""
        raise NotImplementedError

    def _on_ack(self, payload: Any) -> None:
        """Handle an ``ACK`` reception.  Overridden by protocols."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # helpers shared by the concrete protocols
    # ------------------------------------------------------------------ #
    def _new_tag(self) -> int:
        """Draw a fresh random tag from the process-local stream."""
        return self._tags.next()

    @property
    def tag_generator(self) -> TagGenerator:
        """The process's tag generator (exposed for tests and analysis)."""
        return self._tags
