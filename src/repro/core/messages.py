"""Protocol wire payloads.

Two (three, counting the labelled variant) payload types are exchanged by
the paper's algorithms:

* ``MSG`` — an application message together with its sender-chosen random
  tag, i.e. the pair ``(m, tag)``.
* ``ACK`` — an acknowledgement of one ``(m, tag)``, carrying the
  acknowledging process's own random ``tag_ack`` (Algorithm 1), plus the
  label set read from AΘ (Algorithm 2).

All payloads are immutable, hashable dataclasses: channels and protocol
state store them in sets/dict keys, and identical retransmissions compare
equal (which the fairness guard and loss models rely on for deduplication).

Because the same payload object is hashed millions of times per run (every
set lookup in the protocols, every channel deduplication), each class caches
its hash at construction.  The cached value is exactly the tuple hash the
generated ``dataclasses`` implementation would produce, so hash-dependent
iteration orders — and therefore run determinism — are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar

from ..failure_detectors.labels import Label
from .tags import Tag


@dataclass(frozen=True, slots=True)
class TaggedMessage:
    """The pair ``(m, tag)`` — an application payload plus its unique tag."""

    content: Any
    tag: Tag
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if not isinstance(self.tag, int) or isinstance(self.tag, bool):
            raise TypeError("tag must be an int")
        try:
            object.__setattr__(self, "_hash", hash((self.content, self.tag)))
        except TypeError as exc:
            raise TypeError(
                f"URB content must be hashable, got {self.content!r}"
            ) from exc

    def __hash__(self) -> int:
        return self._hash

    def describe(self) -> str:
        """Short human-readable form used in traces and reports."""
        return f"({self.content!r}, tag={self.tag & 0xFFFF:04x})"


class ProtocolPayload:
    """Marker base class of everything the protocols put on the wire."""

    #: Wire kind, used for metrics bucketing ("MSG" / "ACK").
    kind: ClassVar[str] = "?"


@dataclass(frozen=True, slots=True)
class MsgPayload(ProtocolPayload):
    """The ``(MSG, m, tag)`` wire message (Algorithm 1 line 30 / Algorithm 2 line 54)."""

    message: TaggedMessage
    _hash: int = field(init=False, repr=False, compare=False, default=0)
    kind: ClassVar[str] = "MSG"

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.message,)))

    def __hash__(self) -> int:
        return self._hash

    def describe(self) -> str:
        """Short human-readable form."""
        return f"MSG{self.message.describe()}"


@dataclass(frozen=True, slots=True)
class AckPayload(ProtocolPayload):
    """The ``(ACK, m, tag, tag_ack)`` wire message of Algorithm 1."""

    message: TaggedMessage
    ack_tag: Tag
    _hash: int = field(init=False, repr=False, compare=False, default=0)
    kind: ClassVar[str] = "ACK"

    def __post_init__(self) -> None:
        if not isinstance(self.ack_tag, int) or isinstance(self.ack_tag, bool):
            raise TypeError("ack_tag must be an int")
        object.__setattr__(self, "_hash", hash((self.message, self.ack_tag)))

    def __hash__(self) -> int:
        return self._hash

    def describe(self) -> str:
        """Short human-readable form."""
        return f"ACK{self.message.describe()}#{self.ack_tag & 0xFFFF:04x}"


@dataclass(frozen=True, slots=True)
class LabeledAckPayload(ProtocolPayload):
    """The ``(ACK, m, tag, tag_ack, labels)`` wire message of Algorithm 2.

    ``labels`` is the label set the acknowledging process read from its AΘ
    variable at the moment of (re)acknowledging; repeated ACKs for the same
    ``(m, tag)`` keep the same ``tag_ack`` but may carry an updated label
    set, which the receiver reconciles (Algorithm 2 lines 33–45).
    """

    message: TaggedMessage
    ack_tag: Tag
    labels: frozenset[Label] = field(default_factory=frozenset)
    _hash: int = field(init=False, repr=False, compare=False, default=0)
    kind: ClassVar[str] = "ACK"

    def __post_init__(self) -> None:
        if not isinstance(self.ack_tag, int) or isinstance(self.ack_tag, bool):
            raise TypeError("ack_tag must be an int")
        if not isinstance(self.labels, frozenset):
            object.__setattr__(self, "labels", frozenset(self.labels))
        for label in self.labels:
            if not isinstance(label, Label):
                raise TypeError(f"labels must contain Label objects, got {label!r}")
        object.__setattr__(
            self, "_hash", hash((self.message, self.ack_tag, self.labels))
        )

    def __hash__(self) -> int:
        return self._hash

    def describe(self) -> str:
        """Short human-readable form."""
        labels = ",".join(sorted(label.short() for label in self.labels))
        return (
            f"ACK{self.message.describe()}#{self.ack_tag & 0xFFFF:04x}"
            f"[{labels}]"
        )


def payload_kind(payload: Any) -> str:
    """Return the wire kind of *payload* ("MSG", "ACK", or the class name)."""
    kind = getattr(payload, "kind", None)
    if isinstance(kind, str):
        return kind
    return type(payload).__name__
