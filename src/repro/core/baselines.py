"""Baseline broadcast protocols.

The paper motivates URB by contrasting it with weaker broadcast abstractions
(§I).  Three baselines are implemented so experiments can demonstrate *why*
the uniformity and fair-lossy-tolerance of Algorithms 1 and 2 matter:

* :class:`BestEffortBroadcastProcess` — ``broadcast`` once, deliver on first
  reception.  No delivery guarantee if the sender crashes, no tolerance of
  message loss.
* :class:`EagerReliableBroadcastProcess` — classic (non-uniform) reliable
  broadcast by eager relaying: deliver on first reception and immediately
  re-broadcast once.  With reliable channels and the relay discipline this
  gives agreement among *correct* processes, but a process may deliver and
  crash before its relay reaches anyone (non-uniform), and a single lossy
  link breaks it (no retransmission).
* :class:`IdentifiedMajorityUrbProcess` — the textbook non-anonymous URB for
  fair lossy channels (majority ACK counting keyed by sender *identity*).
  Functionally equivalent to Algorithm 1 but it requires unique process
  identifiers; it is the reference point showing that Algorithm 1 pays no
  message-complexity penalty for anonymity.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from .interfaces import EnvironmentAPI
from .messages import AckPayload, LabeledAckPayload, MsgPayload, TaggedMessage
from .process_base import AnonymousProcess
from .state import Algorithm1State


class BestEffortBroadcastProcess(AnonymousProcess):
    """Best-effort broadcast: one transmission, deliver on first reception."""

    name = "best_effort"

    def __init__(self, env: EnvironmentAPI, **_: Any) -> None:
        super().__init__(env, eager_first_broadcast=True)
        self.state = Algorithm1State()

    def urb_broadcast(self, content: Any) -> None:
        message = TaggedMessage(content=content, tag=self._new_tag())
        # One single transmission; nothing is ever retransmitted.
        self.env.broadcast(MsgPayload(message))

    def _on_msg(self, payload: MsgPayload) -> None:
        message = payload.message
        if not self.state.is_delivered(message):
            self.state.mark_delivered(message)
            self._record_delivery(message)

    def _on_ack(self, payload: Union[AckPayload, LabeledAckPayload]) -> None:
        # Best-effort broadcast has no acknowledgements; tolerate stray ACKs
        # (e.g. in mixed-protocol tests) by ignoring them.
        return

    def on_tick(self) -> None:
        return

    def describe(self) -> str:
        return "best-effort broadcast"


class EagerReliableBroadcastProcess(AnonymousProcess):
    """Non-uniform reliable broadcast by eager (one-shot) relaying."""

    name = "eager_rb"

    def __init__(self, env: EnvironmentAPI, **_: Any) -> None:
        super().__init__(env, eager_first_broadcast=True)
        self.state = Algorithm1State()
        self._relayed: set[TaggedMessage] = set()

    def urb_broadcast(self, content: Any) -> None:
        message = TaggedMessage(content=content, tag=self._new_tag())
        self._relayed.add(message)
        self.env.broadcast(MsgPayload(message))

    def _on_msg(self, payload: MsgPayload) -> None:
        message = payload.message
        if not self.state.is_delivered(message):
            # Deliver first, then relay: this ordering is what makes the
            # protocol non-uniform — a crash between the two steps leaves a
            # delivered message no one else may ever receive.
            self.state.mark_delivered(message)
            self._record_delivery(message)
        if message not in self._relayed:
            self._relayed.add(message)
            self.env.broadcast(MsgPayload(message))

    def _on_ack(self, payload: Union[AckPayload, LabeledAckPayload]) -> None:
        return

    def on_tick(self) -> None:
        return

    def describe(self) -> str:
        return "eager (non-uniform) reliable broadcast"


class IdentifiedMajorityUrbProcess(AnonymousProcess):
    """Classic non-anonymous URB with majority ACK counting.

    The process *knows its own identity* (``identity``) and stamps it on
    acknowledgements; receivers count distinct acknowledging identities.
    Retransmission (Task 1) and the majority delivery rule are identical to
    Algorithm 1 — the point of the baseline is that anonymity costs Algorithm
    1 nothing but the random ``tag_ack`` indirection.
    """

    name = "identified_urb"

    def __init__(
        self,
        env: EnvironmentAPI,
        n_processes: int,
        identity: int,
        *,
        majority_threshold: Optional[int] = None,
        eager_first_broadcast: bool = True,
    ) -> None:
        super().__init__(env, eager_first_broadcast=eager_first_broadcast)
        if n_processes < 1:
            raise ValueError("n_processes must be positive")
        if not (0 <= identity < n_processes):
            raise ValueError("identity must be a valid process index")
        self.n_processes = n_processes
        self.identity = identity
        self.majority_threshold = (
            majority_threshold if majority_threshold is not None
            else n_processes // 2 + 1
        )
        self.state = Algorithm1State()
        #: Distinct acknowledger identities per message.
        self._ackers: dict[TaggedMessage, set[int]] = {}

    def urb_broadcast(self, content: Any) -> None:
        message = TaggedMessage(content=content, tag=self._new_tag())
        self.state.add_message(message)
        if self.eager_first_broadcast:
            self.env.broadcast(MsgPayload(message))

    def _on_msg(self, payload: MsgPayload) -> None:
        message = payload.message
        if message not in self.state.msg_set:
            self.state.add_message(message)
        # The identity plays the role Algorithm 1 assigns to the random
        # tag_ack: it deduplicates acknowledgers.
        self.env.broadcast(AckPayload(message, self.identity))

    def _on_ack(self, payload: Union[AckPayload, LabeledAckPayload]) -> None:
        message = payload.message
        ackers = self._ackers.setdefault(message, set())
        ackers.add(payload.ack_tag)
        if len(ackers) >= self.majority_threshold:
            if not self.state.is_delivered(message):
                self.state.mark_delivered(message)
                self._record_delivery(message)

    def on_tick(self) -> None:
        for message in self.state.msg_set.as_list():
            self.env.broadcast(MsgPayload(message))

    @property
    def pending_retransmissions(self) -> int:
        return len(self.state.msg_set)

    def describe(self) -> str:
        return (
            f"identified URB (id={self.identity}, "
            f"majority={self.majority_threshold})"
        )
