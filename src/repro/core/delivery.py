"""Per-process URB-delivery logs.

Each protocol process appends to a :class:`DeliveryLog` as it URB-delivers
messages.  The logs are part of the simulation result and are what the
analysis layer checks the URB properties against (together with the trace,
which additionally carries delivery *times*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from .messages import TaggedMessage


@dataclass(frozen=True, slots=True)
class DeliveryRecord:
    """One URB-delivery as seen by the delivering process.

    The record intentionally carries no timestamp: processes cannot read the
    clock (paper §II).  Delivery times are recorded by the engine in the
    trace, on the omniscient-observer side.
    """

    message: TaggedMessage
    sequence: int

    @property
    def content(self) -> Any:
        """The delivered application content."""
        return self.message.content


class DeliveryLog:
    """Ordered log of a process's URB-deliveries."""

    def __init__(self) -> None:
        self._records: list[DeliveryRecord] = []
        self._seen: set[TaggedMessage] = set()

    def append(self, message: TaggedMessage) -> DeliveryRecord:
        """Append the delivery of *message*.

        Raises
        ------
        ValueError
            If the same ``(m, tag)`` pair is delivered twice — the protocols
            are responsible for at-most-once delivery, and a duplicate here
            indicates a protocol bug, so it fails loudly.
        """
        if message in self._seen:
            raise ValueError(
                f"duplicate URB-delivery of {message.describe()}; "
                "Uniform Integrity violated by the protocol implementation"
            )
        record = DeliveryRecord(message=message, sequence=len(self._records))
        self._records.append(record)
        self._seen.add(message)
        return record

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[DeliveryRecord]:
        return iter(self._records)

    def __contains__(self, message: TaggedMessage) -> bool:
        return message in self._seen

    @property
    def records(self) -> tuple[DeliveryRecord, ...]:
        """All records in delivery order."""
        return tuple(self._records)

    def messages(self) -> list[TaggedMessage]:
        """Delivered ``(m, tag)`` pairs in delivery order."""
        return [record.message for record in self._records]

    def contents(self) -> list[Any]:
        """Delivered application contents in delivery order."""
        return [record.message.content for record in self._records]

    def content_set(self) -> set[Any]:
        """Set of delivered application contents."""
        return {record.message.content for record in self._records}

    def has_content(self, content: Any) -> bool:
        """Whether some delivered message carried *content*."""
        return any(record.message.content == content for record in self._records)

    def position_of(self, content: Any) -> Optional[int]:
        """Index of the first delivery of *content*, or ``None``."""
        for position, record in enumerate(self._records):
            if record.message.content == content:
                return position
        return None
