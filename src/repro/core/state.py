"""Per-process protocol state containers.

The paper's algorithms manage a handful of local sets per process:

* ``MSG_i`` — messages to retransmit forever (Task 1),
* ``URB_DELIVERED_i`` — messages already URB-delivered,
* ``MY_ACK_i`` — the process's own ``tag_ack`` per ``(m, tag)``,
* ``ALL_ACK_i`` — acknowledgements received from anyone,

plus, for Algorithm 2, the per-message label bookkeeping
(``label_counter_i`` and ``all_labels_i``).

The containers below encapsulate those sets with the exact update rules the
algorithms need, so the algorithm classes read like the paper's pseudocode
and the invariants (insertion-order determinism, counter consistency) are
testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Optional

from ..failure_detectors.labels import Label
from .messages import TaggedMessage
from .tags import Tag


class MessageSet:
    """An insertion-ordered set of ``(m, tag)`` pairs.

    Used for ``MSG_i`` and ``URB_DELIVERED_i``.  Insertion order matters for
    determinism: Task 1 retransmits messages in the order they entered the
    set, so two runs with the same seed produce identical schedules.
    """

    def __init__(self, items: Iterable[TaggedMessage] = ()) -> None:
        self._items: dict[TaggedMessage, None] = {}
        for item in items:
            self.add(item)

    def add(self, message: TaggedMessage) -> bool:
        """Add *message*; return ``True`` if it was not present before."""
        if message in self._items:
            return False
        self._items[message] = None
        return True

    def discard(self, message: TaggedMessage) -> bool:
        """Remove *message* if present; return whether it was present."""
        if message in self._items:
            del self._items[message]
            return True
        return False

    def __contains__(self, message: TaggedMessage) -> bool:
        return message in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[TaggedMessage]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def as_list(self) -> list[TaggedMessage]:
        """The messages in insertion order (safe to mutate the set while
        iterating over the returned list)."""
        return list(self._items)


@dataclass(slots=True)
class AckRecord:
    """Algorithm 2 bookkeeping for one received ``tag_ack`` of one message.

    Attributes
    ----------
    ack_tag:
        The acknowledging process's ``tag_ack``.
    labels:
        The label set most recently carried by this ``tag_ack``'s ACK
        (repeated ACKs overwrite it after reconciliation).
    """

    ack_tag: Tag
    labels: frozenset[Label] = field(default_factory=frozenset)


class Algorithm1State:
    """Local state of Algorithm 1 (paper §III).

    Sets: ``MSG``, ``MY_ACK``, ``ALL_ACK``, ``URB_DELIVERED``.
    """

    def __init__(self) -> None:
        #: ``MSG_i`` — messages retransmitted every Task 1 round.
        self.msg_set = MessageSet()
        #: ``URB_DELIVERED_i``.
        self.delivered = MessageSet()
        #: ``MY_ACK_i`` — own ``tag_ack`` per message.
        self.my_ack: dict[TaggedMessage, Tag] = {}
        #: ``ALL_ACK_i`` — distinct ``tag_ack`` values received per message.
        self.all_ack: dict[TaggedMessage, set[Tag]] = {}

    # -- MSG / URB_DELIVERED -------------------------------------------- #
    def add_message(self, message: TaggedMessage) -> bool:
        """Insert ``(m, tag)`` into ``MSG`` (lines 6, 9)."""
        return self.msg_set.add(message)

    def mark_delivered(self, message: TaggedMessage) -> bool:
        """Insert ``(m, tag)`` into ``URB_DELIVERED`` (line 24)."""
        return self.delivered.add(message)

    def is_delivered(self, message: TaggedMessage) -> bool:
        """Whether ``(m, tag)`` is in ``URB_DELIVERED``."""
        # Checked once per received ACK/MSG; reading the backing dict
        # directly skips a Python-level __contains__ frame.
        return message in self.delivered._items

    # -- MY_ACK ----------------------------------------------------------- #
    def my_ack_for(self, message: TaggedMessage) -> Optional[Tag]:
        """The process's own ``tag_ack`` for *message*, if already chosen."""
        return self.my_ack.get(message)

    def set_my_ack(self, message: TaggedMessage, ack_tag: Tag) -> None:
        """Fix the process's own ``tag_ack`` for *message* (line 15).

        The tag is immutable once chosen («tag_ack cannot be changed for the
        same pair (m, tag) once it is generated»); re-assignment with a
        different value is a protocol bug and raises.
        """
        existing = self.my_ack.get(message)
        if existing is not None and existing != ack_tag:
            raise ValueError(
                f"MY_ACK already fixed for {message.describe()}: "
                f"{existing} != {ack_tag}"
            )
        self.my_ack[message] = ack_tag

    # -- ALL_ACK ---------------------------------------------------------- #
    def record_ack(self, message: TaggedMessage, ack_tag: Tag) -> bool:
        """Insert the ACK into ``ALL_ACK`` (lines 19–21).

        Returns ``True`` if this ``tag_ack`` was new for *message*.
        """
        acks = self.all_ack.setdefault(message, set())
        if ack_tag in acks:
            return False
        acks.add(ack_tag)
        return True

    def distinct_ack_count(self, message: TaggedMessage) -> int:
        """Number of distinct ``tag_ack`` values received for *message*."""
        return len(self.all_ack.get(message, ()))

    # -- diagnostics ------------------------------------------------------ #
    def summary(self) -> dict[str, int]:
        """Sizes of the four sets (used in debugging and tests)."""
        return {
            "msg": len(self.msg_set),
            "delivered": len(self.delivered),
            "my_ack": len(self.my_ack),
            "all_ack": sum(len(v) for v in self.all_ack.values()),
        }


class Algorithm2State(Algorithm1State):
    """Local state of Algorithm 2 (paper §VI).

    Extends Algorithm 1's sets with the per-message label bookkeeping:

    * ``ack_records[msg][tag_ack]`` — the paper's ``all_labels_i[(m, tag),
      tag_ack]``: the label set most recently carried by that ``tag_ack``.
    * ``label_counter[msg][label]`` — the paper's
      ``label_counter_i[(m, tag), label]``: how many distinct ``tag_ack``
      entries currently carry that label.

    The class maintains the invariant that the counter equals the number of
    records containing the label; :meth:`check_counter_invariant` verifies it
    (used by property-based tests).
    """

    def __init__(self) -> None:
        super().__init__()
        self.ack_records: dict[TaggedMessage, dict[Tag, AckRecord]] = {}
        self.label_counter: dict[TaggedMessage, dict[Label, int]] = {}

    # -- ACK bookkeeping (lines 22–45) ------------------------------------ #
    def record_labeled_ack(
        self, message: TaggedMessage, ack_tag: Tag, labels: frozenset[Label]
    ) -> bool:
        """Record an ACK carrying *labels*; reconcile repeats.

        Implements lines 23–45 of Algorithm 2 with the evident intent of the
        (garbled) "fewer labels" branch: for a repeated ``tag_ack``, labels
        newly present are added and counted, labels no longer present are
        removed and un-counted (see DESIGN.md §3.4).

        Returns ``True`` if this ``tag_ack`` was new for *message*.
        """
        labels = frozenset(labels)
        records = self.ack_records.get(message)
        if records is None:
            records = self.ack_records[message] = {}
            counters = self.label_counter[message] = {}
        else:
            counters = self.label_counter[message]
        record = records.get(ack_tag)
        if record is None:
            # Lines 27-32: first ACK from this (anonymous) acknowledger.
            records[ack_tag] = AckRecord(ack_tag=ack_tag, labels=labels)
            for label in labels:
                counters[label] = counters.get(label, 0) + 1
            # Keep ALL_ACK coherent with Algorithm 1's bookkeeping.
            super().record_ack(message, ack_tag)
            return True
        # Lines 33-45: repeated ACK from the same acknowledger, possibly with
        # an updated label set read from a converging AΘ.
        old_labels = record.labels
        if old_labels is labels or old_labels == labels:
            # By far the dominant repeat case (a stable detector view keeps
            # handing out the identical label set); skip the reconciliation
            # set algebra entirely.
            record.labels = labels
            return False
        added = labels - old_labels
        removed = old_labels - labels
        for label in added:
            counters[label] = counters.get(label, 0) + 1
        for label in removed:
            remaining = counters.get(label, 0) - 1
            if remaining > 0:
                counters[label] = remaining
            else:
                counters.pop(label, None)
        record.labels = labels
        return False

    # -- queries used by the delivery / quiescence conditions ------------- #
    def counter_for(self, message: TaggedMessage) -> Mapping[Label, int]:
        """Current ``label_counter`` row for *message* (read-only view)."""
        return dict(self.label_counter.get(message, {}))

    def label_count(self, message: TaggedMessage, label: Label) -> int:
        """Current count of *label* for *message* (0 when never seen)."""
        return self.label_counter.get(message, {}).get(label, 0)

    def labels_union(self, message: TaggedMessage) -> frozenset[Label]:
        """Union of the label sets across all recorded ACKs of *message*
        (the paper's ``all_labels_i[(m, tag), −]`` read as a union)."""
        records = self.ack_records.get(message)
        if not records:
            return frozenset()
        result: set[Label] = set()
        for record in records.values():
            result.update(record.labels)
        return frozenset(result)

    def ack_tags_for(self, message: TaggedMessage) -> frozenset[Tag]:
        """Distinct ``tag_ack`` values recorded for *message*."""
        return frozenset(self.ack_records.get(message, {}))

    # -- invariants -------------------------------------------------------- #
    def check_counter_invariant(self, message: TaggedMessage) -> bool:
        """Verify ``label_counter`` equals the recount from ``ack_records``."""
        records = self.ack_records.get(message, {})
        recount: dict[Label, int] = {}
        for record in records.values():
            for label in record.labels:
                recount[label] = recount.get(label, 0) + 1
        return recount == self.label_counter.get(message, {})

    def summary(self) -> dict[str, int]:
        """Sizes of the state containers (debugging and tests)."""
        base = super().summary()
        base["ack_records"] = sum(len(v) for v in self.ack_records.values())
        base["counted_labels"] = sum(len(v) for v in self.label_counter.values())
        return base
