"""Per-process protocol state containers.

The paper's algorithms manage a handful of local sets per process:

* ``MSG_i`` — messages to retransmit forever (Task 1),
* ``URB_DELIVERED_i`` — messages already URB-delivered,
* ``MY_ACK_i`` — the process's own ``tag_ack`` per ``(m, tag)``,
* ``ALL_ACK_i`` — acknowledgements received from anyone,

plus, for Algorithm 2, the per-message label bookkeeping
(``label_counter_i`` and ``all_labels_i``).

The containers below encapsulate those sets with the exact update rules the
algorithms need, so the algorithm classes read like the paper's pseudocode
and the invariants (insertion-order determinism, counter consistency) are
testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Optional

import numpy as np

from ..failure_detectors.labels import Label
from .messages import AckPayload, LabeledAckPayload, MsgPayload, TaggedMessage
from .tags import Tag


class MessageSet:
    """An insertion-ordered set of ``(m, tag)`` pairs.

    Used for ``MSG_i`` and ``URB_DELIVERED_i``.  Insertion order matters for
    determinism: Task 1 retransmits messages in the order they entered the
    set, so two runs with the same seed produce identical schedules.
    """

    def __init__(self, items: Iterable[TaggedMessage] = ()) -> None:
        self._items: dict[TaggedMessage, None] = {}
        for item in items:
            self.add(item)

    def add(self, message: TaggedMessage) -> bool:
        """Add *message*; return ``True`` if it was not present before."""
        if message in self._items:
            return False
        self._items[message] = None
        return True

    def discard(self, message: TaggedMessage) -> bool:
        """Remove *message* if present; return whether it was present."""
        if message in self._items:
            del self._items[message]
            return True
        return False

    def __contains__(self, message: TaggedMessage) -> bool:
        return message in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[TaggedMessage]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def as_list(self) -> list[TaggedMessage]:
        """The messages in insertion order (safe to mutate the set while
        iterating over the returned list)."""
        return list(self._items)


@dataclass(slots=True)
class AckRecord:
    """Algorithm 2 bookkeeping for one received ``tag_ack`` of one message.

    Attributes
    ----------
    ack_tag:
        The acknowledging process's ``tag_ack``.
    labels:
        The label set most recently carried by this ``tag_ack``'s ACK
        (repeated ACKs overwrite it after reconciliation).
    """

    ack_tag: Tag
    labels: frozenset[Label] = field(default_factory=frozenset)


class Algorithm1State:
    """Local state of Algorithm 1 (paper §III).

    Sets: ``MSG``, ``MY_ACK``, ``ALL_ACK``, ``URB_DELIVERED``.
    """

    def __init__(self) -> None:
        #: ``MSG_i`` — messages retransmitted every Task 1 round.
        self.msg_set = MessageSet()
        #: ``URB_DELIVERED_i``.
        self.delivered = MessageSet()
        #: ``MY_ACK_i`` — own ``tag_ack`` per message.
        self.my_ack: dict[TaggedMessage, Tag] = {}
        #: ``ALL_ACK_i`` — distinct ``tag_ack`` values received per message.
        self.all_ack: dict[TaggedMessage, set[Tag]] = {}

    # -- MSG / URB_DELIVERED -------------------------------------------- #
    def add_message(self, message: TaggedMessage) -> bool:
        """Insert ``(m, tag)`` into ``MSG`` (lines 6, 9)."""
        return self.msg_set.add(message)

    def mark_delivered(self, message: TaggedMessage) -> bool:
        """Insert ``(m, tag)`` into ``URB_DELIVERED`` (line 24)."""
        return self.delivered.add(message)

    def is_delivered(self, message: TaggedMessage) -> bool:
        """Whether ``(m, tag)`` is in ``URB_DELIVERED``."""
        # Checked once per received ACK/MSG; reading the backing dict
        # directly skips a Python-level __contains__ frame.
        return message in self.delivered._items

    # -- MY_ACK ----------------------------------------------------------- #
    def my_ack_for(self, message: TaggedMessage) -> Optional[Tag]:
        """The process's own ``tag_ack`` for *message*, if already chosen."""
        return self.my_ack.get(message)

    def set_my_ack(self, message: TaggedMessage, ack_tag: Tag) -> None:
        """Fix the process's own ``tag_ack`` for *message* (line 15).

        The tag is immutable once chosen («tag_ack cannot be changed for the
        same pair (m, tag) once it is generated»); re-assignment with a
        different value is a protocol bug and raises.
        """
        existing = self.my_ack.get(message)
        if existing is not None and existing != ack_tag:
            raise ValueError(
                f"MY_ACK already fixed for {message.describe()}: "
                f"{existing} != {ack_tag}"
            )
        self.my_ack[message] = ack_tag

    # -- ALL_ACK ---------------------------------------------------------- #
    def record_ack(self, message: TaggedMessage, ack_tag: Tag) -> bool:
        """Insert the ACK into ``ALL_ACK`` (lines 19–21).

        Returns ``True`` if this ``tag_ack`` was new for *message*.
        """
        acks = self.all_ack.setdefault(message, set())
        if ack_tag in acks:
            return False
        acks.add(ack_tag)
        return True

    def distinct_ack_count(self, message: TaggedMessage) -> int:
        """Number of distinct ``tag_ack`` values received for *message*."""
        return len(self.all_ack.get(message, ()))

    # -- diagnostics ------------------------------------------------------ #
    def summary(self) -> dict[str, int]:
        """Sizes of the four sets (used in debugging and tests)."""
        return {
            "msg": len(self.msg_set),
            "delivered": len(self.delivered),
            "my_ack": len(self.my_ack),
            "all_ack": sum(len(v) for v in self.all_ack.values()),
        }


class PayloadInterner:
    """Dense integer ids for wire payloads and their components.

    The vectorized engine's batched receiver works on integer arrays, not
    payload objects: every distinct payload gets a *pid*, every distinct
    ``(m, tag)`` message a *mid*, every distinct ``tag_ack`` of a message a
    per-message *slot*, and every distinct label frozenset a *lid*.  Batch
    consumers then express duplicate suppression as a seen-bitmap over pids,
    ack bookkeeping as an ``acked[mid, slot]`` matrix, and the delivery
    condition as integer comparisons against per-lid thresholds.

    Interning relies on the payload classes' cached hashes (one dict lookup
    per broadcast); the per-pid classification is stored both in Python
    lists (for boxing back to objects) and in amortised-growth NumPy arrays
    (for fancy-indexing whole delivery runs at once).  Ids are assigned in
    first-appearance order and never change, so consumers may size their
    per-process state by the interner's high-water marks.
    """

    #: Per-pid payload classification (``kind_arr`` values).
    KIND_MSG = 0
    KIND_ACK = 1
    KIND_OTHER = 2

    __slots__ = (
        "_pid_of", "payloads", "kind_arr", "mid_arr", "slot_arr", "lid_arr",
        "n_pids", "_mid_of", "messages", "_slot_of", "slot_tags",
        "_lid_of", "label_sets", "max_slots",
    )

    def __init__(self) -> None:
        self._pid_of: dict[Any, int] = {}
        #: pid -> payload object (boxing back for per-entry dispatch).
        self.payloads: list[Any] = []
        cap = 256
        self.kind_arr = np.empty(cap, dtype=np.int8)
        self.mid_arr = np.empty(cap, dtype=np.int64)
        self.slot_arr = np.empty(cap, dtype=np.int64)
        self.lid_arr = np.empty(cap, dtype=np.int64)
        self.n_pids = 0
        self._mid_of: dict[TaggedMessage, int] = {}
        #: mid -> TaggedMessage.
        self.messages: list[TaggedMessage] = []
        #: mid -> {tag_ack: slot} / mid -> [slot -> tag_ack].
        self._slot_of: list[dict[Tag, int]] = []
        self.slot_tags: list[list[Tag]] = []
        self._lid_of: dict[frozenset[Label], int] = {}
        #: lid -> interned label frozenset.
        self.label_sets: list[frozenset[Label]] = []
        #: Highest slot count of any message (consumer matrix width).
        self.max_slots = 0
        # lid 0 is the empty label set (plain Algorithm 1 ACKs).
        self._lid_of[frozenset()] = 0
        self.label_sets.append(frozenset())

    # ------------------------------------------------------------------ #
    def pid_for(self, payload: Any) -> int:
        """The dense id of *payload*, interning it on first sight."""
        pid = self._pid_of.get(payload)
        if pid is None:
            pid = self._intern_payload(payload)
        return pid

    def intern_message(self, message: TaggedMessage) -> int:
        """The dense id of *message*, interning it on first sight."""
        mid = self._mid_of.get(message)
        if mid is None:
            mid = len(self.messages)
            self._mid_of[message] = mid
            self.messages.append(message)
            self._slot_of.append({})
            self.slot_tags.append([])
        return mid

    def intern_labels(self, labels: frozenset[Label]) -> int:
        """The dense id of the label set *labels*."""
        lid = self._lid_of.get(labels)
        if lid is None:
            lid = len(self.label_sets)
            self._lid_of[labels] = lid
            self.label_sets.append(labels)
        return lid

    # ------------------------------------------------------------------ #
    def _intern_payload(self, payload: Any) -> int:
        pid = self.n_pids
        if pid == len(self.kind_arr):
            self._grow()
        self._pid_of[payload] = pid
        self.payloads.append(payload)
        self.n_pids = pid + 1
        if isinstance(payload, (AckPayload, LabeledAckPayload)):
            kind = self.KIND_ACK
            mid = self.intern_message(payload.message)
            slots = self._slot_of[mid]
            tag = payload.ack_tag
            slot = slots.get(tag)
            if slot is None:
                slot = len(slots)
                slots[tag] = slot
                self.slot_tags[mid].append(tag)
                if slot + 1 > self.max_slots:
                    self.max_slots = slot + 1
            labels = getattr(payload, "labels", None)
            lid = 0 if labels is None else self.intern_labels(labels)
        elif isinstance(payload, MsgPayload):
            kind = self.KIND_MSG
            mid = self.intern_message(payload.message)
            slot = -1
            lid = -1
        else:
            kind = self.KIND_OTHER
            mid = slot = lid = -1
        self.kind_arr[pid] = kind
        self.mid_arr[pid] = mid
        self.slot_arr[pid] = slot
        self.lid_arr[pid] = lid
        return pid

    def _grow(self) -> None:
        cap = 2 * len(self.kind_arr)
        for name in ("kind_arr", "mid_arr", "slot_arr", "lid_arr"):
            old = getattr(self, name)
            grown = np.empty(cap, dtype=old.dtype)
            grown[: old.shape[0]] = old
            setattr(self, name, grown)

    # ------------------------------------------------------------------ #
    @property
    def n_messages(self) -> int:
        """Number of distinct interned messages."""
        return len(self.messages)

    def summary(self) -> dict[str, int]:
        """Table sizes (debugging and tests)."""
        return {
            "payloads": self.n_pids,
            "messages": len(self.messages),
            "label_sets": len(self.label_sets),
            "max_slots": self.max_slots,
        }


class Algorithm2State(Algorithm1State):
    """Local state of Algorithm 2 (paper §VI).

    Extends Algorithm 1's sets with the per-message label bookkeeping:

    * ``ack_records[msg][tag_ack]`` — the paper's ``all_labels_i[(m, tag),
      tag_ack]``: the label set most recently carried by that ``tag_ack``.
    * ``label_counter[msg][label]`` — the paper's
      ``label_counter_i[(m, tag), label]``: how many distinct ``tag_ack``
      entries currently carry that label.

    The class maintains the invariant that the counter equals the number of
    records containing the label; :meth:`check_counter_invariant` verifies it
    (used by property-based tests).
    """

    def __init__(self) -> None:
        super().__init__()
        self.ack_records: dict[TaggedMessage, dict[Tag, AckRecord]] = {}
        self.label_counter: dict[TaggedMessage, dict[Label, int]] = {}

    # -- ACK bookkeeping (lines 22–45) ------------------------------------ #
    def record_labeled_ack(
        self, message: TaggedMessage, ack_tag: Tag, labels: frozenset[Label]
    ) -> bool:
        """Record an ACK carrying *labels*; reconcile repeats.

        Implements lines 23–45 of Algorithm 2 with the evident intent of the
        (garbled) "fewer labels" branch: for a repeated ``tag_ack``, labels
        newly present are added and counted, labels no longer present are
        removed and un-counted (see DESIGN.md §3.4).

        Returns ``True`` if this ``tag_ack`` was new for *message*.
        """
        labels = frozenset(labels)
        records = self.ack_records.get(message)
        if records is None:
            records = self.ack_records[message] = {}
            counters = self.label_counter[message] = {}
        else:
            counters = self.label_counter[message]
        record = records.get(ack_tag)
        if record is None:
            # Lines 27-32: first ACK from this (anonymous) acknowledger.
            records[ack_tag] = AckRecord(ack_tag=ack_tag, labels=labels)
            for label in labels:
                counters[label] = counters.get(label, 0) + 1
            # Keep ALL_ACK coherent with Algorithm 1's bookkeeping.
            super().record_ack(message, ack_tag)
            return True
        # Lines 33-45: repeated ACK from the same acknowledger, possibly with
        # an updated label set read from a converging AΘ.
        old_labels = record.labels
        if old_labels is labels or old_labels == labels:
            # By far the dominant repeat case (a stable detector view keeps
            # handing out the identical label set); skip the reconciliation
            # set algebra entirely.
            record.labels = labels
            return False
        added = labels - old_labels
        removed = old_labels - labels
        for label in added:
            counters[label] = counters.get(label, 0) + 1
        for label in removed:
            remaining = counters.get(label, 0) - 1
            if remaining > 0:
                counters[label] = remaining
            else:
                counters.pop(label, None)
        record.labels = labels
        return False

    # -- queries used by the delivery / quiescence conditions ------------- #
    def counter_for(self, message: TaggedMessage) -> Mapping[Label, int]:
        """Current ``label_counter`` row for *message* (read-only view)."""
        return dict(self.label_counter.get(message, {}))

    def label_count(self, message: TaggedMessage, label: Label) -> int:
        """Current count of *label* for *message* (0 when never seen)."""
        return self.label_counter.get(message, {}).get(label, 0)

    def labels_union(self, message: TaggedMessage) -> frozenset[Label]:
        """Union of the label sets across all recorded ACKs of *message*
        (the paper's ``all_labels_i[(m, tag), −]`` read as a union)."""
        records = self.ack_records.get(message)
        if not records:
            return frozenset()
        result: set[Label] = set()
        for record in records.values():
            result.update(record.labels)
        return frozenset(result)

    def ack_tags_for(self, message: TaggedMessage) -> frozenset[Tag]:
        """Distinct ``tag_ack`` values recorded for *message*."""
        return frozenset(self.ack_records.get(message, {}))

    # -- invariants -------------------------------------------------------- #
    def check_counter_invariant(self, message: TaggedMessage) -> bool:
        """Verify ``label_counter`` equals the recount from ``ack_records``."""
        records = self.ack_records.get(message, {})
        recount: dict[Label, int] = {}
        for record in records.values():
            for label in record.labels:
                recount[label] = recount.get(label, 0) + 1
        return recount == self.label_counter.get(message, {})

    def summary(self) -> dict[str, int]:
        """Sizes of the state containers (debugging and tests)."""
        base = super().summary()
        base["ack_records"] = sum(len(v) for v in self.ack_records.values())
        base["counted_labels"] = sum(len(v) for v in self.label_counter.values())
        return base
