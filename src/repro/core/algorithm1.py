"""Algorithm 1 — Uniform Reliable Broadcast with a correct majority.

Non-quiescent URB in ``AAS_F[t < n/2]`` (paper §III).  The idea:

1. The sender labels each application message with a unique random ``tag``
   and keeps ``(m, tag)`` in its ``MSG`` set; Task 1 re-broadcasts every
   element of ``MSG`` forever (lines 28–32), which together with channel
   fairness guarantees every correct process eventually receives it.
2. On (every) reception of ``(MSG, m, tag)`` a process acknowledges with its
   own unique random ``tag_ack`` — the same one every time (lines 7–17), so
   distinct ``tag_ack`` values identify distinct acknowledgers without
   revealing identities.
3. A process URB-delivers ``m`` once it has collected a **majority** of
   distinct acknowledgements (lines 18–27): a majority of acknowledgers plus
   a majority of correct processes guarantee that at least one *correct*
   process holds ``m`` and will keep re-broadcasting it, so every correct
   process eventually delivers it too — even if the fast deliverer crashes
   immediately (the paper's §III remark).

The algorithm is **not quiescent**: correct processes re-broadcast every
message in ``MSG`` forever (experiment E3 visualises this).
"""

from __future__ import annotations

from typing import Any, Optional, Union

from .interfaces import EnvironmentAPI
from .messages import AckPayload, LabeledAckPayload, MsgPayload, TaggedMessage
from .process_base import AnonymousProcess
from .state import Algorithm1State


class MajorityUrbProcess(AnonymousProcess):
    """One anonymous process running Algorithm 1.

    Parameters
    ----------
    env:
        Process environment.
    n_processes:
        Total number of processes ``n``.  The majority threshold is
        ``⌊n/2⌋ + 1`` distinct acknowledgements («more than n/2 different
        tag_ack»), unless *majority_threshold* overrides it.
    majority_threshold:
        Explicit acknowledgement threshold (used by ablation experiments).
    eager_first_broadcast:
        See :class:`~repro.core.process_base.AnonymousProcess`.
    """

    name = "algorithm1"

    def __init__(
        self,
        env: EnvironmentAPI,
        n_processes: int,
        *,
        majority_threshold: Optional[int] = None,
        eager_first_broadcast: bool = True,
    ) -> None:
        super().__init__(env, eager_first_broadcast=eager_first_broadcast)
        if n_processes < 1:
            raise ValueError("n_processes must be positive")
        self.n_processes = n_processes
        if majority_threshold is None:
            majority_threshold = n_processes // 2 + 1
        if majority_threshold < 1:
            raise ValueError("majority_threshold must be positive")
        self.majority_threshold = majority_threshold
        self.state = Algorithm1State()

    # ------------------------------------------------------------------ #
    # URB_broadcast (lines 4-6)
    # ------------------------------------------------------------------ #
    def urb_broadcast(self, content: Any) -> None:
        tag = self._new_tag()                          # line 5
        message = TaggedMessage(content=content, tag=tag)
        self.state.add_message(message)                # line 6
        if self.eager_first_broadcast:
            # First Task 1 transmission performed immediately (latency
            # optimisation; see AnonymousProcess docstring).
            self.env.broadcast(MsgPayload(message))

    # ------------------------------------------------------------------ #
    # receive (MSG, m, tag)  (lines 7-17)
    # ------------------------------------------------------------------ #
    def _on_msg(self, payload: MsgPayload) -> None:
        message = payload.message
        if message not in self.state.msg_set:          # lines 8-10
            self.state.add_message(message)
        ack_tag = self.state.my_ack_for(message)
        if ack_tag is None:                            # lines 13-16
            ack_tag = self._new_tag()                  # line 14
            self.state.set_my_ack(message, ack_tag)    # line 15
        # Re-broadcasting the *identical* acknowledgement on every reception
        # (lines 11-12 / 16) overcomes message loss on the fair lossy
        # channels.
        self.env.broadcast(AckPayload(message, ack_tag))

    # ------------------------------------------------------------------ #
    # receive (ACK, m, tag, tag_ack)  (lines 18-27)
    # ------------------------------------------------------------------ #
    def _on_ack(self, payload: Union[AckPayload, LabeledAckPayload]) -> None:
        message = payload.message
        self.state.record_ack(message, payload.ack_tag)        # lines 19-21
        if self.state.distinct_ack_count(message) >= self.majority_threshold:
            if not self.state.is_delivered(message):           # lines 23-25
                self.state.mark_delivered(message)
                self._record_delivery(message)

    # ------------------------------------------------------------------ #
    # Task 1 (lines 28-32)
    # ------------------------------------------------------------------ #
    def on_tick(self) -> None:
        for message in self.state.msg_set.as_list():
            self.env.broadcast(MsgPayload(message))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def pending_retransmissions(self) -> int:
        """Algorithm 1 never retires messages, so this only ever grows."""
        return len(self.state.msg_set)

    def describe(self) -> str:
        return (
            f"algorithm1(n={self.n_processes}, "
            f"majority={self.majority_threshold})"
        )
