"""Algorithm 1 — Uniform Reliable Broadcast with a correct majority.

Non-quiescent URB in ``AAS_F[t < n/2]`` (paper §III).  The idea:

1. The sender labels each application message with a unique random ``tag``
   and keeps ``(m, tag)`` in its ``MSG`` set; Task 1 re-broadcasts every
   element of ``MSG`` forever (lines 28–32), which together with channel
   fairness guarantees every correct process eventually receives it.
2. On (every) reception of ``(MSG, m, tag)`` a process acknowledges with its
   own unique random ``tag_ack`` — the same one every time (lines 7–17), so
   distinct ``tag_ack`` values identify distinct acknowledgers without
   revealing identities.
3. A process URB-delivers ``m`` once it has collected a **majority** of
   distinct acknowledgements (lines 18–27): a majority of acknowledgers plus
   a majority of correct processes guarantee that at least one *correct*
   process holds ``m`` and will keep re-broadcasting it, so every correct
   process eventually delivers it too — even if the fast deliverer crashes
   immediately (the paper's §III remark).

The algorithm is **not quiescent**: correct processes re-broadcast every
message in ``MSG`` forever (experiment E3 visualises this).
"""

from __future__ import annotations

from typing import Any, Optional, Union

import numpy as np

from .interfaces import BatchConsumer, EnvironmentAPI, ViewWindow
from .messages import AckPayload, LabeledAckPayload, MsgPayload, TaggedMessage
from .process_base import AnonymousProcess
from .state import Algorithm1State, PayloadInterner


def _grown(arr: np.ndarray, n: int, fill: int = 0) -> np.ndarray:
    """Return *arr* copied into a zero/fill-padded array of capacity
    ``max(2·len, n)`` (amortised growth for the consumer id-spaces)."""
    cap = max(2 * arr.shape[0], n)
    if fill:
        out = np.full(cap, fill, dtype=arr.dtype)
    else:
        out = np.zeros(cap, dtype=arr.dtype)
    out[: arr.shape[0]] = arr
    return out


def _grown_matrix(matrix: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Grow a boolean ``(mid, slot)`` matrix to at least *rows* × *cols*."""
    r, c = matrix.shape
    out = np.zeros((max(2 * r, rows), max(2 * c, cols)), dtype=bool)
    out[:r, :c] = matrix
    return out


class MajorityUrbProcess(AnonymousProcess):
    """One anonymous process running Algorithm 1.

    Parameters
    ----------
    env:
        Process environment.
    n_processes:
        Total number of processes ``n``.  The majority threshold is
        ``⌊n/2⌋ + 1`` distinct acknowledgements («more than n/2 different
        tag_ack»), unless *majority_threshold* overrides it.
    majority_threshold:
        Explicit acknowledgement threshold (used by ablation experiments).
    eager_first_broadcast:
        See :class:`~repro.core.process_base.AnonymousProcess`.
    """

    name = "algorithm1"

    def __init__(
        self,
        env: EnvironmentAPI,
        n_processes: int,
        *,
        majority_threshold: Optional[int] = None,
        eager_first_broadcast: bool = True,
    ) -> None:
        super().__init__(env, eager_first_broadcast=eager_first_broadcast)
        if n_processes < 1:
            raise ValueError("n_processes must be positive")
        self.n_processes = n_processes
        if majority_threshold is None:
            majority_threshold = n_processes // 2 + 1
        if majority_threshold < 1:
            raise ValueError("majority_threshold must be positive")
        self.majority_threshold = majority_threshold
        self.state = Algorithm1State()

    # ------------------------------------------------------------------ #
    # URB_broadcast (lines 4-6)
    # ------------------------------------------------------------------ #
    def urb_broadcast(self, content: Any) -> None:
        tag = self._new_tag()                          # line 5
        message = TaggedMessage(content=content, tag=tag)
        self.state.add_message(message)                # line 6
        if self.eager_first_broadcast:
            # First Task 1 transmission performed immediately (latency
            # optimisation; see AnonymousProcess docstring).
            self.env.broadcast(MsgPayload(message))

    # ------------------------------------------------------------------ #
    # receive (MSG, m, tag)  (lines 7-17)
    # ------------------------------------------------------------------ #
    def _on_msg(self, payload: MsgPayload) -> None:
        message = payload.message
        if message not in self.state.msg_set:          # lines 8-10
            self.state.add_message(message)
        ack_tag = self.state.my_ack_for(message)
        if ack_tag is None:                            # lines 13-16
            ack_tag = self._new_tag()                  # line 14
            self.state.set_my_ack(message, ack_tag)    # line 15
        # Re-broadcasting the *identical* acknowledgement on every reception
        # (lines 11-12 / 16) overcomes message loss on the fair lossy
        # channels.
        self.env.broadcast(AckPayload(message, ack_tag))

    # ------------------------------------------------------------------ #
    # receive (ACK, m, tag, tag_ack)  (lines 18-27)
    # ------------------------------------------------------------------ #
    def _on_ack(self, payload: Union[AckPayload, LabeledAckPayload]) -> None:
        message = payload.message
        self.state.record_ack(message, payload.ack_tag)        # lines 19-21
        if self.state.distinct_ack_count(message) >= self.majority_threshold:
            if not self.state.is_delivered(message):           # lines 23-25
                self.state.mark_delivered(message)
                self._record_delivery(message)

    # ------------------------------------------------------------------ #
    # Task 1 (lines 28-32)
    # ------------------------------------------------------------------ #
    def on_tick(self) -> None:
        for message in self.state.msg_set.as_list():
            self.env.broadcast(MsgPayload(message))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def pending_retransmissions(self) -> int:
        """Algorithm 1 never retires messages, so this only ever grows."""
        return len(self.state.msg_set)

    def describe(self) -> str:
        return (
            f"algorithm1(n={self.n_processes}, "
            f"majority={self.majority_threshold})"
        )

    # ------------------------------------------------------------------ #
    # batched receiver (vectorized engine fast path)
    # ------------------------------------------------------------------ #
    def batch_consumer(self, interner: PayloadInterner,
                       view_window: ViewWindow) -> Optional[BatchConsumer]:
        return Algorithm1BatchConsumer(self, interner)


class Algorithm1BatchConsumer:
    """Struct-of-arrays ACK consumption for Algorithm 1.

    The arrays mirror exactly the ACK bookkeeping of
    :class:`~repro.core.state.Algorithm1State`:

    * ``absorbed[pid]`` — this interned ACK payload has been recorded once
      already, so re-receiving it is a state no-op (``record_ack`` returns
      ``False`` and, with a static threshold, the count can never re-cross
      it).  Duplicate suppression is a single bitmap gather.
    * ``acked[mid, slot]`` — which distinct ``tag_ack`` values (slots) have
      been recorded per message: the matrix form of ``all_ack``.
    * ``base_count[mid]`` — row sums of ``acked``, maintained incrementally:
      ``distinct_ack_count`` without touching a dict.
    * ``delivered_mid[mid]`` — mirror of the ``URB_DELIVERED`` set.

    ``all_ack`` itself is rebuilt lazily per dirty message by :meth:`flush`;
    nothing reads it between channel deliveries, so the dicts may go stale
    for the duration of a run.  Deliveries are *returned* (position-tagged)
    rather than emitted: the engine defers trace/metrics emission to keep
    them in global run order.
    """

    needs_views = False

    __slots__ = (
        "proc", "state", "interner", "threshold", "absorbed", "acked",
        "base_count", "delivered_mid", "_dirty_mask", "_dirty",
        "run_delivered_pos",
    )

    def __init__(self, proc: MajorityUrbProcess,
                 interner: PayloadInterner) -> None:
        self.proc = proc
        self.state = proc.state
        self.interner = interner
        self.threshold = proc.majority_threshold
        self.absorbed = np.zeros(256, dtype=bool)
        self.acked = np.zeros((16, 16), dtype=bool)
        self.base_count = np.zeros(16, dtype=np.int64)
        self.delivered_mid = np.zeros(16, dtype=bool)
        self._dirty_mask = np.zeros(16, dtype=bool)
        self._dirty: list[int] = []
        self.run_delivered_pos: dict[TaggedMessage, int] = {}

    def _ensure_capacity(self) -> None:
        interner = self.interner
        if interner.n_pids > self.absorbed.shape[0]:
            self.absorbed = _grown(self.absorbed, interner.n_pids)
        n_mids = len(interner.messages)
        if n_mids > self.base_count.shape[0]:
            self.base_count = _grown(self.base_count, n_mids)
            self.delivered_mid = _grown(self.delivered_mid, n_mids)
            self._dirty_mask = _grown(self._dirty_mask, n_mids)
        rows, cols = self.acked.shape
        if n_mids > rows or interner.max_slots > cols:
            self.acked = _grown_matrix(self.acked, n_mids, interner.max_slots)

    # -- engine API ---------------------------------------------------- #
    def consume_acks(self, pids: np.ndarray, positions: np.ndarray,
                     times: np.ndarray) -> list:
        self._ensure_capacity()
        interner = self.interner
        deliveries: list[tuple[int, TaggedMessage]] = []
        fresh_sel = ~self.absorbed[pids]
        if fresh_sel.any():
            fresh_idx = np.nonzero(fresh_sel)[0]
            fpids = pids[fresh_idx]
            # First occurrence of each distinct payload, back in run order:
            # within one run a payload repeat is already a no-op.
            _, first = np.unique(fpids, return_index=True)
            uf = np.sort(fresh_idx[first])
            u_pids = pids[uf]
            u_mids = interner.mid_arr[u_pids]
            u_slots = interner.slot_arr[u_pids]
            order = np.argsort(u_mids, kind="stable")
            gm = u_mids[order]
            bounds = np.nonzero(gm[1:] != gm[:-1])[0] + 1
            starts = np.concatenate(([0], bounds))
            ends = np.concatenate((bounds, [gm.shape[0]]))
            group_mids = gm[starts]
            undelivered = ~self.delivered_mid[group_mids]
            if undelivered.any():
                threshold = self.threshold
                base_count = self.base_count
                messages = interner.messages
                for gi in np.nonzero(undelivered)[0].tolist():
                    mid = int(group_mids[gi])
                    s = int(starts[gi])
                    e = int(ends[gi])
                    r = threshold - int(base_count[mid])
                    if r <= 0:
                        # Unreachable with a static threshold (delivery
                        # fires the instant the count reaches it); kept for
                        # robustness: deliver at the first touch.
                        hit = int(np.nonzero(
                            interner.mid_arr[pids] == mid)[0][0])
                    elif r <= e - s:
                        # The (threshold − base)-th distinct new ack is the
                        # crossing reception.
                        hit = int(uf[order[s + r - 1]])
                    else:
                        continue
                    self.delivered_mid[mid] = True
                    deliveries.append((int(positions[hit]), messages[mid]))
            self.acked[u_mids, u_slots] = True
            self.base_count[group_mids] += ends - starts
            self.absorbed[u_pids] = True
            newly = group_mids[~self._dirty_mask[group_mids]]
            if newly.size:
                self._dirty.extend(newly.tolist())
                self._dirty_mask[newly] = True
        if deliveries:
            deliveries.sort()
            state = self.state
            log = self.proc._delivery_log
            rdp = self.run_delivered_pos
            for pos, message in deliveries:
                state.mark_delivered(message)
                log.append(message)
                rdp[message] = pos
        return deliveries

    def handle_msg(self, payload: MsgPayload, position: int) -> None:
        # Algorithm 1's MSG handler reads none of the lazily-flushed ACK
        # state, so the per-event handler is exact as-is.
        self.proc._on_msg(payload)

    def flush(self) -> None:
        dirty = self._dirty
        if not dirty:
            return
        interner = self.interner
        state = self.state
        acked = self.acked
        messages = interner.messages
        slot_tags = interner.slot_tags
        for mid in dirty:
            tags = slot_tags[mid]
            row = acked[mid, : len(tags)]
            state.all_ack[messages[mid]] = {
                tags[s] for s in np.nonzero(row)[0].tolist()
            }
        self._dirty_mask[np.asarray(dirty, dtype=np.int64)] = False
        dirty.clear()
