"""Unique random tags.

Both algorithms label every application message with a random *tag* before
broadcasting it, and label every acknowledgement with a second random
*tag_ack* (paper §III): «to add a unique label (tag) to each message by its
sender before it is broadcast» and «to add a unique label (tag_ack) to each
acknowledgment message».  Tags are what make counting *distinct*
acknowledgements possible without process identifiers.

The paper assumes the random labels are unique.  :class:`TagGenerator` draws
64-bit (configurable) values from the process's random substream and
additionally enforces local uniqueness by redrawing on collision, so the
assumption holds deterministically within a generator.  Global uniqueness
across processes is a probabilistic property (collision probability about
``k²/2^{bits+1}`` for ``k`` tags); the analysis layer can audit a finished
run for cross-process collisions.
"""

from __future__ import annotations

import random
from typing import Iterator

#: Tags are plain integers (opaque to the protocols, only compared for
#: equality).
Tag = int

#: Default tag width in bits.
DEFAULT_TAG_BITS = 64


class TagGenerator:
    """Draws locally unique random tags from a process's random stream.

    Parameters
    ----------
    rng:
        The process-local random substream (the paper's ``random_i()``).
    bits:
        Width of generated tags.
    max_redraws:
        Safety bound on collision redraws (astronomically unlikely to be
        needed with 64-bit tags; guards against misconfigured tiny widths).
    """

    def __init__(self, rng: random.Random, bits: int = DEFAULT_TAG_BITS,
                 max_redraws: int = 1000) -> None:
        if bits < 1:
            raise ValueError("tag width must be at least 1 bit")
        if max_redraws < 1:
            raise ValueError("max_redraws must be positive")
        self._rng = rng
        self._bits = bits
        self._max_redraws = max_redraws
        self._issued: set[Tag] = set()

    @property
    def bits(self) -> int:
        """Width of generated tags in bits."""
        return self._bits

    @property
    def issued_count(self) -> int:
        """Number of tags issued so far by this generator."""
        return len(self._issued)

    def next(self) -> Tag:
        """Return a fresh tag, unique among this generator's outputs."""
        for _ in range(self._max_redraws):
            candidate = self._rng.getrandbits(self._bits)
            if candidate not in self._issued:
                self._issued.add(candidate)
                return candidate
        raise RuntimeError(
            f"could not draw a unique {self._bits}-bit tag after "
            f"{self._max_redraws} attempts; the tag space is too small for "
            f"the {len(self._issued)} tags already issued"
        )

    def has_issued(self, tag: Tag) -> bool:
        """Whether *tag* was produced by this generator."""
        return tag in self._issued

    def __iter__(self) -> Iterator[Tag]:
        """Iterate forever over fresh tags (convenience for tests)."""
        while True:
            yield self.next()


def collision_probability(n_tags: int, bits: int = DEFAULT_TAG_BITS) -> float:
    """Birthday-bound estimate of a collision among *n_tags* random tags.

    Used in documentation and sanity tests; the default 64-bit width keeps
    the probability negligible for any realistic run (e.g. one in ~5·10⁸ for
    a million tags).
    """
    if n_tags < 0:
        raise ValueError("n_tags must be non-negative")
    if bits < 1:
        raise ValueError("bits must be positive")
    space = float(2 ** bits)
    return min(1.0, n_tags * (n_tags - 1) / (2.0 * space))
