"""Public abstractions of the broadcast layer.

Two interfaces decouple the protocol implementations from the simulator:

* :class:`EnvironmentAPI` — the *only* surface protocol code may touch.  It
  mirrors the paper's system model: an anonymous ``broadcast(m)`` primitive,
  a local source of randomness (for tags), the read-only failure-detector
  variables, and delivery notification to the application layer.  Notably it
  does **not** expose the simulation clock, process identifiers, or the
  network topology — anonymity and asynchrony are enforced by construction.
* :class:`BroadcastProtocol` — what every broadcast algorithm (the paper's
  Algorithms 1 and 2, and the baselines) implements so the engine,
  experiments and analysis can drive them uniformly.
"""

from __future__ import annotations

import abc
import random
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from ..failure_detectors.base import FailureDetectorView
from .delivery import DeliveryLog
from .messages import TaggedMessage

#: Callback invoked with the application content of each URB-delivery.
DeliveryListener = Callable[[Any], None]

#: ``(now) -> (view, valid_until)``: the process's current AΘ view plus the
#: first time at which that view may change (``inf`` for static views).
#: Bound per process by the engine; see ``FailureDetector.view_window``.
ViewWindow = Callable[[float], tuple[FailureDetectorView, float]]


@runtime_checkable
class BatchConsumer(Protocol):
    """Struct-of-arrays receiver of one process, used by the vectorized
    engine's batched delivery path.

    A consumer replaces the per-payload ``on_receive`` dispatch for maximal
    *runs* of channel deliveries between queue events.  The engine hands ACK
    receptions to :meth:`consume_acks` grouped per destination (integer id
    arrays, no boxing) and replays the rare MSG receptions one at a time
    through :meth:`handle_msg` in global run order — MSG handling draws tags
    and broadcasts, so its RNG/sequence consumption must interleave exactly
    as the reference engine's.  The contract is bit-identical observable
    state: delivery logs, protocol state dicts (after :meth:`flush`), and
    the positions at which deliveries fire.
    """

    #: Whether :meth:`consume_acks` evaluates failure-detector views (the
    #: engine then requires a detector with stable view windows).
    needs_views: bool

    #: ``message -> run position`` of deliveries made by the current run's
    #: ACK phase; the engine clears it after emitting deferred deliveries.
    run_delivered_pos: dict

    def consume_acks(self, pids, positions, times) -> list:
        """Consume one run's ACK receptions addressed to this process.

        ``pids``/``positions``/``times`` are equal-length arrays in run
        order.  Applies all protocol state updates and returns the resulting
        URB-deliveries as ``(run_position, message)`` pairs sorted by
        position (delivery log already appended; trace/metrics emission is
        the engine's job).
        """
        ...

    def handle_msg(self, payload: Any, position: int) -> None:
        """Handle one MSG reception at run position *position* exactly as
        the per-event path would (including its URB-delivered check against
        deliveries made later in the same run)."""
        ...

    def flush(self) -> None:
        """Materialise lazily-maintained protocol state dicts so that
        per-event code (tick handlers, post-run introspection) reads exactly
        what the reference engine would have left there."""
        ...


@runtime_checkable
class EnvironmentAPI(Protocol):
    """The environment a protocol process runs in (paper §II primitives)."""

    def broadcast(self, payload: Any) -> None:
        """The paper's ``broadcast(m)``: send *payload* to every process,
        including the caller, over the (possibly lossy) channels."""
        ...

    @property
    def random(self) -> random.Random:
        """Process-local randomness, used for tag generation (``random()``)."""
        ...

    def atheta(self) -> FailureDetectorView:
        """Current value of the read-only AΘ variable ``a_theta_i``."""
        ...

    def apstar(self) -> FailureDetectorView:
        """Current value of the read-only AP\\* variable ``a_p*_i``."""
        ...

    def notify_delivery(self, message: TaggedMessage) -> None:
        """Inform the platform that the process URB-delivered *message*
        (used for tracing/metrics; the process keeps its own log too)."""
        ...

    def notify_retire(self, message: TaggedMessage) -> None:
        """Inform the platform that *message* left the retransmission set
        (Algorithm 2's quiescence step, traced for analysis)."""
        ...


class BroadcastProtocol(abc.ABC):
    """Base class of every broadcast algorithm in the library.

    Subclasses implement the three entry points the engine drives:
    :meth:`urb_broadcast` (application layer), :meth:`on_receive` (channel
    deliveries) and :meth:`on_tick` (the paper's Task 1 retransmission
    round).  The base class owns the delivery log and listener plumbing.
    """

    #: Short name used in reports ("algorithm1", "algorithm2", …).
    name: str = "abstract"

    def __init__(self, env: EnvironmentAPI) -> None:
        self.env = env
        self._delivery_log = DeliveryLog()
        self._listeners: list[DeliveryListener] = []

    # ------------------------------------------------------------------ #
    # entry points driven by the engine
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def urb_broadcast(self, content: Any) -> None:
        """Application-level broadcast of *content* (paper ``URB_broadcast``)."""

    @abc.abstractmethod
    def on_receive(self, payload: Any) -> None:
        """Handle a payload received from the anonymous network."""

    @abc.abstractmethod
    def on_tick(self) -> None:
        """One round of the paper's Task 1 «repeat forever» loop."""

    # ------------------------------------------------------------------ #
    # delivery bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def delivery_log(self) -> DeliveryLog:
        """The process's URB-delivery log (order preserved)."""
        return self._delivery_log

    def delivered_contents(self) -> list[Any]:
        """Application contents delivered so far, in delivery order."""
        return self._delivery_log.contents()

    def add_delivery_listener(self, listener: DeliveryListener) -> None:
        """Register a callback invoked with each delivered content."""
        self._listeners.append(listener)

    def _record_delivery(self, message: TaggedMessage) -> None:
        """Record the URB-delivery of *message* and notify listeners.

        Subclasses are responsible for the at-most-once check (their
        ``URB_DELIVERED`` set) *before* calling this.
        """
        self._delivery_log.append(message)
        self.env.notify_delivery(message)
        for listener in self._listeners:
            listener(message.content)

    # ------------------------------------------------------------------ #
    # batched receiver (vectorized engine fast path)
    # ------------------------------------------------------------------ #
    def batch_consumer(self, interner: Any,
                       view_window: "ViewWindow") -> Optional["BatchConsumer"]:
        """Return a :class:`BatchConsumer` for this process, or ``None``.

        ``None`` (the default) means the protocol has no batched receiver
        and the engine must box every delivery back through
        :meth:`on_receive`.  Implementations receive the run-wide
        :class:`~repro.core.state.PayloadInterner` and a per-process
        ``view_window`` callable for AΘ reads.  Protocols whose consumer
        cannot reproduce a configuration exactly (e.g. Algorithm 2 under
        ``strict_equality``) must return ``None`` for it.
        """
        return None

    # ------------------------------------------------------------------ #
    # introspection used by the engine and the analysis layer
    # ------------------------------------------------------------------ #
    @property
    def pending_retransmissions(self) -> int:
        """Number of messages the process still retransmits every tick.

        Zero means the process has no further sending obligations — the
        per-process ingredient of quiescence.  Protocols without a
        retransmission task return 0.
        """
        return 0

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return self.name
