"""The paper's contribution: anonymous URB protocols and baselines."""

from .algorithm1 import MajorityUrbProcess
from .algorithm2 import QuiescentUrbProcess
from .baselines import (
    BestEffortBroadcastProcess,
    EagerReliableBroadcastProcess,
    IdentifiedMajorityUrbProcess,
)
from .delivery import DeliveryLog, DeliveryRecord
from .interfaces import BroadcastProtocol, DeliveryListener, EnvironmentAPI
from .messages import (
    AckPayload,
    LabeledAckPayload,
    MsgPayload,
    ProtocolPayload,
    TaggedMessage,
    payload_kind,
)
from .process_base import AnonymousProcess
from .state import Algorithm1State, Algorithm2State, MessageSet
from .tags import Tag, TagGenerator, collision_probability

__all__ = [
    "AckPayload",
    "Algorithm1State",
    "Algorithm2State",
    "AnonymousProcess",
    "BestEffortBroadcastProcess",
    "BroadcastProtocol",
    "DeliveryListener",
    "DeliveryLog",
    "DeliveryRecord",
    "EagerReliableBroadcastProcess",
    "EnvironmentAPI",
    "IdentifiedMajorityUrbProcess",
    "LabeledAckPayload",
    "MajorityUrbProcess",
    "MessageSet",
    "MsgPayload",
    "ProtocolPayload",
    "QuiescentUrbProcess",
    "Tag",
    "TagGenerator",
    "TaggedMessage",
    "collision_probability",
    "payload_kind",
]
