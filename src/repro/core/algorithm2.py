r"""Algorithm 2 — Quiescent Uniform Reliable Broadcast with AΘ and AP\*.

Quiescent URB in ``AAS_F[AΘ, AP*]`` with **any** number of crashes (paper
§VI).  Differences from Algorithm 1:

* ACKs additionally carry the label set the acknowledger currently reads
  from its AΘ variable (lines 13–21).  Receivers keep, per message and per
  acknowledger (``tag_ack``), the last label set received, and maintain a
  per-label counter of how many distinct acknowledgers currently report the
  label (lines 22–45, reconciling repeated ACKs that carry more or fewer
  labels as AΘ converges).
* **Delivery condition** (line 46): deliver once *some* AΘ pair
  ``(label, number)`` has its counter reach ``number`` — by AΘ-accuracy
  those ``number`` acknowledgers include at least one correct process, which
  will keep re-broadcasting the message, so uniform agreement holds without
  any majority assumption.
* **Quiescence** (Task 1, lines 52–61): a message that has been delivered
  and fully acknowledged according to AP\* is *retired* from the ``MSG``
  set, after which it is never re-broadcast again; eventually every process
  stops sending — the protocol is quiescent (Theorem 3).

Two faithfulness notes (see DESIGN.md §3.4): the repeated-ACK reconciliation
follows the evident intent of the paper's garbled lines 38–44, and the
delivery/retire comparisons default to ``>=`` / ``⊇`` (``strict_equality``
restores literal ``=`` / ``=``; ablation E10 compares both).
"""

from __future__ import annotations

from typing import Any, Optional, Union

import numpy as np

from ..failure_detectors.base import FailureDetectorView
from .algorithm1 import _grown, _grown_matrix
from .interfaces import BatchConsumer, EnvironmentAPI, ViewWindow
from .messages import AckPayload, LabeledAckPayload, MsgPayload, TaggedMessage
from .process_base import AnonymousProcess
from .state import AckRecord, Algorithm2State, PayloadInterner


class QuiescentUrbProcess(AnonymousProcess):
    """One anonymous process running Algorithm 2.

    Parameters
    ----------
    env:
        Process environment (must provide AΘ and AP\\* views).
    strict_equality:
        Use the paper's literal ``counter == number`` (and label-set
        equality) in the delivery and retire conditions instead of the
        robust ``counter >= number`` / superset form.  See DESIGN.md §3.4.
    retire_enabled:
        Allow Task 1 to retire fully-acknowledged delivered messages.
        Disabling it turns the protocol into a non-quiescent variant that is
        otherwise identical (used by the quiescence ablation).
    eager_first_broadcast:
        See :class:`~repro.core.process_base.AnonymousProcess`.
    """

    name = "algorithm2"

    def __init__(
        self,
        env: EnvironmentAPI,
        *,
        strict_equality: bool = False,
        retire_enabled: bool = True,
        eager_first_broadcast: bool = True,
    ) -> None:
        super().__init__(env, eager_first_broadcast=eager_first_broadcast)
        self.strict_equality = strict_equality
        self.retire_enabled = retire_enabled
        self.state = Algorithm2State()
        #: Number of messages retired from ``MSG`` by the quiescence rule.
        self.retired_count = 0

    # ------------------------------------------------------------------ #
    # URB_broadcast (lines 4-6)
    # ------------------------------------------------------------------ #
    def urb_broadcast(self, content: Any) -> None:
        tag = self._new_tag()                          # line 5
        message = TaggedMessage(content=content, tag=tag)
        self.state.add_message(message)                # line 6
        if self.eager_first_broadcast:
            self.env.broadcast(MsgPayload(message))

    # ------------------------------------------------------------------ #
    # receive (MSG, m, tag)  (lines 7-21)
    # ------------------------------------------------------------------ #
    def _on_msg(self, payload: MsgPayload) -> None:
        message = payload.message
        if message not in self.state.msg_set:           # line 8
            if not self.state.is_delivered(message):    # line 9
                self.state.add_message(message)         # line 10
        ack_tag = self.state.my_ack_for(message)
        if ack_tag is None:                              # lines 16-21
            ack_tag = self._new_tag()                    # line 17
            self.state.set_my_ack(message, ack_tag)      # line 18
        # Lines 14/19: read the label set from AΘ at (re-)acknowledgement
        # time; repeated ACKs keep the same tag_ack but refresh the labels.
        labels = self.env.atheta().labels()
        self.env.broadcast(LabeledAckPayload(message, ack_tag, labels))

    # ------------------------------------------------------------------ #
    # receive (ACK, m, tag, tag_ack, labels)  (lines 22-51)
    # ------------------------------------------------------------------ #
    def _on_ack(self, payload: Union[AckPayload, LabeledAckPayload]) -> None:
        message = payload.message
        labels = getattr(payload, "labels", frozenset())
        self.state.record_labeled_ack(message, payload.ack_tag, labels)
        self._try_deliver(message)

    def _try_deliver(self, message: TaggedMessage) -> None:
        """Delivery condition, lines 46-51."""
        if self.state.is_delivered(message):
            return
        view = self.env.atheta()
        if self._delivery_condition(message, view):
            self.state.mark_delivered(message)          # line 48
            self._record_delivery(message)              # line 49

    def _delivery_condition(self, message: TaggedMessage,
                            view: FailureDetectorView) -> bool:
        """∃ (label, number) ∈ a_theta with counter[label] (==|>=) number."""
        for pair in view:
            count = self.state.label_count(message, pair.label)
            if self._satisfies(count, pair.number):
                return True
        return False

    # ------------------------------------------------------------------ #
    # Task 1 (lines 52-61)
    # ------------------------------------------------------------------ #
    def on_tick(self) -> None:
        if not self.state.msg_set:
            return
        ap_view = self.env.apstar()
        for message in self.state.msg_set.as_list():
            self.env.broadcast(MsgPayload(message))                 # line 54
            if not self.retire_enabled:
                continue
            if self._retire_condition(message, ap_view):            # line 55
                if self.state.is_delivered(message):                # line 56
                    self.state.msg_set.discard(message)             # line 57
                    self.retired_count += 1
                    self.env.notify_retire(message)

    def _retire_condition(self, message: TaggedMessage,
                          ap_view: FailureDetectorView) -> bool:
        """Line 55: every AP\\* pair fully acknowledged, labels consistent."""
        if ap_view.is_empty():
            # Without any failure-detector information the process cannot
            # conclude that every correct process has acknowledged; keep
            # retransmitting (conservative — affects only liveness).
            return False
        for pair in ap_view:
            count = self.state.label_count(message, pair.label)
            if not self._satisfies(count, pair.number):
                return False
        union = self.state.labels_union(message)
        ap_labels = ap_view.labels()
        if self.strict_equality:
            return union == ap_labels
        return ap_labels <= union

    # ------------------------------------------------------------------ #
    # helpers / introspection
    # ------------------------------------------------------------------ #
    def _satisfies(self, count: int, number: int) -> bool:
        """Counter comparison: literal equality or the robust ``>=`` form."""
        if self.strict_equality:
            return count == number
        return count >= number

    @property
    def pending_retransmissions(self) -> int:
        """Messages still re-broadcast every tick; reaches zero once the
        process has retired everything (quiescence)."""
        return len(self.state.msg_set)

    def describe(self) -> str:
        mode = "strict" if self.strict_equality else "robust"
        retire = "retire" if self.retire_enabled else "no-retire"
        return f"algorithm2({mode}, {retire})"

    # ------------------------------------------------------------------ #
    # batched receiver (vectorized engine fast path)
    # ------------------------------------------------------------------ #
    def batch_consumer(self, interner: PayloadInterner,
                       view_window: ViewWindow) -> Optional[BatchConsumer]:
        if self.strict_equality:
            # Literal ``==`` makes the delivery condition non-monotone in
            # the counter, so the crossing arithmetic below does not apply.
            return None
        return Algorithm2BatchConsumer(self, interner, view_window)


#: Sentinel "no view pair can be satisfied" threshold.
_NEED_NEVER = 1 << 62


class Algorithm2BatchConsumer:
    """Struct-of-arrays ACK consumption for Algorithm 2.

    Builds on the same representation as Algorithm 1's consumer —
    ``absorbed`` pid bitmap, ``acked[mid, slot]`` matrix, ``base_count``
    row sums, ``delivered_mid`` — with two Algorithm-2 extras:

    * **Uniform-label fast path.**  In steady state every ACK of a message
      carries the same label set (``uniform_lid[mid]``), so
      ``counter[label]`` is ``base_count[mid]`` for every carried label and
      the delivery condition reduces to one integer threshold
      (:meth:`_need_for`: the smallest satisfiable view ``number``).  A
      message whose ACKs stop being uniform — same ``tag_ack`` re-acked
      with different labels while AΘ converges, or two acknowledgers
      colliding on a slot — is *debatched*: its dict state is materialised
      once (:meth:`_debatch`) and its receptions thereafter run through the
      exact per-entry ``record_labeled_ack`` reconciliation.
    * **View segmentation.**  The reference evaluates the delivery
      condition against AΘ at each reception time, so a run is split at
      view validity boundaries (``view_window``) and each segment is
      consumed under one view object.

    Deliveries are returned position-tagged for the engine to emit in
    global run order; ``run_delivered_pos`` lets the MSG phase reproduce
    the reference's delivered-before-this-reception checks.
    """

    needs_views = True

    __slots__ = (
        "proc", "state", "interner", "view_window", "absorbed", "acked",
        "base_count", "uniform_lid", "delivered_mid", "debatched_mid",
        "_dirty_mask", "_dirty", "run_delivered_pos", "_need_view",
        "_need_cache",
    )

    def __init__(self, proc: QuiescentUrbProcess, interner: PayloadInterner,
                 view_window: ViewWindow) -> None:
        self.proc = proc
        self.state = proc.state
        self.interner = interner
        self.view_window = view_window
        self.absorbed = np.zeros(256, dtype=bool)
        self.acked = np.zeros((16, 16), dtype=bool)
        self.base_count = np.zeros(16, dtype=np.int64)
        self.uniform_lid = np.full(16, -1, dtype=np.int64)
        self.delivered_mid = np.zeros(16, dtype=bool)
        self.debatched_mid = np.zeros(16, dtype=bool)
        self._dirty_mask = np.zeros(16, dtype=bool)
        self._dirty: list[int] = []
        self.run_delivered_pos: dict[TaggedMessage, int] = {}
        self._need_view: Optional[FailureDetectorView] = None
        self._need_cache: dict[int, int] = {}

    def _ensure_capacity(self) -> None:
        interner = self.interner
        if interner.n_pids > self.absorbed.shape[0]:
            self.absorbed = _grown(self.absorbed, interner.n_pids)
        n_mids = len(interner.messages)
        if n_mids > self.base_count.shape[0]:
            self.base_count = _grown(self.base_count, n_mids)
            self.uniform_lid = _grown(self.uniform_lid, n_mids, fill=-1)
            self.delivered_mid = _grown(self.delivered_mid, n_mids)
            self.debatched_mid = _grown(self.debatched_mid, n_mids)
            self._dirty_mask = _grown(self._dirty_mask, n_mids)
        rows, cols = self.acked.shape
        if n_mids > rows or interner.max_slots > cols:
            self.acked = _grown_matrix(self.acked, n_mids, interner.max_slots)

    # -- engine API ---------------------------------------------------- #
    def consume_acks(self, pids: np.ndarray, positions: np.ndarray,
                     times: np.ndarray) -> list:
        self._ensure_capacity()
        interner = self.interner
        mids = interner.mid_arr[pids]
        lids = interner.lid_arr[pids]
        deliveries: list[tuple[int, TaggedMessage]] = []
        n = pids.shape[0]
        start = 0
        while start < n:
            view, valid_until = self.view_window(times[start])
            if valid_until <= times[n - 1]:
                end = start + int(
                    np.searchsorted(times[start:], valid_until, side="left")
                )
                if end <= start:
                    # Degenerate window (view only known at the query
                    # time): consume a single entry under it.
                    end = start + 1
            else:
                end = n
            self._consume_segment(
                view, pids[start:end], mids[start:end], lids[start:end],
                positions[start:end], deliveries,
            )
            start = end
        if deliveries:
            deliveries.sort()
            state = self.state
            log = self.proc._delivery_log
            rdp = self.run_delivered_pos
            for pos, message in deliveries:
                state.mark_delivered(message)
                log.append(message)
                rdp[message] = pos
        return deliveries

    def _consume_segment(self, view: FailureDetectorView, pids: np.ndarray,
                         mids: np.ndarray, lids: np.ndarray,
                         positions: np.ndarray, deliveries: list) -> None:
        interner = self.interner
        while True:
            deb = self.debatched_mid[mids]
            has_deb = bool(deb.any())
            if has_deb:
                clean_sel = ~deb
                fresh_sel = clean_sel & ~self.absorbed[pids]
            else:
                clean_sel = None
                fresh_sel = ~self.absorbed[pids]
            fresh_idx = np.nonzero(fresh_sel)[0]
            if not fresh_idx.size:
                uf = u_pids = u_mids = u_slots = u_lids = None
                break
            fpids = pids[fresh_idx]
            _, first = np.unique(fpids, return_index=True)
            uf = np.sort(fresh_idx[first])
            u_pids = pids[uf]
            u_mids = mids[uf]
            u_slots = interner.slot_arr[u_pids]
            u_lids = lids[uf]
            # Debatch detection: (a) a known slot re-acked fresh means the
            # labels changed; (b) a lid differing from the message's
            # uniform lid; (c) within-segment slot/lid collisions.
            bad = self.acked[u_mids, u_slots].copy()
            ul = self.uniform_lid[u_mids]
            bad |= (ul != -1) & (ul != u_lids)
            bad_mids = set(u_mids[bad].tolist()) if bad.any() else set()
            if u_mids.shape[0] > 1:
                conflict_order = np.lexsort((u_slots, u_mids))
                cm = u_mids[conflict_order]
                same = cm[1:] == cm[:-1]
                if same.any():
                    cl = u_lids[conflict_order]
                    cs = u_slots[conflict_order]
                    conflict = same & ((cl[1:] != cl[:-1]) | (cs[1:] == cs[:-1]))
                    if conflict.any():
                        bad_mids.update(cm[1:][conflict].tolist())
            if not bad_mids:
                break
            for mid in bad_mids:
                self._debatch(int(mid))
            # Loop: recompute the selection with the enlarged debatched set.
        if uf is not None:
            order = np.argsort(u_mids, kind="stable")
            gm = u_mids[order]
            bounds = np.nonzero(gm[1:] != gm[:-1])[0] + 1
            starts = np.concatenate(([0], bounds))
            ends = np.concatenate((bounds, [gm.shape[0]]))
            group_mids = gm[starts]
            undelivered = ~self.delivered_mid[group_mids]
            if undelivered.any():
                base_count = self.base_count
                messages = interner.messages
                for gi in np.nonzero(undelivered)[0].tolist():
                    mid = int(group_mids[gi])
                    s = int(starts[gi])
                    e = int(ends[gi])
                    need = self._need_for(view, int(u_lids[order[s]]))
                    base = int(base_count[mid])
                    if base >= need:
                        # Already satisfiable under this view: the
                        # reference delivers at the first ACK touching the
                        # message, fresh or repeat.
                        if clean_sel is None:
                            hit = int(np.nonzero(mids == mid)[0][0])
                        else:
                            hit = int(
                                np.nonzero(clean_sel & (mids == mid))[0][0]
                            )
                    elif need - base <= e - s:
                        # The (need − base)-th distinct new ack crosses.
                        hit = int(uf[order[s + (need - base) - 1]])
                    else:
                        continue
                    self.delivered_mid[mid] = True
                    deliveries.append((int(positions[hit]), messages[mid]))
            self.acked[u_mids, u_slots] = True
            self.base_count[group_mids] += ends - starts
            self.uniform_lid[u_mids] = u_lids
            self.absorbed[u_pids] = True
            newly = group_mids[~self._dirty_mask[group_mids]]
            if newly.size:
                self._dirty.extend(newly.tolist())
                self._dirty_mask[newly] = True
            fresh_mids = set(group_mids.tolist())
        else:
            fresh_mids = set()
        # Repeat-only messages can still deliver when the view changed
        # since their count was recorded (the reference re-evaluates the
        # condition on every reception, absorbed or not).
        rep_sel = clean_sel & ~fresh_sel if clean_sel is not None else ~fresh_sel
        rep_sel &= ~self.delivered_mid[mids]
        if rep_sel.any():
            rep_idx = np.nonzero(rep_sel)[0]
            rep_mids = mids[rep_idx]
            _, rfirst = np.unique(rep_mids, return_index=True)
            messages = interner.messages
            for ri in rfirst.tolist():
                mid = int(rep_mids[ri])
                if mid in fresh_mids:
                    continue  # handled by the fresh-group scan above
                need = self._need_for(view, int(self.uniform_lid[mid]))
                if int(self.base_count[mid]) >= need:
                    self.delivered_mid[mid] = True
                    deliveries.append(
                        (int(positions[rep_idx[ri]]), messages[mid])
                    )
        if has_deb:
            # Debatched messages run the exact per-entry reconciliation;
            # their state is dict-based and disjoint from every clean
            # message, so processing them after the clean bulk preserves
            # per-message reception order (all that matters).
            payloads = interner.payloads
            state = self.state
            messages = interner.messages
            delivery_condition = self.proc._delivery_condition
            for k in np.nonzero(deb)[0].tolist():
                payload = payloads[pids[k]]
                message = payload.message
                state.record_labeled_ack(
                    message, payload.ack_tag,
                    getattr(payload, "labels", frozenset()),
                )
                mid = int(mids[k])
                if not self.delivered_mid[mid] and delivery_condition(
                    message, view
                ):
                    self.delivered_mid[mid] = True
                    deliveries.append((int(positions[k]), messages[mid]))

    def handle_msg(self, payload: MsgPayload, position: int) -> None:
        proc = self.proc
        state = self.state
        message = payload.message
        if message not in state.msg_set:
            dp = self.run_delivered_pos.get(message)
            delivered = (
                state.is_delivered(message) if dp is None else dp < position
            )
            if not delivered:
                state.add_message(message)
        ack_tag = state.my_ack_for(message)
        if ack_tag is None:
            ack_tag = proc._new_tag()
            state.set_my_ack(message, ack_tag)
        labels = proc.env.atheta().labels()
        proc.env.broadcast(LabeledAckPayload(message, ack_tag, labels))

    def flush(self) -> None:
        dirty = self._dirty
        if not dirty:
            return
        for mid in dirty:
            self._flush_mid(mid)
        self._dirty_mask[np.asarray(dirty, dtype=np.int64)] = False
        dirty.clear()

    # -- internals ----------------------------------------------------- #
    def _need_for(self, view: FailureDetectorView, lid: int) -> int:
        """Smallest count at which some view pair satisfies the delivery
        condition for a message whose ACKs uniformly carry label set *lid*."""
        cached_view = self._need_view
        if view is not cached_view:
            if cached_view is None or view != cached_view:
                self._need_cache = {}
            self._need_view = view
        cache = self._need_cache
        need = cache.get(lid)
        if need is None:
            if lid < 0:
                labels = frozenset()
            else:
                labels = self.interner.label_sets[lid]
            need = _NEED_NEVER
            for pair in view.pairs:
                number = pair.number
                if number == 0:
                    # count >= 0 holds vacuously, carried labels or not.
                    need = 0
                    break
                if number < need and pair.label in labels:
                    need = number
            cache[lid] = need
        return need

    def _debatch(self, mid: int) -> None:
        """Materialise *mid*'s dict state and route it per-entry forever."""
        self._flush_mid(mid)
        self.debatched_mid[mid] = True
        if self._dirty_mask[mid]:
            self._dirty_mask[mid] = False
            self._dirty.remove(mid)

    def _flush_mid(self, mid: int) -> None:
        lid = int(self.uniform_lid[mid])
        if lid < 0:
            return  # no acks recorded yet — nothing to materialise
        interner = self.interner
        state = self.state
        labels = interner.label_sets[lid]
        tags = interner.slot_tags[mid]
        row = self.acked[mid, : len(tags)]
        message = interner.messages[mid]
        records = {}
        tag_set = set()
        for s in np.nonzero(row)[0].tolist():
            tag = tags[s]
            records[tag] = AckRecord(ack_tag=tag, labels=labels)
            tag_set.add(tag)
        state.ack_records[message] = records
        count = int(self.base_count[mid])
        state.label_counter[message] = {label: count for label in labels}
        state.all_ack[message] = tag_set
