r"""Algorithm 2 — Quiescent Uniform Reliable Broadcast with AΘ and AP\*.

Quiescent URB in ``AAS_F[AΘ, AP*]`` with **any** number of crashes (paper
§VI).  Differences from Algorithm 1:

* ACKs additionally carry the label set the acknowledger currently reads
  from its AΘ variable (lines 13–21).  Receivers keep, per message and per
  acknowledger (``tag_ack``), the last label set received, and maintain a
  per-label counter of how many distinct acknowledgers currently report the
  label (lines 22–45, reconciling repeated ACKs that carry more or fewer
  labels as AΘ converges).
* **Delivery condition** (line 46): deliver once *some* AΘ pair
  ``(label, number)`` has its counter reach ``number`` — by AΘ-accuracy
  those ``number`` acknowledgers include at least one correct process, which
  will keep re-broadcasting the message, so uniform agreement holds without
  any majority assumption.
* **Quiescence** (Task 1, lines 52–61): a message that has been delivered
  and fully acknowledged according to AP\* is *retired* from the ``MSG``
  set, after which it is never re-broadcast again; eventually every process
  stops sending — the protocol is quiescent (Theorem 3).

Two faithfulness notes (see DESIGN.md §3.4): the repeated-ACK reconciliation
follows the evident intent of the paper's garbled lines 38–44, and the
delivery/retire comparisons default to ``>=`` / ``⊇`` (``strict_equality``
restores literal ``=`` / ``=``; ablation E10 compares both).
"""

from __future__ import annotations

from typing import Any, Union

from ..failure_detectors.base import FailureDetectorView
from .interfaces import EnvironmentAPI
from .messages import AckPayload, LabeledAckPayload, MsgPayload, TaggedMessage
from .process_base import AnonymousProcess
from .state import Algorithm2State


class QuiescentUrbProcess(AnonymousProcess):
    """One anonymous process running Algorithm 2.

    Parameters
    ----------
    env:
        Process environment (must provide AΘ and AP\\* views).
    strict_equality:
        Use the paper's literal ``counter == number`` (and label-set
        equality) in the delivery and retire conditions instead of the
        robust ``counter >= number`` / superset form.  See DESIGN.md §3.4.
    retire_enabled:
        Allow Task 1 to retire fully-acknowledged delivered messages.
        Disabling it turns the protocol into a non-quiescent variant that is
        otherwise identical (used by the quiescence ablation).
    eager_first_broadcast:
        See :class:`~repro.core.process_base.AnonymousProcess`.
    """

    name = "algorithm2"

    def __init__(
        self,
        env: EnvironmentAPI,
        *,
        strict_equality: bool = False,
        retire_enabled: bool = True,
        eager_first_broadcast: bool = True,
    ) -> None:
        super().__init__(env, eager_first_broadcast=eager_first_broadcast)
        self.strict_equality = strict_equality
        self.retire_enabled = retire_enabled
        self.state = Algorithm2State()
        #: Number of messages retired from ``MSG`` by the quiescence rule.
        self.retired_count = 0

    # ------------------------------------------------------------------ #
    # URB_broadcast (lines 4-6)
    # ------------------------------------------------------------------ #
    def urb_broadcast(self, content: Any) -> None:
        tag = self._new_tag()                          # line 5
        message = TaggedMessage(content=content, tag=tag)
        self.state.add_message(message)                # line 6
        if self.eager_first_broadcast:
            self.env.broadcast(MsgPayload(message))

    # ------------------------------------------------------------------ #
    # receive (MSG, m, tag)  (lines 7-21)
    # ------------------------------------------------------------------ #
    def _on_msg(self, payload: MsgPayload) -> None:
        message = payload.message
        if message not in self.state.msg_set:           # line 8
            if not self.state.is_delivered(message):    # line 9
                self.state.add_message(message)         # line 10
        ack_tag = self.state.my_ack_for(message)
        if ack_tag is None:                              # lines 16-21
            ack_tag = self._new_tag()                    # line 17
            self.state.set_my_ack(message, ack_tag)      # line 18
        # Lines 14/19: read the label set from AΘ at (re-)acknowledgement
        # time; repeated ACKs keep the same tag_ack but refresh the labels.
        labels = self.env.atheta().labels()
        self.env.broadcast(LabeledAckPayload(message, ack_tag, labels))

    # ------------------------------------------------------------------ #
    # receive (ACK, m, tag, tag_ack, labels)  (lines 22-51)
    # ------------------------------------------------------------------ #
    def _on_ack(self, payload: Union[AckPayload, LabeledAckPayload]) -> None:
        message = payload.message
        labels = getattr(payload, "labels", frozenset())
        self.state.record_labeled_ack(message, payload.ack_tag, labels)
        self._try_deliver(message)

    def _try_deliver(self, message: TaggedMessage) -> None:
        """Delivery condition, lines 46-51."""
        if self.state.is_delivered(message):
            return
        view = self.env.atheta()
        if self._delivery_condition(message, view):
            self.state.mark_delivered(message)          # line 48
            self._record_delivery(message)              # line 49

    def _delivery_condition(self, message: TaggedMessage,
                            view: FailureDetectorView) -> bool:
        """∃ (label, number) ∈ a_theta with counter[label] (==|>=) number."""
        for pair in view:
            count = self.state.label_count(message, pair.label)
            if self._satisfies(count, pair.number):
                return True
        return False

    # ------------------------------------------------------------------ #
    # Task 1 (lines 52-61)
    # ------------------------------------------------------------------ #
    def on_tick(self) -> None:
        if not self.state.msg_set:
            return
        ap_view = self.env.apstar()
        for message in self.state.msg_set.as_list():
            self.env.broadcast(MsgPayload(message))                 # line 54
            if not self.retire_enabled:
                continue
            if self._retire_condition(message, ap_view):            # line 55
                if self.state.is_delivered(message):                # line 56
                    self.state.msg_set.discard(message)             # line 57
                    self.retired_count += 1
                    self.env.notify_retire(message)

    def _retire_condition(self, message: TaggedMessage,
                          ap_view: FailureDetectorView) -> bool:
        """Line 55: every AP\\* pair fully acknowledged, labels consistent."""
        if ap_view.is_empty():
            # Without any failure-detector information the process cannot
            # conclude that every correct process has acknowledged; keep
            # retransmitting (conservative — affects only liveness).
            return False
        for pair in ap_view:
            count = self.state.label_count(message, pair.label)
            if not self._satisfies(count, pair.number):
                return False
        union = self.state.labels_union(message)
        ap_labels = ap_view.labels()
        if self.strict_equality:
            return union == ap_labels
        return ap_labels <= union

    # ------------------------------------------------------------------ #
    # helpers / introspection
    # ------------------------------------------------------------------ #
    def _satisfies(self, count: int, number: int) -> bool:
        """Counter comparison: literal equality or the robust ``>=`` form."""
        if self.strict_equality:
            return count == number
        return count >= number

    @property
    def pending_retransmissions(self) -> int:
        """Messages still re-broadcast every tick; reaches zero once the
        process has retired everything (quiescence)."""
        return len(self.state.msg_set)

    def describe(self) -> str:
        mode = "strict" if self.strict_equality else "robust"
        retire = "retire" if self.retire_enabled else "no-retire"
        return f"algorithm2({mode}, {retire})"
