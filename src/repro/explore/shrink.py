"""Delta-debugging (ddmin) over schedule decision traces.

Zeller's classic ddmin, specialised only in its vocabulary: *items* are the
decisions of a violating schedule and the *failing* predicate replays a
candidate subsequence (via :class:`~repro.explore.controller.ReplayController`)
and reports whether the original violation signature reproduces.  Removing a
decision shifts the remaining ones onto earlier nondeterminism points and
lets the points past the end fall back to the run's deterministic RNG — so
every candidate is itself a well-defined schedule.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar

T = TypeVar("T")

#: Replays are full (small) simulation runs; cap them so shrinking a noisy
#: counterexample cannot dominate an exploration session.
DEFAULT_MAX_TESTS = 200


def ddmin(
    items: Sequence[T],
    failing: Callable[[list[T]], bool],
    *,
    max_tests: Optional[int] = DEFAULT_MAX_TESTS,
) -> tuple[list[T], int]:
    """Minimise *items* while ``failing(subset)`` stays true.

    Parameters
    ----------
    items:
        The failing input (``failing(list(items))`` must hold — the caller
        is expected to have verified this; it is not re-tested here).
    failing:
        Predicate deciding whether a candidate subsequence still fails.
    max_tests:
        Upper bound on predicate invocations; when exhausted the best
        reduction found so far is returned (``None`` = unlimited).

    Returns
    -------
    (minimal, tests):
        The 1-minimal (up to the test budget) failing subsequence and the
        number of predicate invocations spent.
    """
    current = list(items)
    tests = 0
    granularity = 2
    while len(current) >= 2:
        chunk = len(current) / granularity
        reduced = False
        for position in range(granularity):
            if max_tests is not None and tests >= max_tests:
                return current, tests
            start = int(position * chunk)
            stop = int((position + 1) * chunk)
            candidate = current[:start] + current[stop:]
            if not candidate or len(candidate) == len(current):
                continue
            tests += 1
            if failing(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current, tests
