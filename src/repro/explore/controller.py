"""Schedule controllers: the engine's controlled-nondeterminism interface.

A :class:`ScheduleController` is consulted by the
:class:`~repro.simulation.engine.SimulationEngine` at every nondeterminism
point of a run:

* **per-copy transmission** (``copy_decision``) — whether each copy of a
  broadcast is delivered (and after what delay), dropped, or whether the
  *sender crashes* at that point, mid-broadcast;
* **failure-detector queries** (``atheta_view`` / ``apstar_view``) — what a
  process reads from its AΘ / AP\\* variable.

The base class delegates everything back to the run's own RNG-driven
components (the channel's loss/delay models, the configured oracles), so an
engine with the default controller is bit-identical to one without any — the
parity tests in ``tests/unit/test_explore_controller.py`` assert this on
trace digests.

Strategy controllers (see :mod:`repro.explore.strategies`) instead *choose*
outcomes and record every choice as a **decision**, a small JSON-friendly
tuple:

* ``("deliver", delay)`` — the copy is delivered after ``delay``;
* ``("drop",)`` — the copy is lost;
* ``("crash",)`` — the sender crashes before this copy is handed to its
  channel (the broadcast's remaining copies are never sent);
* ``("fd", query_index, stale_by)`` — failure-detector query number
  ``query_index`` (0-based, counted across both detectors) is answered with
  the oracle's output as of ``stale_by`` time units earlier.

Copy decisions are consumed strictly in order, one per transmission point;
``fd`` decisions are keyed by their query counter.  Both facts make a
recorded trace replayable (:class:`ReplayController`) and shrinkable
(:mod:`repro.explore.shrink`): dropping a decision simply shifts the
remaining ones onto earlier points, and points past the end of the trace
fall back to the channel's own deterministic RNG draws.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

from ..failure_detectors.base import FailureDetector, FailureDetectorView
from ..simulation.engine import CRASH_SENDER, hash_decisions
from ..simulation.simtime import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.channel import Channel
    from ..network.loss import DedupKey
    from ..simulation.engine import SimulationEngine

__all__ = [
    "CRASH",
    "DELIVER",
    "DROP",
    "FD",
    "Decision",
    "DefaultScheduleController",
    "RecordingController",
    "ReplayController",
    "ScheduleController",
    "hash_decisions",
]

#: One recorded choice — see the module docstring for the four shapes.
Decision = tuple

DELIVER = "deliver"
DROP = "drop"
CRASH = "crash"
FD = "fd"


class ScheduleController:
    """Base controller: every decision delegates to the run's own RNG.

    Subclasses override :meth:`copy_decision` (and optionally the two
    failure-detector hooks) to steer the schedule, and expose the choices
    they made through :attr:`decisions`.
    """

    #: Name recorded in the run's :class:`ScheduleProvenance`.
    strategy_name: str = "default"
    #: Position in the strategy's schedule enumeration (0 for non-strategies).
    schedule_index: int = 0

    @property
    def decisions(self) -> Sequence[Decision]:
        """The decisions taken so far (empty for the default controller)."""
        return ()

    def begin_run(self, engine: "SimulationEngine") -> None:
        """Called once before the first event is seeded."""

    def copy_decision(
        self,
        engine: "SimulationEngine",
        src: int,
        dst: int,
        payload: Any,
        key: "DedupKey",
        channel: "Channel",
        now: SimTime,
    ) -> Any:
        """Fate of one copy: an absolute delivery time, ``None`` (drop), or
        :data:`~repro.simulation.engine.CRASH_SENDER`.

        The default delegates to the channel, drawing its loss/delay RNG
        streams in exactly the order the uncontrolled paths would.
        """
        return channel.transmit(key, now)

    def atheta_view(
        self, engine: "SimulationEngine", index: int, now: SimTime
    ) -> Optional[FailureDetectorView]:
        """AΘ output override; ``None`` means "use the configured oracle"."""
        return None

    def apstar_view(
        self, engine: "SimulationEngine", index: int, now: SimTime
    ) -> Optional[FailureDetectorView]:
        """AP\\* output override; ``None`` means "use the configured oracle"."""
        return None


class DefaultScheduleController(ScheduleController):
    """Explicitly-named alias of the pass-through base controller."""


class RecordingController(ScheduleController):
    """Base for controllers that choose outcomes and record them.

    Parameters
    ----------
    strategy_name, schedule_index:
        Provenance identity of this schedule.
    fairness_bound:
        Soundness guard: after this many *consecutive* drop decisions for
        copies sharing the same ``(src, dst, key)``, the next copy is
        forcibly delivered (with :meth:`_fairness_delay`).  This keeps every
        explored schedule an admissible execution over fair lossy channels,
        so a reported violation is a protocol bug, not an artefact of an
        inadmissible adversary.  ``None`` disables the guard (used when the
        subclass delegates loss to the channel, which guards itself).
    """

    def __init__(
        self,
        strategy_name: str,
        schedule_index: int,
        *,
        fairness_bound: Optional[int] = None,
    ) -> None:
        if fairness_bound is not None and fairness_bound < 1:
            raise ValueError("fairness_bound must be >= 1 when given")
        self.strategy_name = strategy_name
        self.schedule_index = schedule_index
        self._fairness_bound = fairness_bound
        self._decisions: list[Decision] = []
        self._consecutive_drops: dict[tuple[int, int, Any], int] = {}
        self._fd_queries = 0

    @property
    def decisions(self) -> Sequence[Decision]:
        return self._decisions

    # ------------------------------------------------------------------ #
    # copy decisions
    # ------------------------------------------------------------------ #
    def copy_decision(
        self,
        engine: "SimulationEngine",
        src: int,
        dst: int,
        payload: Any,
        key: "DedupKey",
        channel: "Channel",
        now: SimTime,
    ) -> Any:
        choice = self._choose_copy(engine, src, dst, payload, key, channel, now)
        bound = self._fairness_bound
        if bound is not None:
            ckey = (src, dst, key)
            drops = self._consecutive_drops
            if choice[0] == DROP:
                if drops.get(ckey, 0) >= bound:
                    choice = (DELIVER, self._fairness_delay(channel))
                else:
                    drops[ckey] = drops.get(ckey, 0) + 1
            if choice[0] == DELIVER and ckey in drops:
                del drops[ckey]
        self._decisions.append(choice)
        return self._apply_copy_decision(choice, now)

    @staticmethod
    def _apply_copy_decision(choice: Decision, now: SimTime) -> Any:
        kind = choice[0]
        if kind == DELIVER:
            return now + float(choice[1])
        if kind == DROP:
            return None
        if kind == CRASH:
            return CRASH_SENDER
        raise ValueError(f"unknown copy decision {choice!r}")

    def _choose_copy(
        self,
        engine: "SimulationEngine",
        src: int,
        dst: int,
        payload: Any,
        key: "DedupKey",
        channel: "Channel",
        now: SimTime,
    ) -> Decision:
        """Subclass hook: return one copy decision tuple."""
        raise NotImplementedError

    def _fairness_delay(self, channel: "Channel") -> float:
        """Delay used for fairness-guard forced deliveries."""
        return 0.1

    # ------------------------------------------------------------------ #
    # failure-detector decisions
    # ------------------------------------------------------------------ #
    def atheta_view(
        self, engine: "SimulationEngine", index: int, now: SimTime
    ) -> Optional[FailureDetectorView]:
        return self._fd_decision(engine.atheta, index, now)

    def apstar_view(
        self, engine: "SimulationEngine", index: int, now: SimTime
    ) -> Optional[FailureDetectorView]:
        return self._fd_decision(engine.apstar, index, now)

    def _fd_decision(
        self, detector: Optional[FailureDetector], index: int, now: SimTime
    ) -> Optional[FailureDetectorView]:
        query = self._fd_queries
        self._fd_queries += 1
        if detector is None:
            return None
        stale_by = self._choose_fd_staleness(query, index, now)
        if stale_by is None or stale_by <= 0:
            return None
        self._decisions.append((FD, query, float(stale_by)))
        return detector.view(index, max(0.0, now - float(stale_by)))

    def _choose_fd_staleness(
        self, query: int, index: int, now: SimTime
    ) -> Optional[float]:
        """Subclass hook: staleness (in time units) for this FD query, or
        ``None`` to pass the query through to the oracle unmodified.

        Staleness is the one perturbation that is *always* admissible: a
        view from ``stale_by`` time units ago is exactly what a detector
        with correspondingly larger detection/learning delays would output,
        so AΘ/AP\\* keep their formal properties on the perturbed run.
        """
        return None


class ReplayController(ScheduleController):
    """Replays a recorded decision trace exactly.

    Copy decisions are consumed in order; once the trace is exhausted (or
    for points a shrink removed), decisions fall back to the channel's own
    RNG draws — deterministic for a given scenario seed, so a truncated
    trace still yields one well-defined execution.  The decisions actually
    taken (replayed + fallback) are re-recorded, which is what makes a
    shrunk counterexample's hash stable when it is serialised back out.
    """

    strategy_name = "replay"

    def __init__(self, decisions: Sequence[Decision],
                 schedule_index: int = 0) -> None:
        self.schedule_index = schedule_index
        self._copy_queue: list[Decision] = []
        self._fd_staleness: dict[int, float] = {}
        for decision in decisions:
            kind = decision[0]
            if kind in (DELIVER, DROP, CRASH):
                self._copy_queue.append(tuple(decision))
            elif kind == FD:
                self._fd_staleness[int(decision[1])] = float(decision[2])
            else:
                raise ValueError(f"unknown decision {decision!r}")
        self._position = 0
        self._fd_queries = 0
        self._taken: list[Decision] = []

    @property
    def decisions(self) -> Sequence[Decision]:
        return self._taken

    def copy_decision(
        self,
        engine: "SimulationEngine",
        src: int,
        dst: int,
        payload: Any,
        key: "DedupKey",
        channel: "Channel",
        now: SimTime,
    ) -> Any:
        if self._position < len(self._copy_queue):
            choice = self._copy_queue[self._position]
            self._position += 1
            self._taken.append(choice)
            return RecordingController._apply_copy_decision(choice, now)
        deliver_time = channel.transmit(key, now)
        if deliver_time is None:
            self._taken.append((DROP,))
        else:
            self._taken.append((DELIVER, deliver_time - now))
        return deliver_time

    def atheta_view(
        self, engine: "SimulationEngine", index: int, now: SimTime
    ) -> Optional[FailureDetectorView]:
        return self._fd_replay(engine.atheta, index, now)

    def apstar_view(
        self, engine: "SimulationEngine", index: int, now: SimTime
    ) -> Optional[FailureDetectorView]:
        return self._fd_replay(engine.apstar, index, now)

    def _fd_replay(
        self, detector: Optional[FailureDetector], index: int, now: SimTime
    ) -> Optional[FailureDetectorView]:
        query = self._fd_queries
        self._fd_queries += 1
        stale_by = self._fd_staleness.get(query)
        if detector is None or stale_by is None:
            return None
        self._taken.append((FD, query, float(stale_by)))
        return detector.view(index, max(0.0, now - stale_by))
