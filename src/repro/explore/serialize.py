"""Counterexample artifacts: replayable JSON for violating schedules.

An artifact bundles everything needed to reproduce a violation on a machine
that only has the repository: the full scenario (reconstructed field by
field — not pickled, so artifacts survive code evolution), the decision
trace (and its shrunk form), the schedule provenance and the violated
properties.  ``repro.explore.explorer.replay_counterexample`` turns one back
into a live run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from ..experiments.config import Scenario
from ..network.delay import DelaySpec
from ..network.loss import LossSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .explorer import Counterexample

#: Bump when the artifact layout changes incompatibly.
SCHEMA_VERSION = 1


def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    """JSON-friendly dict capturing every field needed to rebuild *scenario*.

    Raises :class:`ValueError` for scenarios that cannot be serialised
    faithfully: engine hooks, inline workload objects, and custom
    (callable-backed) loss/delay specs have no stable JSON form.
    """
    if scenario.hooks:
        raise ValueError("scenarios with engine hooks cannot be serialised")
    if scenario.workload is not None and not isinstance(scenario.workload, str):
        raise ValueError(
            "only registered (named) workloads can be serialised; got an "
            "inline workload object"
        )
    for label, spec in (("loss", scenario.loss), ("delay", scenario.delay)):
        if spec.kind == "custom":
            raise ValueError(f"custom {label} specs cannot be serialised")
    return {
        "name": scenario.name,
        "algorithm": scenario.algorithm,
        "n_processes": scenario.n_processes,
        "seed": scenario.seed,
        # Times are floats on the wire (mirroring scenario_from_dict's
        # coercion), so int-specified crash times serialise — and hash, see
        # repro.campaigns.hashing — identically to their float equals.
        "crashes": {str(index): float(time)
                    for index, time in dict(scenario.crashes).items()},
        "loss": {"kind": scenario.loss.kind,
                 "params": dict(scenario.loss.params)},
        "delay": {"kind": scenario.delay.kind,
                  "params": dict(scenario.delay.params)},
        "fairness_bound": scenario.fairness_bound,
        "channel_type": scenario.channel_type,
        "tick_interval": scenario.tick_interval,
        "max_time": scenario.max_time,
        "check_interval": scenario.check_interval,
        "stop_when_all_correct_delivered": scenario.stop_when_all_correct_delivered,
        "stop_when_quiescent": scenario.stop_when_quiescent,
        "drain_grace_period": scenario.drain_grace_period,
        "detector_setup": scenario.detector_setup,
        "fd_policy": scenario.fd_policy.value,
        "fd_detection_delay": scenario.fd_detection_delay,
        "fd_learn_delay": scenario.fd_learn_delay,
        "apstar_detection_delay": scenario.apstar_detection_delay,
        "strict_equality": scenario.strict_equality,
        "retire_enabled": scenario.retire_enabled,
        "eager_first_broadcast": scenario.eager_first_broadcast,
        "majority_threshold": scenario.majority_threshold,
        "workload": scenario.workload,
        "trace_enabled": scenario.trace_enabled,
        "trace_ticks": scenario.trace_ticks,
        "explore_strategy": scenario.explore_strategy,
        "explore_index": scenario.explore_index,
        "metadata": dict(scenario.metadata),
        # Backends are bit-identical by contract, so the default engine is
        # omitted: campaign cell hashes (repro.campaigns.hashing) of every
        # pre-existing scenario stay stable, while an explicit non-default
        # choice still round-trips (and hashes as its own cell, which is
        # the conservative thing to do for a dispatch-strategy knob).
        **({"engine": scenario.engine}
           if scenario.engine != "reference" else {}),
    }


def scenario_from_dict(data: dict[str, Any]) -> Scenario:
    """Rebuild a :class:`Scenario` written by :func:`scenario_to_dict`.

    Artifacts written before the ``explore_*`` fields were serialised (they
    were added later, for the campaign cell hash) load with the defaults.
    """
    fields = dict(data)
    fields.setdefault("explore_strategy", None)
    fields.setdefault("explore_index", 0)
    fields.setdefault("engine", "reference")
    fields["crashes"] = {
        int(index): float(time)
        for index, time in dict(fields.get("crashes", {})).items()
    }
    loss = fields.get("loss", {"kind": "none", "params": {}})
    fields["loss"] = LossSpec(kind=loss["kind"], params=dict(loss["params"]))
    delay = fields.get("delay", {"kind": "fixed", "params": {}})
    fields["delay"] = DelaySpec(kind=delay["kind"], params=dict(delay["params"]))
    return Scenario(**fields)


def decisions_to_lists(decisions: Sequence[Sequence[Any]]) -> list[list[Any]]:
    """Decision tuples as JSON arrays."""
    return [list(decision) for decision in decisions]


def decisions_from_lists(data: Sequence[Sequence[Any]]) -> tuple[tuple, ...]:
    """JSON arrays back to decision tuples."""
    return tuple(tuple(decision) for decision in data)


def counterexample_to_dict(counterexample: "Counterexample") -> dict[str, Any]:
    """The artifact schema for one violating schedule."""
    return {
        "schema_version": SCHEMA_VERSION,
        "scenario": scenario_to_dict(counterexample.scenario),
        "strategy": counterexample.strategy,
        "schedule_index": counterexample.schedule_index,
        "seed": counterexample.seed,
        "schedule_hash": counterexample.schedule_hash,
        "violations": list(counterexample.violations),
        "signature": list(counterexample.signature),
        "decisions": decisions_to_lists(counterexample.decisions),
        "shrunk_decisions": (
            None if counterexample.shrunk_decisions is None
            else decisions_to_lists(counterexample.shrunk_decisions)
        ),
        "shrunk_hash": counterexample.shrunk_hash,
        "shrunk_verified": counterexample.shrunk_verified,
        "shrink_tests": counterexample.shrink_tests,
    }


def write_counterexample(counterexample: "Counterexample",
                         directory: str | Path) -> Path:
    """Write one artifact into *directory* (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        f"counterexample_{counterexample.strategy}_"
        f"{counterexample.schedule_index}_{counterexample.schedule_hash}.json"
    )
    path.write_text(
        json.dumps(counterexample_to_dict(counterexample), indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_counterexample(path: str | Path) -> dict[str, Any]:
    """Load an artifact, rebuilding the scenario and decision tuples.

    The returned mapping mirrors the file but with ``scenario`` as a live
    :class:`Scenario` and the decision lists as tuples.
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    data["scenario"] = scenario_from_dict(data["scenario"])
    data["decisions"] = decisions_from_lists(data["decisions"])
    if data.get("shrunk_decisions") is not None:
        data["shrunk_decisions"] = decisions_from_lists(data["shrunk_decisions"])
    return data
