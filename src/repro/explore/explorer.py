"""The schedule explorer: fan controlled schedules out, check, shrink.

:class:`Explorer` drives the existing engine through a strategy's schedule
space (``explore_index = 0 .. budget-1``), executing over
:class:`~repro.experiments.batch.BatchRunner` (``parallel=N`` uses the
process pool), deduplicating executions by decision-trace hash, checking
:func:`~repro.analysis.properties.check_urb_properties` on every run, and
turning each unique violating schedule into a replayable, ddmin-shrunk
:class:`Counterexample`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Optional, Sequence

from .. import obs
from ..analysis.properties import (
    UrbVerdict,
    check_urb_properties,
    violation_signature,
)
from ..experiments.batch import BatchRunner
from ..experiments.config import Scenario
from ..experiments.runner import build_engine
from ..registry import strategies
from ..simulation.engine import SimulationResult, hash_decisions
from .controller import Decision, ReplayController
from .shrink import DEFAULT_MAX_TESTS, ddmin

#: ``progress(done, total, item)`` forwarded to the batch runner.
ProgressCallback = Callable[[int, int, object], None]

#: The three checked properties, in report order.
PROPERTY_NAMES = ("Validity", "Uniform Agreement", "Uniform Integrity")


@dataclass
class Counterexample:
    """One unique violating schedule, optionally shrunk to a minimal repro."""

    scenario: Scenario
    strategy: str
    schedule_index: int
    seed: int
    schedule_hash: str
    decisions: tuple[Decision, ...]
    violations: tuple[str, ...]
    signature: tuple[str, ...]
    shrunk_decisions: Optional[tuple[Decision, ...]] = None
    shrunk_hash: Optional[str] = None
    shrunk_verified: bool = False
    shrink_tests: int = 0
    artifact_path: Optional[Path] = None

    def describe(self) -> str:
        """One-line summary used by the CLI and reports."""
        shrunk = (
            f", shrunk {len(self.decisions)}->{len(self.shrunk_decisions)} "
            f"decisions ({'verified' if self.shrunk_verified else 'UNVERIFIED'})"
            if self.shrunk_decisions is not None else ""
        )
        return (
            f"schedule {self.schedule_hash} ({self.strategy}"
            f"#{self.schedule_index}, seed={self.seed}): "
            f"violates {', '.join(self.signature)}{shrunk}"
        )


@dataclass(frozen=True)
class ExplorationReport:
    """Aggregate outcome of one exploration session."""

    scenario: Scenario
    strategy: str
    budget: int
    schedules_run: int
    unique_schedules: int
    duplicate_schedules: int
    property_violations: dict[str, int]
    counterexamples: tuple[Counterexample, ...]
    failures: tuple[str, ...]
    elapsed_seconds: float
    parallel: int
    shrink_replays: int = 0

    @property
    def ok(self) -> bool:
        """No violations and every scheduled run executed."""
        return not self.counterexamples and not self.failures

    @property
    def schedules_per_sec(self) -> float:
        """Exploration throughput (the benchmarked quantity)."""
        if self.elapsed_seconds <= 0:
            return float(self.schedules_run)
        return self.schedules_run / self.elapsed_seconds

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"explore({self.strategy}) on {self.scenario.describe()}",
            f"  {self.schedules_run}/{self.budget} schedules run "
            f"({self.unique_schedules} unique, "
            f"{self.duplicate_schedules} duplicates), "
            f"parallel={self.parallel}, "
            f"{self.schedules_per_sec:.1f} schedules/s",
        ]
        # Standard properties first (in report order), then anything extra a
        # future verdict might carry.
        names = list(PROPERTY_NAMES) + [
            name for name in self.property_violations
            if name not in PROPERTY_NAMES
        ]
        for name in names:
            count = self.property_violations.get(name, 0)
            status = "OK" if count == 0 else f"{count} violating schedule(s)"
            lines.append(f"  {name}: {status}")
        for counterexample in self.counterexamples:
            lines.append(f"  COUNTEREXAMPLE {counterexample.describe()}")
        for failure in self.failures:
            lines.append(f"  FAILED {failure}")
        return "\n".join(lines)


def replay_decisions(
    scenario: Scenario, decisions: Sequence[Decision]
) -> tuple[SimulationResult, UrbVerdict]:
    """Re-execute *scenario* under a recorded decision trace.

    The scenario's own ``explore_strategy`` is cleared (the trace, not the
    strategy, drives the run) and points past the end of the trace fall back
    to the seeded channel models, so partial traces replay deterministically.
    """
    clean = scenario
    if scenario.explore_strategy is not None:
        clean = replace(scenario, explore_strategy=None, explore_index=0)
    controller = ReplayController(tuple(decisions))
    simulation = build_engine(clean, controller=controller).run()
    return simulation, check_urb_properties(simulation)


def replay_counterexample(
    path: str | Path, *, shrunk: bool = True
) -> tuple[SimulationResult, UrbVerdict]:
    """Replay a serialised counterexample artifact (shrunk trace when
    available unless *shrunk* is false)."""
    from .serialize import load_counterexample

    data = load_counterexample(path)
    decisions = data["decisions"]
    if shrunk and data.get("shrunk_decisions") is not None:
        decisions = data["shrunk_decisions"]
    return replay_decisions(data["scenario"], decisions)


@dataclass
class Explorer:
    """Adversarial schedule search over one base scenario.

    Parameters
    ----------
    scenario:
        The configuration under test.  Its ``explore_*`` fields are
        overwritten per schedule.
    strategy:
        Name of a registered exploration strategy.
    budget:
        Maximum schedules to run (capped by the strategy's schedule count
        when it is enumerative).
    parallel:
        Worker processes for the batch fan-out (``1`` = in-process).
    shrink:
        Whether violating schedules are ddmin-minimised.
    max_shrink_tests:
        Replay budget per counterexample during shrinking.
    artifacts_dir:
        When set, every counterexample is serialised there as JSON.
    store:
        When set, every counterexample is additionally persisted as a
        first-class artifact of a :class:`~repro.campaigns.ResultStore`
        (anything exposing ``put_counterexample(counterexample)`` works).
    worker_plugins:
        Modules each worker imports first (third-party registrations).
    """

    scenario: Scenario
    strategy: str = "random_walk"
    budget: int = 100
    parallel: int = 1
    shrink: bool = True
    max_shrink_tests: int = DEFAULT_MAX_TESTS
    artifacts_dir: Optional[Path] = None
    store: Optional[object] = None
    worker_plugins: Sequence[str] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("budget must be positive")
        if not self.scenario.trace_enabled:
            # Every URB property checker reads the trace; with recording
            # disabled all three verdicts hold vacuously (checked=0) and the
            # report would claim "OK" without having checked anything.
            raise ValueError(
                "exploration requires trace_enabled=True: the URB property "
                "checkers are trace-driven and would pass vacuously"
            )
        strategies.validate(self.strategy)

    # ------------------------------------------------------------------ #
    def schedule_budget(self) -> int:
        """The effective number of schedules (budget ∩ strategy space)."""
        spec = strategies.get(self.strategy)
        if spec.schedule_count is not None:
            space = spec.schedule_count(self.scenario)
            if space == 0:
                # Surface the strategy's own explanation of why the space is
                # empty (e.g. crash_points on a detector-using algorithm).
                spec.factory(self.scenario, 0)
                raise ValueError(
                    f"strategy {self.strategy!r} has no schedules for this "
                    "scenario"
                )
            return min(self.budget, space)
        return self.budget

    def run(self, progress: Optional[ProgressCallback] = None) -> ExplorationReport:
        """Explore and return the aggregated report."""
        started = time.perf_counter()
        total = self.schedule_budget()
        variants = [
            replace(self.scenario, explore_strategy=self.strategy,
                    explore_index=index)
            for index in range(total)
        ]
        runner = BatchRunner(
            parallel=self.parallel,
            progress=progress,
            worker_plugins=tuple(self.worker_plugins),
        )
        suite = runner.run(variants)

        seen_hashes: set[str] = set()
        duplicates = 0
        property_violations: dict[str, int] = {name: 0 for name in PROPERTY_NAMES}
        counterexamples: list[Counterexample] = []
        shrink_replays = 0
        for result in suite.results:
            provenance = result.simulation.schedule
            assert provenance is not None
            if provenance.schedule_hash in seen_hashes:
                duplicates += 1
                continue
            seen_hashes.add(provenance.schedule_hash)
            for verdict in result.verdict.verdicts():
                if not verdict.holds:
                    property_violations[verdict.name] = (
                        property_violations.get(verdict.name, 0) + 1
                    )
            if not result.verdict.all_hold:
                counterexamples.append(Counterexample(
                    scenario=result.scenario,
                    strategy=provenance.strategy,
                    schedule_index=provenance.schedule_index,
                    seed=provenance.seed,
                    schedule_hash=provenance.schedule_hash,
                    decisions=tuple(provenance.decisions),
                    violations=tuple(result.verdict.violations()),
                    signature=violation_signature(result.verdict),
                ))

        if self.shrink:
            for counterexample in counterexamples:
                shrink_replays += self._shrink(counterexample)

        if self.artifacts_dir is not None:
            from .serialize import write_counterexample

            for counterexample in counterexamples:
                counterexample.artifact_path = write_counterexample(
                    counterexample, self.artifacts_dir
                )

        if self.store is not None:
            for counterexample in counterexamples:
                self.store.put_counterexample(counterexample)

        report = ExplorationReport(
            scenario=self.scenario,
            strategy=self.strategy,
            budget=total,
            schedules_run=len(suite.results),
            unique_schedules=len(seen_hashes),
            duplicate_schedules=duplicates,
            property_violations=property_violations,
            counterexamples=tuple(counterexamples),
            failures=tuple(f.describe() for f in suite.failures),
            elapsed_seconds=time.perf_counter() - started,
            parallel=self.parallel,
            shrink_replays=shrink_replays,
        )
        self._record_obs(report)
        return report

    def _record_obs(self, report: ExplorationReport) -> None:
        """Mirror one exploration into the obs registry and timeline."""
        if obs.enabled():
            schedules = obs.counter("repro_explore_schedules_total",
                                    "Explored schedules by uniqueness.",
                                    ("kind",))
            schedules.inc(report.unique_schedules, kind="unique")
            schedules.inc(report.duplicate_schedules, kind="duplicate")
            violations = obs.counter("repro_explore_violations_total",
                                     "Property violations found while "
                                     "exploring.", ("property",))
            for name, count in sorted(report.property_violations.items()):
                violations.inc(count, property=name)
            obs.gauge("repro_explore_schedules_per_sec",
                      "Throughput of the last exploration.").set(
                report.schedules_per_sec)
            obs.gauge("repro_explore_dedup_ratio",
                      "Unique/run ratio of the last exploration.").set(
                report.unique_schedules / report.schedules_run
                if report.schedules_run else 1.0)
        if obs.timeline_active():
            obs.emit("explore.report", strategy=report.strategy,
                     schedules_run=report.schedules_run,
                     unique=report.unique_schedules,
                     duplicates=report.duplicate_schedules,
                     violations=sum(report.property_violations.values()),
                     counterexamples=len(report.counterexamples),
                     elapsed_seconds=report.elapsed_seconds)

    # ------------------------------------------------------------------ #
    def _shrink(self, counterexample: Counterexample) -> int:
        """ddmin *counterexample* in place; returns the replays spent."""
        signature = counterexample.signature

        def failing(candidate: list[Decision]) -> bool:
            _, verdict = replay_decisions(counterexample.scenario, candidate)
            return violation_signature(verdict) == signature

        # Sanity: the recorded trace must reproduce its own violation before
        # any reduction is trusted (it does by construction — replay is the
        # same deterministic engine — but a cheap guard beats a wrong repro).
        if not failing(list(counterexample.decisions)):
            counterexample.shrink_tests = 1
            return 1
        minimal, tests = ddmin(
            list(counterexample.decisions), failing,
            max_tests=self.max_shrink_tests,
        )
        counterexample.shrunk_decisions = tuple(minimal)
        counterexample.shrunk_hash = hash_decisions(minimal)
        counterexample.shrunk_verified = failing(minimal)
        counterexample.shrink_tests = tests + 2
        return tests + 2


def explore(
    scenario: Scenario,
    strategy: str = "random_walk",
    *,
    budget: int = 100,
    parallel: int = 1,
    shrink: bool = True,
    artifacts_dir: Optional[str | Path] = None,
    store: Optional[object] = None,
    worker_plugins: Sequence[str] = (),
    progress: Optional[ProgressCallback] = None,
) -> ExplorationReport:
    """One-call convenience wrapper around :class:`Explorer`."""
    explorer = Explorer(
        scenario=scenario,
        strategy=strategy,
        budget=budget,
        parallel=parallel,
        shrink=shrink,
        artifacts_dir=None if artifacts_dir is None else Path(artifacts_dir),
        store=store,
        worker_plugins=worker_plugins,
    )
    return explorer.run(progress=progress)
