"""Built-in schedule-exploration strategies.

Each strategy is a factory ``(scenario, schedule_index) -> controller``
registered in :data:`repro.registry.strategies`; schedule *index* selects one
schedule out of the strategy's (seeded or enumerated) space, so the explorer
simply fans ``explore_index = 0 .. budget-1`` out over the batch runner.

Soundness
---------
Strategies only take decisions that keep the execution *admissible* for the
paper's system model, so a violation found by the explorer is a protocol
bug, never an artefact of an impossible adversary:

* drops are fairness-bounded per ``(channel, payload)`` — every explored
  channel behaves as a fair lossy channel (§II);
* delays are finite and bounded by the scenario's delay lattice — admissible
  in an asynchronous system regardless of the configured delay distribution;
* injected crashes respect the algorithm's declared assumptions
  (``requires_majority``) and are disabled for algorithms that consult
  failure detectors, whose oracles are built from the *declared* crash
  schedule and would silently become inaccurate;
* failure-detector perturbation is limited to bounded *staleness*, which is
  indistinguishable from a detector with larger detection/learning delays
  and therefore preserves the AΘ/AP\\* properties.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from ..network.fair_lossy import DEFAULT_FAIRNESS_BOUND
from ..registry import algorithms, register_strategy
from ..simulation.rng import derive_seed
from .controller import CRASH, DELIVER, DROP, Decision, RecordingController

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.config import Scenario
    from ..network.channel import Channel
    from ..network.loss import DedupKey
    from ..simulation.engine import SimulationEngine
    from ..simulation.simtime import SimTime

__all__ = [
    "CrashPointController",
    "DelayBoundController",
    "PctController",
    "RandomWalkController",
    "crash_budget",
    "delay_lattice",
]


def delay_lattice(scenario: "Scenario", points: int = 4) -> tuple[float, ...]:
    """Quantised delay choices derived from the scenario's delay spec.

    Strategies pick delays from this lattice instead of sampling the spec's
    distribution: the values stay within (or near) the configured range, so
    explored delays remain plausible for the scenario while covering its
    extremes deterministically.
    """
    spec = scenario.delay
    params = spec.params
    if spec.kind == "fixed":
        return (float(params.get("delay", 1.0)),)
    if spec.kind == "uniform":
        low = float(params.get("low", 0.1))
        high = float(params.get("high", 1.0))
        if points < 2 or high <= low:
            return (low,)
        step = (high - low) / (points - 1)
        return tuple(low + i * step for i in range(points))
    if spec.kind == "exponential":
        mean = float(params.get("mean", 0.5))
        cap = params.get("cap")
        top = float(cap) if cap is not None else 4.0 * mean
        return (0.25 * mean, mean, 2.0 * mean, top)
    # Custom specs expose no parameters; fall back to a small generic lattice.
    return (0.05, 0.25, 1.0)


def crash_budget(scenario: "Scenario") -> int:
    """How many *extra* crashes a strategy may inject into *scenario*.

    Zero for algorithms that consult failure detectors (their oracles are
    built from the declared crash schedule; an injected crash the oracle
    does not know about would make the detectors inaccurate and the run
    inadmissible).  Otherwise, enough head-room is left to respect the
    algorithm's ``requires_majority`` assumption and the model's "at least
    one correct process".
    """
    spec = algorithms.get(scenario.algorithm)
    if spec.uses_failure_detectors:
        return 0
    n = scenario.n_processes
    allowed = (n - 1) // 2 if spec.requires_majority else n - 1
    return max(0, allowed - len(scenario.crashes))


def _strategy_rng(scenario: "Scenario", strategy: str,
                  schedule_index: int) -> random.Random:
    """Deterministic RNG for one (scenario seed, strategy, index) schedule."""
    return random.Random(
        derive_seed(scenario.seed, f"explore:{strategy}:{schedule_index}")
    )


def _sound_fairness_bound(scenario: "Scenario") -> int:
    # A scenario may disable the channel-level guard; strategies still need
    # one for soundness, so fall back to the library default.
    bound = scenario.fairness_bound
    return bound if bound is not None else DEFAULT_FAIRNESS_BOUND


# --------------------------------------------------------------------------- #
# seeded strategies
# --------------------------------------------------------------------------- #
class RandomWalkController(RecordingController):
    """Seeded random walk over drop / delay / crash / FD-staleness choices.

    Tunables (``scenario.metadata``):

    * ``explore_drop_probability`` (default ``0.25``)
    * ``explore_crash_probability`` (default ``0.05``; only spent while the
      scenario's :func:`crash_budget` allows)
    * ``explore_fd_stale_probability`` (default ``0.0``; opt-in)
    * ``explore_fd_stale_by`` (default: the scenario's FD detection delay)
    """

    def __init__(self, scenario: "Scenario", schedule_index: int) -> None:
        super().__init__(
            "random_walk", schedule_index,
            fairness_bound=_sound_fairness_bound(scenario),
        )
        metadata = scenario.metadata
        self._rng = _strategy_rng(scenario, "random_walk", schedule_index)
        self._drop_probability = float(
            metadata.get("explore_drop_probability", 0.25)
        )
        self._crash_probability = float(
            metadata.get("explore_crash_probability", 0.05)
        )
        self._fd_stale_probability = float(
            metadata.get("explore_fd_stale_probability", 0.0)
        )
        self._fd_stale_by = float(
            metadata.get("explore_fd_stale_by", scenario.fd_detection_delay)
        )
        self._lattice = delay_lattice(scenario)
        self._crash_budget = crash_budget(scenario)
        self._scenario_crashes = frozenset(scenario.crashes)

    def _choose_copy(
        self,
        engine: "SimulationEngine",
        src: int,
        dst: int,
        payload: object,
        key: "DedupKey",
        channel: "Channel",
        now: "SimTime",
    ) -> Decision:
        rng = self._rng
        if (
            self._crash_budget > 0
            and self._crash_probability > 0
            and rng.random() < self._crash_probability
        ):
            if src not in self._scenario_crashes:
                # Crashing an already-declared-faulty process early does not
                # enlarge the run's faulty set, so it costs no budget.
                self._crash_budget -= 1
            return (CRASH,)
        if rng.random() < self._drop_probability:
            return (DROP,)
        return (DELIVER, rng.choice(self._lattice))

    def _fairness_delay(self, channel: "Channel") -> float:
        return self._lattice[0]

    def _choose_fd_staleness(
        self, query: int, index: int, now: "SimTime"
    ) -> Optional[float]:
        if self._fd_stale_probability <= 0:
            return None
        if self._rng.random() < self._fd_stale_probability:
            return self._fd_stale_by
        return None


class PctController(RecordingController):
    """PCT-style priority scheduling of message copies.

    Every directed channel gets a random priority; a copy's delay grows with
    its channel's priority rank, so low-priority channels consistently
    deliver later — the delay-space analogue of PCT's priority-based
    scheduler.  At ``d - 1`` random change points (``d`` =
    ``explore_pct_depth``, default 3) the priorities are reshuffled, which is
    what lets the strategy hit bugs requiring a small number of specific
    ordering inversions.  PCT schedules never drop copies or crash
    processes: they explore pure message reorderings.
    """

    def __init__(self, scenario: "Scenario", schedule_index: int) -> None:
        super().__init__("pct", schedule_index, fairness_bound=None)
        metadata = scenario.metadata
        self._rng = _strategy_rng(scenario, "pct", schedule_index)
        depth = int(metadata.get("explore_pct_depth", 3))
        if depth < 1:
            raise ValueError("explore_pct_depth must be >= 1")
        horizon = int(metadata.get("explore_pct_horizon", 1000))
        self._n = scenario.n_processes
        lattice = delay_lattice(scenario)
        low, high = lattice[0], lattice[-1]
        if high <= low:
            # Degenerate (fixed-delay) lattice: open a span around it so
            # priorities can still express an ordering.
            high = low * 1.5 + 1e-3
        self._low, self._span = low, high - low
        self._change_points = frozenset(
            self._rng.sample(range(1, max(2, horizon)), min(depth - 1, horizon - 1))
        )
        self._copy_points = 0
        self._priorities: dict[tuple[int, int], int] = {}
        self._shuffle_priorities()

    def _shuffle_priorities(self) -> None:
        pairs = [(s, d) for s in range(self._n) for d in range(self._n)]
        self._rng.shuffle(pairs)
        self._priorities = {pair: rank for rank, pair in enumerate(pairs)}

    def _choose_copy(
        self,
        engine: "SimulationEngine",
        src: int,
        dst: int,
        payload: object,
        key: "DedupKey",
        channel: "Channel",
        now: "SimTime",
    ) -> Decision:
        point = self._copy_points
        self._copy_points = point + 1
        if point in self._change_points:
            self._shuffle_priorities()
        rank = self._priorities[(src, dst)]
        n_pairs = self._n * self._n
        delay = self._low + self._span * (rank + 1) / n_pairs
        return (DELIVER, delay)


# --------------------------------------------------------------------------- #
# enumerative strategies (small configs)
# --------------------------------------------------------------------------- #
def _enum_choices(scenario: "Scenario") -> tuple[float, ...]:
    lattice = delay_lattice(scenario)
    choices = int(scenario.metadata.get("explore_enum_choices", 2))
    if choices < 1:
        raise ValueError("explore_enum_choices must be >= 1")
    if choices >= len(lattice):
        return lattice
    if choices == 1:
        return (lattice[0],)
    step = (len(lattice) - 1) / (choices - 1)
    return tuple(lattice[round(i * step)] for i in range(choices))


def delay_bound_schedule_count(scenario: "Scenario") -> int:
    """Size of the ``delay_bound`` schedule space for *scenario*."""
    points = int(scenario.metadata.get("explore_enum_points", 6))
    return max(1, len(_enum_choices(scenario)) ** max(0, points))


class DelayBoundController(RecordingController):
    """Exhaustive delay enumeration over the first *K* transmission points.

    The first ``explore_enum_points`` (default 6) copies each take one of
    ``explore_enum_choices`` (default 2) lattice delays; ``schedule_index``
    is decoded as a base-``choices`` numeral selecting one combination.
    Later copies take the smallest lattice delay, keeping the tail
    deterministic.  With defaults this is a complete search of ``2^6``
    prefix orderings — model checking in miniature for small configs.
    """

    def __init__(self, scenario: "Scenario", schedule_index: int) -> None:
        super().__init__("delay_bound", schedule_index, fairness_bound=None)
        self._choices = _enum_choices(scenario)
        self._points = int(scenario.metadata.get("explore_enum_points", 6))
        count = delay_bound_schedule_count(scenario)
        if not (0 <= schedule_index < count):
            raise ValueError(
                f"schedule_index {schedule_index} out of range for "
                f"{count} delay_bound schedules"
            )
        digits: list[int] = []
        base = len(self._choices)
        remaining = schedule_index
        for _ in range(self._points):
            digits.append(remaining % base)
            remaining //= base
        self._digits = digits
        self._copy_points = 0

    def _choose_copy(
        self,
        engine: "SimulationEngine",
        src: int,
        dst: int,
        payload: object,
        key: "DedupKey",
        channel: "Channel",
        now: "SimTime",
    ) -> Decision:
        point = self._copy_points
        self._copy_points = point + 1
        if point < self._points:
            return (DELIVER, self._choices[self._digits[point]])
        return (DELIVER, self._choices[0])


def crash_point_schedule_count(scenario: "Scenario") -> int:
    """Size of the ``crash_points`` schedule space for *scenario*."""
    if crash_budget(scenario) < 1:
        return 0
    steps = int(scenario.metadata.get("explore_crash_steps", 20))
    eligible = [
        i for i in range(scenario.n_processes) if i not in scenario.crashes
    ]
    return len(eligible) * max(1, steps)


class CrashPointController(RecordingController):
    """Enumerates single-crash schedules: victim × transmission step.

    Schedule ``index`` crashes process ``eligible[index // steps]`` just
    before its ``index % steps``-th transmission (``steps`` =
    ``explore_crash_steps``, default 20), covering crashes in the middle of
    a broadcast — the adversarial timing the paper's uniformity arguments
    hinge on.  Loss and delay are left to the channels' own (seeded) models,
    so the enumeration isolates the crash-timing dimension.
    """

    def __init__(self, scenario: "Scenario", schedule_index: int) -> None:
        super().__init__("crash_points", schedule_index, fairness_bound=None)
        count = crash_point_schedule_count(scenario)
        if count == 0:
            raise ValueError(
                "crash_points requires room for one injected crash: a "
                "detector-free algorithm whose assumptions allow another "
                "faulty process (see repro.explore.strategies.crash_budget)"
            )
        if not (0 <= schedule_index < count):
            raise ValueError(
                f"schedule_index {schedule_index} out of range for "
                f"{count} crash_points schedules"
            )
        steps = max(1, int(scenario.metadata.get("explore_crash_steps", 20)))
        eligible = [
            i for i in range(scenario.n_processes) if i not in scenario.crashes
        ]
        self._victim = eligible[schedule_index // steps]
        self._step = schedule_index % steps
        self._victim_sends = 0
        self._crashed = False

    def _choose_copy(
        self,
        engine: "SimulationEngine",
        src: int,
        dst: int,
        payload: object,
        key: "DedupKey",
        channel: "Channel",
        now: "SimTime",
    ) -> Decision:
        if src == self._victim and not self._crashed:
            point = self._victim_sends
            self._victim_sends = point + 1
            if point == self._step:
                self._crashed = True
                return (CRASH,)
        deliver_time = channel.transmit(key, now)
        if deliver_time is None:
            return (DROP,)
        return (DELIVER, deliver_time - now)


# --------------------------------------------------------------------------- #
# registrations
# --------------------------------------------------------------------------- #
@register_strategy(
    "random_walk",
    description="Seeded random walk over drop/delay/crash/FD-staleness choices",
)
def _build_random_walk(scenario: "Scenario",
                       schedule_index: int) -> RandomWalkController:
    return RandomWalkController(scenario, schedule_index)


@register_strategy(
    "pct",
    description="PCT-style channel priorities with d-1 change points "
                "(pure message reordering)",
)
def _build_pct(scenario: "Scenario", schedule_index: int) -> PctController:
    return PctController(scenario, schedule_index)


@register_strategy(
    "delay_bound",
    description="Exhaustive delay enumeration over the first K transmissions "
                "(small configs)",
    enumerative=True,
    schedule_count=delay_bound_schedule_count,
)
def _build_delay_bound(scenario: "Scenario",
                       schedule_index: int) -> DelayBoundController:
    return DelayBoundController(scenario, schedule_index)


@register_strategy(
    "crash_points",
    description="Enumerates one injected crash per schedule: victim x "
                "transmission step (detector-free algorithms)",
    enumerative=True,
    schedule_count=crash_point_schedule_count,
    # Loss/delay delegate to the channels, so the scenario's own loss spec
    # applies (unlike the decision-driven strategies, which decide every
    # copy's fate themselves).
    channel_loss=True,
)
def _build_crash_points(scenario: "Scenario",
                        schedule_index: int) -> CrashPointController:
    return CrashPointController(scenario, schedule_index)
