"""Adversarial schedule exploration — search the schedule space for URB
property violations.

The repository's experiments sample one RNG-driven schedule per seed; this
package *searches* the space of admissible schedules instead.  A
:class:`~repro.explore.controller.ScheduleController` is consulted by the
engine at its nondeterminism points (per-copy loss and delay, mid-broadcast
crash timing, failure-detector query outcomes); pluggable strategies
(:mod:`repro.explore.strategies`, registered in
:data:`repro.registry.strategies`) generate controllers per schedule index;
the :class:`~repro.explore.explorer.Explorer` fans them out over the batch
runner, checks the three URB properties on every execution, deduplicates by
decision-trace hash, and shrinks any violation to a minimal, replayable
counterexample (ddmin).

Quick use::

    from repro import Scenario
    from repro.explore import explore

    report = explore(Scenario(algorithm="algorithm1", n_processes=4,
                              max_time=120.0), strategy="random_walk",
                     budget=200, parallel=4)
    assert report.ok, report.describe()

or from the command line: ``repro-urb explore --algorithm algorithm1
--strategy random_walk --budget 200``.
"""

from .controller import (
    CRASH,
    DELIVER,
    DROP,
    FD,
    Decision,
    DefaultScheduleController,
    RecordingController,
    ReplayController,
    ScheduleController,
    hash_decisions,
)
from .explorer import (
    Counterexample,
    ExplorationReport,
    Explorer,
    explore,
    replay_counterexample,
    replay_decisions,
)
from .serialize import (
    counterexample_to_dict,
    load_counterexample,
    scenario_from_dict,
    scenario_to_dict,
    write_counterexample,
)
from .shrink import ddmin
from .strategies import crash_budget, delay_lattice

__all__ = [
    "CRASH",
    "Counterexample",
    "DELIVER",
    "DROP",
    "Decision",
    "DefaultScheduleController",
    "ExplorationReport",
    "Explorer",
    "FD",
    "RecordingController",
    "ReplayController",
    "ScheduleController",
    "counterexample_to_dict",
    "crash_budget",
    "ddmin",
    "delay_lattice",
    "explore",
    "hash_decisions",
    "load_counterexample",
    "replay_counterexample",
    "replay_decisions",
    "scenario_from_dict",
    "scenario_to_dict",
    "write_counterexample",
]
