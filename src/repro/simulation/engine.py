"""The discrete-event simulation engine.

:class:`SimulationEngine` wires together the pieces of one run — processes,
anonymous network, crash schedule, failure-detector oracles, workload,
tracing and metrics — and drives the event loop until the horizon, an
early-stop predicate, or an explicit stop request.

The engine is deliberately protocol-agnostic: protocols only see their
:class:`~repro.simulation.environment.ProcessEnvironment`, and the engine
only calls the three :class:`~repro.core.interfaces.BroadcastProtocol`
entry points (``urb_broadcast``, ``on_receive``, ``on_tick``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

from .. import obs
from ..core.delivery import DeliveryLog
from ..core.interfaces import BroadcastProtocol
from ..core.messages import TaggedMessage, payload_kind
from ..failure_detectors.base import FailureDetector, FailureDetectorView
from ..network.network import Network
from .config import SimulationConfig
from .environment import ProcessEnvironment
from .events import BroadcastCommand, EventKind, EventStats
from .faults import CrashSchedule
from .hooks import EngineHook
from .metrics import MetricsCollector, MetricsSummary
from .rng import RandomSource
from .scheduler import EventQueue, QueuedEvent
from .simtime import SimTime
from .tracing import TraceCategory, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..explore.controller import ScheduleController

#: Sentinel a :class:`~repro.explore.controller.ScheduleController` returns
#: from ``copy_decision`` to crash the *sender* at that transmission point
#: (the remaining copies of the broadcast are never handed to their channels,
#: modelling a crash in the middle of the broadcast primitive).
CRASH_SENDER: Any = object()


def hash_decisions(decisions: Sequence[Sequence[Any]]) -> str:
    """Canonical hash of a schedule's decision trace.

    Two executions are *the same schedule* exactly when their decision traces
    hash equally; the explorer deduplicates on this value and counterexample
    artifacts carry it so a replay can be checked against its origin.
    """
    canonical = json.dumps(
        [list(decision) for decision in decisions], separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, slots=True)
class ScheduleProvenance:
    """Where a run's schedule came from — enough to replay it exactly.

    Every :class:`SimulationResult` carries one.  For ordinary RNG-driven
    runs the strategy is ``"default"`` and the decision trace is empty: the
    run is reproduced by its scenario fields plus *seed* alone.  For runs
    driven by a :class:`~repro.explore.controller.ScheduleController` the
    trace holds every decision the controller took, so the run can be
    replayed bit-identically from the artifact even when the strategy code
    changes.
    """

    strategy: str
    seed: int
    schedule_index: int
    decision_count: int
    schedule_hash: str
    decisions: tuple = ()

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly summary (the decision list itself is serialised
        separately by counterexample artifacts)."""
        return {
            "strategy": self.strategy,
            "seed": self.seed,
            "schedule_index": self.schedule_index,
            "decision_count": self.decision_count,
            "schedule_hash": self.schedule_hash,
        }

#: Factory building the protocol process for index ``i`` given its
#: environment.  The index is provided so that *builders* (not the processes
#: themselves) can construct identified baselines; anonymous protocols must
#: ignore it.
ProcessFactory = Callable[[int, ProcessEnvironment], BroadcastProtocol]


@dataclass(slots=True)
class SimulationResult:
    """Everything observable about a finished run."""

    config: SimulationConfig
    crash_schedule: CrashSchedule
    trace: TraceRecorder
    metrics: MetricsCollector
    delivery_logs: dict[int, DeliveryLog]
    processes: dict[int, BroadcastProtocol]
    expected_contents: tuple[Any, ...]
    final_time: SimTime
    stop_reason: str
    event_stats: EventStats = field(default_factory=EventStats)
    schedule: Optional[ScheduleProvenance] = None

    @property
    def n_processes(self) -> int:
        """Number of processes in the run."""
        return self.config.n_processes

    def correct_indices(self) -> tuple[int, ...]:
        """Indices of the correct processes."""
        return self.crash_schedule.correct_indices()

    def deliveries_of(self, index: int) -> list[Any]:
        """Application contents delivered by process *index*, in order."""
        return self.delivery_logs[index].contents()

    def metrics_summary(self) -> MetricsSummary:
        """Aggregate metrics of the run."""
        return self.metrics.summary()

    def describe(self) -> str:
        """One-line summary used by the CLI and examples."""
        summary = self.metrics_summary()
        return (
            f"run(n={self.n_processes}, crashes={self.crash_schedule.n_faulty}, "
            f"deliveries={summary.deliveries}, sends={summary.total_sends}, "
            f"finished@{self.final_time:g}, reason={self.stop_reason})"
        )


class SimulationEngine:
    """Drives one simulated run of an anonymous broadcast protocol.

    Observability: the engine records aggregate run counters into the
    :mod:`repro.obs` registry **once per run**, at the end of
    :meth:`run` — never inside the dispatch loop — so the disabled cost
    is a single flag check per simulation and the hot path is untouched.

    Parameters
    ----------
    config:
        Engine-level parameters (n, tick period, horizon, seed, stopping).
    network:
        The anonymous network (channels + broadcast primitive).
    process_factory:
        Builds the protocol instance for each process index.
    crash_schedule:
        The run's failure pattern; defaults to "no crashes".
    workload:
        Application-level broadcast commands to inject.
    atheta / apstar:
        Failure-detector oracles consulted by the processes' environments;
        ``None`` yields empty views (Algorithm 1 never reads them).
    trace / metrics:
        Optional pre-built recorders (auto-created otherwise).
    hooks:
        Engine hooks (observation / adversarial steering).
    trace_ticks:
        Whether to record a trace event per retransmission round.  Disabled
        by default because tick events dominate trace size without adding
        information (sends are traced individually anyway).
    controller:
        Optional :class:`~repro.explore.controller.ScheduleController`
        consulted at the run's nondeterminism points (per-copy loss/delay,
        mid-broadcast crashes, failure-detector query outcomes).  ``None``
        (the default) keeps the historic RNG-driven hot paths untouched.
    """

    #: Registry label of this backend ("reference" for the per-event
    #: engine; subclasses registered under other names override it).
    engine_label = "reference"

    def __init__(
        self,
        config: SimulationConfig,
        network: Network,
        process_factory: ProcessFactory,
        *,
        crash_schedule: Optional[CrashSchedule] = None,
        workload: Iterable[BroadcastCommand] = (),
        atheta: Optional[FailureDetector] = None,
        apstar: Optional[FailureDetector] = None,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsCollector] = None,
        hooks: Sequence[EngineHook] = (),
        trace_ticks: bool = False,
        controller: Optional["ScheduleController"] = None,
    ) -> None:
        if network.n_processes != config.n_processes:
            raise ValueError(
                f"network size ({network.n_processes}) does not match config "
                f"({config.n_processes})"
            )
        self.config = config
        self.network = network
        self.crash_schedule = crash_schedule or CrashSchedule.none(config.n_processes)
        if self.crash_schedule.n_processes != config.n_processes:
            raise ValueError("crash schedule size does not match config")
        self.workload: tuple[BroadcastCommand, ...] = tuple(workload)
        for command in self.workload:
            if command.sender >= config.n_processes:
                raise ValueError(
                    f"workload sender {command.sender} out of range for "
                    f"n={config.n_processes}"
                )
        self.atheta = atheta
        self.apstar = apstar
        self.trace = trace if trace is not None else TraceRecorder()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.hooks: list[EngineHook] = list(hooks)
        self.trace_ticks = trace_ticks
        self.controller = controller

        self.random_source = RandomSource(config.seed)
        # Re-seed the network's channel substreams from the run seed unless
        # the caller wired a specific source already.
        if network.random_source.master_seed != config.seed:
            network.random_source = RandomSource(config.seed)

        self.queue = EventQueue()
        self.event_stats = EventStats()
        self._expected_contents: frozenset = frozenset(
            cmd.content for cmd in self.workload
        )
        self._now: SimTime = 0.0
        self._crashed: set[int] = set()
        #: Crashes injected by the schedule controller (index -> time); they
        #: are folded into the result's crash schedule so the property
        #: checkers classify the victims as faulty.
        self._forced_crashes: dict[int, SimTime] = {}
        self._stop_requested = False
        self._stop_reason = "horizon"
        self._stop_deadline: Optional[SimTime] = None

        # Build processes and their environments.
        self.environments: dict[int, ProcessEnvironment] = {}
        self.processes: dict[int, BroadcastProtocol] = {}
        for index in range(config.n_processes):
            env = ProcessEnvironment(index, self)
            self.environments[index] = env
            self.processes[index] = process_factory(index, env)

    # ------------------------------------------------------------------ #
    # state queries
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> SimTime:
        """Current simulated time (time of the event being dispatched)."""
        return self._now

    def is_crashed(self, index: int) -> bool:
        """Whether process *index* has crashed already."""
        return index in self._crashed

    def alive_indices(self) -> tuple[int, ...]:
        """Processes that have not crashed yet."""
        return tuple(
            i for i in range(self.config.n_processes) if i not in self._crashed
        )

    # ------------------------------------------------------------------ #
    # services used by ProcessEnvironment
    # ------------------------------------------------------------------ #
    def broadcast_from(self, src: int, payload: Any) -> None:
        """Execute the anonymous broadcast primitive on behalf of *src*.

        The no-hooks fast path fuses transmission and outcome processing
        into one loop over the network's reusable ``broadcast_fast`` buffer,
        skipping per-copy envelope objects; with hooks installed the
        historic path is kept so that ``on_send`` hooks still observe the
        broadcast before any receive event is scheduled.  Both paths draw
        channel randomness in the same order and schedule identical events.
        """
        if src in self._crashed:
            # A crashed process executes no further statements; silently
            # dropping the call keeps hooks and protocols simpler.
            return
        kind = payload_kind(payload)
        now = self._now
        if self.controller is not None:
            self._broadcast_controlled(src, payload, kind, now)
            return
        if not self.hooks:
            metrics = self.metrics
            metrics_active = metrics.active
            trace = self.trace
            trace_channel = trace.channel_active
            schedule = self.queue.schedule
            for dst, deliver_time in self.network.broadcast_fast(
                src, payload, now
            ):
                if metrics_active:
                    metrics.on_send(now, src, kind)
                if trace_channel:
                    trace.record(
                        now, TraceCategory.SEND, src,
                        dst=dst, kind=kind, payload=payload,
                    )
                if deliver_time is not None:
                    schedule(
                        deliver_time, EventKind.RECEIVE,
                        target=dst, payload=payload,
                    )
                else:
                    if metrics_active:
                        metrics.on_drop(now, src, kind)
                    if trace_channel:
                        trace.record(
                            now, TraceCategory.DROP, src,
                            dst=dst, kind=kind, payload=payload,
                        )
            return
        outcomes = self.network.broadcast(src, payload, now)
        for hook in self.hooks:
            hook.on_send(self, src, payload, now)
        for outcome in outcomes:
            envelope = outcome.envelope
            self.metrics.on_send(now, src, kind)
            self.trace.record(
                now,
                TraceCategory.SEND,
                src,
                dst=envelope.dst,
                kind=kind,
                payload=payload,
            )
            if outcome.delivered:
                self.queue.schedule(
                    outcome.deliver_time, EventKind.RECEIVE,
                    target=envelope.dst, payload=payload,
                )
            else:
                self.metrics.on_drop(now, src, kind)
                self.trace.record(
                    now,
                    TraceCategory.DROP,
                    src,
                    dst=envelope.dst,
                    kind=kind,
                    payload=payload,
                )

    def _broadcast_controlled(
        self, src: int, payload: Any, kind: str, now: SimTime
    ) -> None:
        """Broadcast path taken when a schedule controller is installed.

        Each copy's fate is the controller's ``copy_decision`` (an absolute
        delivery time, ``None`` for a drop, or :data:`CRASH_SENDER` to crash
        the sender mid-broadcast).  Decisions are collected first and
        recorded after the ``on_send`` hooks, mirroring the hooked path; the
        default controller delegates every decision to the channel itself,
        so this path is bit-identical to the RNG-driven ones.
        """
        controller = self.controller
        assert controller is not None
        network = self.network
        key = network.dedup_key(payload)
        loopback = network.loopback_delivers
        crash_src = False
        planned: list[tuple[int, Optional[SimTime]]] = []
        for dst in range(network.n_processes):
            if dst == src and not loopback:
                continue
            channel = network.channel(src, dst)
            decision = controller.copy_decision(
                self, src, dst, payload, key, channel, now
            )
            if decision is CRASH_SENDER:
                crash_src = True
                break
            planned.append((dst, decision))
        for hook in self.hooks:
            hook.on_send(self, src, payload, now)
        metrics = self.metrics
        metrics_active = metrics.active
        trace = self.trace
        trace_channel = trace.channel_active
        schedule = self.queue.schedule
        for dst, deliver_time in planned:
            if metrics_active:
                metrics.on_send(now, src, kind)
            if trace_channel:
                trace.record(
                    now, TraceCategory.SEND, src,
                    dst=dst, kind=kind, payload=payload,
                )
            if deliver_time is not None:
                schedule(
                    deliver_time, EventKind.RECEIVE,
                    target=dst, payload=payload,
                )
            else:
                if metrics_active:
                    metrics.on_drop(now, src, kind)
                if trace_channel:
                    trace.record(
                        now, TraceCategory.DROP, src,
                        dst=dst, kind=kind, payload=payload,
                    )
        if crash_src:
            self._crash_for_exploration(src)

    def _crash_for_exploration(self, index: int) -> None:
        """Crash *index* on a controller's decision, remembering the time so
        the run's effective crash schedule reflects the injected fault."""
        if index in self._crashed:
            return
        self._forced_crashes[index] = self._now
        self.crash_now(index)

    def atheta_view(self, index: int) -> FailureDetectorView:
        """AΘ output for process *index* at the current time."""
        if self.controller is not None:
            view = self.controller.atheta_view(self, index, self._now)
            if view is not None:
                return view
        if self.atheta is None:
            return FailureDetectorView.empty()
        return self.atheta.view(index, self._now)

    def apstar_view(self, index: int) -> FailureDetectorView:
        """AP\\* output for process *index* at the current time."""
        if self.controller is not None:
            view = self.controller.apstar_view(self, index, self._now)
            if view is not None:
                return view
        if self.apstar is None:
            return FailureDetectorView.empty()
        return self.apstar.view(index, self._now)

    def on_process_delivered(self, index: int, message: TaggedMessage) -> None:
        """Record a URB-delivery and fire hooks."""
        if self.metrics.active:
            self.metrics.on_urb_deliver(self._now, index, message.content)
        if self.trace.protocol_active:
            self.trace.record(
                self._now,
                TraceCategory.URB_DELIVER,
                index,
                content=message.content,
                tag=message.tag,
            )
        for hook in self.hooks:
            hook.on_deliver(self, index, message, self._now)

    def on_process_retired(self, index: int, message: TaggedMessage) -> None:
        """Record the retirement of a message from a process's MSG set."""
        if self.trace.protocol_active:
            self.trace.record(
                self._now,
                TraceCategory.RETIRE,
                index,
                content=message.content,
                tag=message.tag,
            )

    # ------------------------------------------------------------------ #
    # adversarial / external control
    # ------------------------------------------------------------------ #
    def crash_now(self, index: int) -> None:
        """Crash process *index* immediately (used by adversarial hooks)."""
        if index in self._crashed:
            return
        self._crashed.add(index)
        self.trace.record(self._now, TraceCategory.CRASH, index, forced=True)
        for hook in self.hooks:
            hook.on_crash(self, index, self._now)

    def request_stop(self, reason: str) -> None:
        """Ask the engine to stop at the end of the current event."""
        self._stop_requested = True
        self._stop_reason = reason

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Run the simulation to completion and return its result."""
        if self.controller is not None:
            self.controller.begin_run(self)
        self._seed_initial_events()
        for hook in self.hooks:
            hook.on_run_start(self)

        queue = self.queue
        max_time = self.config.max_time
        dispatch = self._dispatch
        recycle = queue.recycle
        while queue:
            if self._stop_requested:
                break
            event = queue.pop()
            if event.time > max_time:
                self._stop_reason = "horizon"
                break
            self._now = event.time
            if self._stop_deadline is not None and self._now >= self._stop_deadline:
                break
            dispatch(event)
            recycle(event)
        final_time = min(self._now, self.config.max_time)
        self.metrics.on_finish(final_time)
        for hook in self.hooks:
            hook.on_run_end(self, final_time)
        provenance = self._schedule_provenance()
        self.trace.header.update(provenance.as_dict())
        if obs.enabled():
            self._record_obs_run()
        return SimulationResult(
            config=self.config,
            crash_schedule=self._effective_crash_schedule(),
            trace=self.trace,
            metrics=self.metrics,
            delivery_logs={
                index: process.delivery_log
                for index, process in self.processes.items()
            },
            processes=dict(self.processes),
            expected_contents=tuple(cmd.content for cmd in self.workload),
            final_time=final_time,
            stop_reason=self._stop_reason,
            event_stats=self.event_stats,
            schedule=provenance,
        )

    def _record_obs_run(self) -> None:
        """Aggregate run counters into the process-wide obs registry.

        Called once per finished run (and only when observability is
        enabled); reads post-run aggregates exclusively, so it cannot
        perturb the deterministic simulation state.
        """
        mode = getattr(self, "dispatch_mode", None) or "per-event"
        obs.counter(
            "repro_sim_runs_total", "Simulation runs completed.",
            ("engine", "dispatch_mode"),
        ).inc(engine=self.engine_label, dispatch_mode=mode)
        obs.counter(
            "repro_sim_events_total",
            "Simulation events dispatched, all kinds.",
            ("engine",),
        ).inc(self.event_stats.total, engine=self.engine_label)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _schedule_provenance(self) -> ScheduleProvenance:
        controller = self.controller
        if controller is None:
            return ScheduleProvenance(
                strategy="default",
                seed=self.config.seed,
                schedule_index=0,
                decision_count=0,
                schedule_hash=hash_decisions(()),
            )
        decisions = tuple(tuple(d) for d in controller.decisions)
        return ScheduleProvenance(
            strategy=getattr(controller, "strategy_name", type(controller).__name__),
            seed=self.config.seed,
            schedule_index=int(getattr(controller, "schedule_index", 0)),
            decision_count=len(decisions),
            schedule_hash=hash_decisions(decisions),
            decisions=decisions,
        )

    def _effective_crash_schedule(self) -> CrashSchedule:
        """The scenario's crash schedule plus any controller-injected
        crashes (hook-driven :meth:`crash_now` calls are deliberately *not*
        folded in — the impossibility adversary relies on its victims being
        classified against the declared schedule)."""
        if not self._forced_crashes:
            return self.crash_schedule
        merged = dict(self.crash_schedule.crash_times)
        merged.update(self._forced_crashes)
        return CrashSchedule.crash_at(self.crash_schedule.n_processes, merged)
    def _seed_initial_events(self) -> None:
        for index, crash_time in self.crash_schedule:
            self.queue.schedule(crash_time, EventKind.CRASH, target=index)
        for command in self.workload:
            self.queue.schedule(
                command.time, EventKind.BROADCAST_REQUEST,
                target=command.sender, payload=command.content,
            )
        for index in range(self.config.n_processes):
            first_tick = self.config.tick_interval
            if first_tick <= self.config.max_time:
                self.queue.schedule(first_tick, EventKind.TICK, target=index)
        if self.config.stop.any_enabled:
            self.queue.schedule(
                self.config.check_interval, EventKind.ENGINE_CHECK
            )

    def _dispatch(self, event: QueuedEvent) -> None:
        kind = event.kind
        self.event_stats.dispatched[kind] += 1
        # Branches ordered by frequency: receives and ticks dominate.
        if kind is EventKind.RECEIVE:
            self._handle_receive(event)
        elif kind is EventKind.TICK:
            self._handle_tick(event)
        elif kind is EventKind.CRASH:
            self._handle_crash(event)
        elif kind is EventKind.BROADCAST_REQUEST:
            self._handle_broadcast_request(event)
        elif kind is EventKind.ENGINE_CHECK:
            self._handle_engine_check(event)
        else:  # pragma: no cover - enum is exhaustive
            raise RuntimeError(f"unknown event kind {event.kind!r}")

    def _handle_crash(self, event: QueuedEvent) -> None:
        index = event.target
        assert index is not None
        if index in self._crashed:
            return
        self._crashed.add(index)
        self.trace.record(self._now, TraceCategory.CRASH, index)
        for hook in self.hooks:
            hook.on_crash(self, index, self._now)

    def _handle_receive(self, event: QueuedEvent) -> None:
        index = event.target
        assert index is not None
        if index in self._crashed:
            # The channel delivered the copy but the process is gone; a
            # crashed process executes no statements, so the copy is lost.
            return
        payload = event.payload
        metrics = self.metrics
        trace = self.trace
        if metrics.active or trace.channel_active:
            kind = payload_kind(payload)
            if metrics.active:
                metrics.on_channel_deliver(self._now, index, kind)
            if trace.channel_active:
                trace.record(
                    self._now, TraceCategory.CHANNEL_DELIVER, index,
                    kind=kind, payload=payload,
                )
        self.processes[index].on_receive(payload)

    def _handle_tick(self, event: QueuedEvent) -> None:
        index = event.target
        assert index is not None
        if index not in self._crashed:
            if self.trace_ticks:
                self.trace.record(self._now, TraceCategory.TICK, index)
            self.processes[index].on_tick()
            next_tick = self._now + self.config.tick_interval
            if next_tick <= self.config.max_time:
                self.queue.schedule(next_tick, EventKind.TICK, target=index)

    def _handle_broadcast_request(self, event: QueuedEvent) -> None:
        index = event.target
        assert index is not None
        if index in self._crashed:
            return
        self.metrics.on_urb_broadcast(self._now, index, event.payload)
        self.trace.record(
            self._now, TraceCategory.URB_BROADCAST, index, content=event.payload
        )
        self.processes[index].urb_broadcast(event.payload)

    def _handle_engine_check(self, event: QueuedEvent) -> None:
        stop = self.config.stop
        satisfied = None
        if stop.stop_when_quiescent and self._quiescence_reached():
            satisfied = "quiescent"
        elif stop.stop_when_all_correct_delivered and self._all_correct_delivered():
            satisfied = "all correct delivered"
        if satisfied is not None:
            if stop.drain_grace_period > 0:
                if self._stop_deadline is None:
                    self._stop_deadline = self._now + stop.drain_grace_period
                    self._stop_reason = satisfied
            else:
                self.request_stop(satisfied)
                return
        next_check = self._now + self.config.check_interval
        if next_check <= self.config.max_time:
            self.queue.schedule(next_check, EventKind.ENGINE_CHECK)

    # -- stop predicates --------------------------------------------------- #
    def _all_correct_delivered(self) -> bool:
        expected = self._expected_contents
        if not expected:
            return False
        forced = self._forced_crashes
        for index in self.crash_schedule.correct_indices():
            if forced and index in forced:
                # Controller-injected crash: the process is faulty in this
                # run even though the declared schedule says correct.
                continue
            delivered = self.processes[index].delivery_log.content_set()
            if not expected <= delivered:
                return False
        return True

    def _quiescence_reached(self) -> bool:
        # Every alive process has no retransmission obligation and nothing
        # is in flight or still scheduled to be injected.  The pending-event
        # counts are O(1) reads maintained by the queue.
        queue = self.queue
        if (queue.pending_of(EventKind.RECEIVE)
                or queue.pending_of(EventKind.BROADCAST_REQUEST)):
            return False
        crashed = self._crashed
        processes = self.processes
        for index in range(self.config.n_processes):
            if index not in crashed and processes[index].pending_retransmissions > 0:
                return False
        return True
