"""Simulated-time primitives.

The paper's system model (§II) postulates a *global clock* whose values are
the positive natural numbers, used purely as an auxiliary notion: processes
can neither read nor modify it.  The simulator keeps the same discipline —
simulated time is a float owned by the engine, protocol code never sees it.

This module centralises the small amount of arithmetic and validation done on
simulated timestamps so the rest of the code base can treat ``SimTime`` as an
opaque, totally ordered quantity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

#: Simulated time is represented as a non-negative float (seconds of
#: simulated time; the unit is arbitrary but consistent across the library).
SimTime = float

#: The origin of simulated time.
TIME_ZERO: SimTime = 0.0

#: A sentinel meaning "never happens" (e.g. a process that never crashes).
NEVER: SimTime = math.inf


def validate_time(value: SimTime, *, name: str = "time") -> SimTime:
    """Validate that *value* is a usable simulated timestamp.

    Parameters
    ----------
    value:
        Candidate timestamp.
    name:
        Name used in error messages.

    Returns
    -------
    SimTime
        The validated value (unchanged).

    Raises
    ------
    ValueError
        If the value is negative or NaN.
    TypeError
        If the value is not a real number.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if math.isnan(value):
        raise ValueError(f"{name} must not be NaN")
    if value < 0.0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def validate_duration(value: float, *, name: str = "duration",
                      allow_zero: bool = False) -> float:
    """Validate a duration (a difference of simulated timestamps).

    Parameters
    ----------
    value:
        Candidate duration.
    name:
        Name used in error messages.
    allow_zero:
        Whether a zero duration is acceptable.

    Returns
    -------
    float
        The validated duration.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if math.isnan(value):
        raise ValueError(f"{name} must not be NaN")
    if value < 0.0 or (value == 0.0 and not allow_zero):
        comparator = "non-negative" if allow_zero else "positive"
        raise ValueError(f"{name} must be {comparator}, got {value}")
    return value


def is_never(value: SimTime) -> bool:
    """Return ``True`` if *value* is the "never" sentinel (+inf)."""
    return math.isinf(value) and value > 0


@dataclass(frozen=True, slots=True)
class TimeWindow:
    """A half-open interval ``[start, end)`` of simulated time.

    Used by workload generators and analysis code to express "during this
    period" without repeating interval arithmetic everywhere.
    """

    start: SimTime
    end: SimTime

    def __post_init__(self) -> None:
        validate_time(self.start, name="start")
        if not is_never(self.end):
            validate_time(self.end, name="end")
        if self.end < self.start:
            raise ValueError(
                f"TimeWindow end ({self.end}) must be >= start ({self.start})"
            )

    @property
    def duration(self) -> float:
        """Length of the window (may be ``inf`` for open-ended windows)."""
        return self.end - self.start

    def contains(self, t: SimTime) -> bool:
        """Return ``True`` if ``start <= t < end``."""
        return self.start <= t < self.end

    def clamp(self, t: SimTime) -> SimTime:
        """Clamp *t* into the window (useful for plotting helpers)."""
        return min(max(t, self.start), self.end)

    def subdivide(self, parts: int) -> list["TimeWindow"]:
        """Split the window into *parts* equal sub-windows.

        Raises
        ------
        ValueError
            If *parts* is not positive or the window is open-ended.
        """
        if parts <= 0:
            raise ValueError("parts must be positive")
        if is_never(self.end):
            raise ValueError("cannot subdivide an open-ended window")
        step = self.duration / parts
        return [
            TimeWindow(self.start + i * step, self.start + (i + 1) * step)
            for i in range(parts)
        ]


def earliest(times: Iterable[SimTime]) -> SimTime:
    """Return the earliest of *times*, or ``NEVER`` for an empty iterable."""
    result = NEVER
    for t in times:
        if t < result:
            result = t
    return result


def latest(times: Iterable[SimTime]) -> SimTime:
    """Return the latest of *times*, or ``TIME_ZERO`` for an empty iterable."""
    result = TIME_ZERO
    for t in times:
        if t > result:
            result = t
    return result
