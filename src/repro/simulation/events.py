"""Event taxonomy for the discrete-event simulator.

Every state change in a simulated run is driven by one of a small set of
event kinds.  Events are totally ordered by ``(time, sequence_number)``;
the sequence number is assigned by the scheduler when the event is pushed,
which makes the simulation fully deterministic for a given seed: ties are
broken by insertion order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from .simtime import SimTime, validate_time


class EventKind(enum.Enum):
    """The kinds of events the engine knows how to dispatch."""

    #: Dense index of the member (0..len-1), assigned after class creation;
    #: used by the scheduler's O(1) pending counters.
    slot: int

    #: A message (protocol payload) arrives at a process.
    RECEIVE = "receive"
    #: A retransmission round (the paper's Task 1 «repeat forever» loop).
    TICK = "tick"
    #: A process crashes (crash-stop failure model, §II).
    CRASH = "crash"
    #: The application layer invokes ``URB_broadcast`` at a process.
    BROADCAST_REQUEST = "broadcast_request"
    #: Periodic engine self-check (early-stop predicates, bookkeeping).
    ENGINE_CHECK = "engine_check"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


# Dense per-kind index used by the scheduler's O(1) pending counters: a
# plain attribute read plus a list index is markedly cheaper than hashing an
# enum member on every push/pop (Enum.__hash__ is a Python-level call).
for _slot, _kind in enumerate(EventKind):
    _kind.slot = _slot
del _slot, _kind


@dataclass(frozen=True, slots=True)
class Event:
    """A scheduled simulation event.

    Attributes
    ----------
    time:
        Simulated time at which the event fires.
    seq:
        Scheduler-assigned sequence number used for deterministic
        tie-breaking.  Events pushed earlier fire earlier at equal times.
    kind:
        The :class:`EventKind`.
    target:
        Index of the process the event is addressed to, or ``None`` for
        engine-level events.
    payload:
        Kind-specific data: the protocol payload for ``RECEIVE``, the
        application content for ``BROADCAST_REQUEST``, ``None`` otherwise.
    """

    time: SimTime
    seq: int
    kind: EventKind
    target: Optional[int] = None
    payload: Any = None

    def __post_init__(self) -> None:
        validate_time(self.time, name="event time")
        if self.seq < 0:
            raise ValueError("event sequence number must be non-negative")
        if self.target is not None and self.target < 0:
            raise ValueError("event target must be a non-negative index")

    @property
    def sort_key(self) -> tuple[SimTime, int]:
        """The total-order key used by the scheduler."""
        return (self.time, self.seq)

    def __lt__(self, other: "Event") -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key < other.sort_key

    def describe(self) -> str:
        """Human-readable one-line description (used in debug traces)."""
        target = "engine" if self.target is None else f"p[{self.target}]"
        return f"{self.kind.value}@{self.time:.4f}->{target}"


@dataclass(frozen=True, slots=True)
class BroadcastCommand:
    """An application-level broadcast request, produced by a workload.

    Attributes
    ----------
    time:
        Simulated time at which the sender's application layer invokes
        ``URB_broadcast``.
    sender:
        Index of the broadcasting process.
    content:
        The application payload.  Must be hashable (it is stored in protocol
        sets exactly as the paper's ``m``).
    """

    time: SimTime
    sender: int
    content: Any

    def __post_init__(self) -> None:
        validate_time(self.time, name="broadcast time")
        if self.sender < 0:
            raise ValueError("sender index must be non-negative")
        # Contents are placed in sets and dict keys by the protocols; fail
        # early with a clear message rather than deep inside a handler.
        try:
            hash(self.content)
        except TypeError as exc:  # pragma: no cover - defensive
            raise TypeError(
                f"broadcast content must be hashable, got {self.content!r}"
            ) from exc


@dataclass(slots=True)
class EventStats:
    """Lightweight running statistics about dispatched events."""

    dispatched: dict[EventKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in EventKind}
    )

    def count(self, kind: EventKind) -> None:
        """Record one dispatched event of *kind*."""
        self.dispatched[kind] += 1

    @property
    def total(self) -> int:
        """Total number of dispatched events."""
        return sum(self.dispatched.values())

    def as_dict(self) -> dict[str, int]:
        """Return counts keyed by the event-kind value (JSON friendly)."""
        return {kind.value: count for kind, count in self.dispatched.items()}
