"""Vectorized engine backend: batched delivery dispatch over a SoA core.

:class:`VectorizedEngine` is a drop-in :class:`~.engine.SimulationEngine`
subclass registered as the ``vectorized`` backend (see
:mod:`repro.simulation.backends`).  It replaces per-event heap traffic for
channel deliveries — by far the dominant event population — with
struct-of-arrays *delivery chunks* merged one time slice at a time:

* Each broadcast's fan-out becomes one :class:`_Chunk` holding the delivery
  times, sequence numbers and destinations as a single ``(3, k)`` float64
  array, time-sorted once at construction.  Pending copies cost 24 bytes
  each — one ndarray for the whole fan-out — instead of a pooled event
  object plus a heap tuple.  (Seqs and destinations are exact in float64:
  both stay far below 2**53; the sampler guards the seq range.)
* The main loop advances through *time slices* of width ``W``, the minimum
  possible channel delay of the run: every delivery created while dispatching
  a slice ``[w0, w0 + W)`` necessarily lands at or after ``w0 + W``, so the
  slice's events can be gathered from the pending chunks once, merged with a
  single ``lexsort`` into the reference ``(time, seq)`` total order, and
  dispatched with a plain loop — no per-event heap operations at all.  The
  small chunk heap is touched only when a chunk enters or spans a slice.
* Channel randomness is prefetched per source row into NumPy blocks
  (:class:`_RowSampler`): one loss uniform per channel per broadcast and one
  delay uniform per delivery, consumed from per-channel cursors.  Because
  every protocol send in this codebase is a broadcast, all channels of a
  source row advance their substreams in lockstep, so block prefetching
  consumes each per-channel stream in exactly the reference order.

When no positive minimum delay exists (exponential or custom delay models,
custom channel classes), slicing is unsound and the engine falls back to a
per-entry merge: the chunk heap then carries one head tuple per chunk and is
re-pushed after every dispatched copy — still far less state than the
reference engine's per-copy events, just without the sliced inner loop.

Bit-identical parity with ``reference`` is a hard requirement, enforced by
:mod:`repro.experiments.parity` in CI.  The mechanisms:

* Sequence numbers for a chunk are *claimed* from the shared
  :class:`~.scheduler.EventQueue` counter (:meth:`EventQueue.claim_seqs`) at
  the same program point the reference engine would have scheduled the
  copies, in the same destination order — so the merged dispatch order over
  chunks plus heap events is the reference ``(time, seq)`` total order,
  tie-breaks included (the per-chunk time sort is stable).
* The loss draw / fairness guard / delay draw sequence per channel replays
  :meth:`LossyChannel.transmit` exactly: loss uniforms are consumed once per
  attempt only for ``0 < p < 1`` (the ``p == 0``/``p == 1`` shortcuts draw
  nothing), the guard dictionaries are the channels' own, and the delay
  uniform is consumed only on (possibly guard-forced) delivery, evaluated
  with the same ``low + (high - low) * u`` expression the stdlib uses.
* Aggregate bookkeeping (metrics counters, channel stats, event stats)
  is flushed in forms that are arithmetically identical to the reference
  engine's per-event updates; nothing observes the intermediate values on
  the batched path because that path only runs with no hooks attached.

Fallback: when a :class:`~repro.explore.controller.ScheduleController`,
engine hooks, or a FULL trace level (per-copy SEND/DROP/CHANNEL_DELIVER
records) are active, :meth:`run` silently delegates to the reference
per-event loop — same class, same results, so explore/replay stay exact.
``dispatch_mode`` records which path ran.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Optional

import numpy as np

from .. import obs
from ..core.messages import payload_kind
from ..core.state import PayloadInterner
from ..failure_detectors.base import FailureDetectorView
from ..network.channel import LossyChannel
from ..network.delay import BatchedUniformDelay, FixedDelay, UniformDelay
from ..network.loss import BernoulliLoss, NoLoss
from ..network.reliable import QuasiReliableChannel, ReliableChannel
from .engine import SimulationEngine, SimulationResult
from .events import EventKind
from .simtime import SimTime
from .tracing import TraceCategory

#: Prefetched draws per channel block.  Public so tests can shrink it to
#: force mid-run refills; any value produces identical results (each
#: per-channel stream is consumed strictly sequentially).
SAMPLE_BLOCK = 256

#: Slice entries materialised as Python objects at a time during dispatch.
#: Bounds the boxed-float transient of very dense slices (hundreds of
#: thousands of deliveries can share one slice during ACK storms).
_DISPATCH_SEGMENT = 8192

#: Chunk columns store sequence numbers as float64; exact up to 2**53.
_SEQ_EXACT_LIMIT = 2 ** 53

#: ``transmit`` implementations known to deliver at ``now + delay.sample()``
#: (or drop).  Rows made of these can bound their minimum delivery delay by
#: the delay model alone, which is what makes time slicing sound.
_BOUNDED_TRANSMITS = (
    LossyChannel.transmit,
    ReliableChannel.transmit,
    QuasiReliableChannel.transmit,
)

#: Buckets of the batched-chunk-size histogram: chunk cardinality is the
#: surviving fan-out of one broadcast, i.e. bounded by n-1 copies.
_CHUNK_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                  512.0, 1024.0)

#: Buckets of the batched-receiver consume-width histogram: entries handed
#: to one ``consume_acks`` call (per destination, per run).  Runs between
#: queue events span thousands of entries during ACK storms.
_CONSUME_BUCKETS = (1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0,
                    65536.0)


class _Chunk:
    """One broadcast's delivered fan-out as a time-sorted ``(3, k)`` array.

    ``cols[0]`` is delivery times, ``cols[1]`` sequence numbers, ``cols[2]``
    destinations — all float64, so a chunk costs a single small ndarray
    (average fan-outs are a few dozen entries; separate per-column arrays
    would triple the object overhead, which dominates at that size).
    ``start`` indexes the first entry not yet handed to the dispatch loop;
    the columns themselves are immutable once built.  ``pid`` is the
    payload's interned id when the batched receiver is active (``-1``
    otherwise): the id-space through which the consumers classify and
    duplicate-suppress deliveries without touching the payload object.
    """

    __slots__ = ("cols", "payload", "start", "pid")

    def __init__(self, cols: np.ndarray, payload: Any, pid: int = -1) -> None:
        self.cols = cols
        self.payload = payload
        self.start = 0
        self.pid = pid


def _refill_uniform_column(block: np.ndarray, column: int, random) -> None:
    """Refill one prefetch column with sequential ``random()`` draws.

    ``np.fromiter`` consumes the generator straight into the preallocated
    buffer — no transient list of boxed floats — while still calling
    ``random()`` exactly ``len(block)`` times in order, so each per-channel
    stream is consumed decision-for-decision as the reference path would.
    """
    n = block.shape[0]
    block[:, column] = np.fromiter(
        (random() for _ in range(n)), np.float64, count=n
    )


class _RowSampler:
    """Per-source-row channel sampler replicating ``LossyChannel.transmit``.

    Two modes, chosen once per row:

    * *vector* — every channel in the row is a :class:`LossyChannel` with a
      homogeneous Bernoulli/no-loss model and a homogeneous uniform/fixed
      delay model.  Loss uniforms are prefetched into a ``(block, m)``
      matrix (one row per broadcast), delay uniforms into per-channel
      columns consumed on delivery only.  Channel stats are accumulated in
      arrays and flushed at end of run; the fairness-guard dicts used are
      the channels' own.
    * *generic* — anything else (heterogeneous rows, stateful loss models,
      exponential/custom delays, non-lossy channel families): fall back to
      ``network.broadcast_fast`` per broadcast, which runs each channel's
      own ``transmit`` and is therefore exact by construction.  The chunk
      dispatch win is kept either way.
    """

    __slots__ = (
        "network", "src", "dsts", "dst_arr", "channels", "m",
        "vector", "probability", "no_drop", "fairness_bound", "guards",
        "loss_rngs", "loss_block", "loss_drops", "loss_cursor",
        "delay_fixed", "delay_low", "delay_span", "delay_rngs",
        "delay_u", "delay_cursors",
        "broadcasts", "dropped_counts", "forced_counts", "any_guard",
        "all_idx",
    )

    def __init__(self, network: Any, src: int) -> None:
        self.network = network
        self.src = src
        row = network._row(src)
        channels = [ch for ch in row if ch is not None]
        self.channels = channels
        self.dsts = [ch.dst for ch in channels]
        self.m = len(channels)
        self.broadcasts = 0
        self.any_guard = False
        self.vector = self._try_vector_mode(channels)
        if self.vector:
            m = self.m
            # float64: destinations feed straight into chunk columns.
            self.dst_arr = np.asarray(self.dsts, dtype=np.float64)
            self.all_idx = np.arange(m, dtype=np.int64)
            self.guards = [ch._consecutive_drops for ch in channels]
            # A reused network may carry guard state from a previous run;
            # the reference path would clear it on delivery, so must we.
            self.any_guard = any(self.guards)
            self.dropped_counts = np.zeros(m, dtype=np.int64)
            self.forced_counts = np.zeros(m, dtype=np.int64)
            self.loss_block = None
            self.loss_drops = None
            self.loss_cursor = 0
            if not self.no_drop:
                self.loss_rngs = [ch.loss_model._rng for ch in channels]
            if self.delay_fixed is None:
                self.delay_rngs = [ch.delay_model._rng for ch in channels]
                self.delay_u = np.empty((SAMPLE_BLOCK, m), dtype=np.float64)
                self.delay_cursors = np.full(m, SAMPLE_BLOCK, dtype=np.int64)

    def _try_vector_mode(self, channels: list) -> bool:
        """Vector mode needs a homogeneous LossyChannel row (see class doc)."""
        if not channels:
            return False
        bounds = set()
        probabilities = set()
        delays: set = set()
        for ch in channels:
            if type(ch).transmit is not LossyChannel.transmit:
                return False
            bounds.add(ch.fairness_bound)
            loss = ch.loss_model
            if isinstance(loss, NoLoss):
                probabilities.add(0.0)
            elif isinstance(loss, BernoulliLoss):
                probabilities.add(loss.probability)
            else:
                return False
            delay = ch.delay_model
            if type(delay) is FixedDelay:
                delays.add(("fixed", delay.delay))
            elif type(delay) is UniformDelay:
                delays.add(("uniform", delay.low, delay.high))
            else:
                return False
        if len(bounds) != 1 or len(probabilities) != 1 or len(delays) != 1:
            return False
        probability = probabilities.pop()
        if probability >= 1.0:
            # All-drop rows interleave guard state with every attempt; the
            # generic path handles them exactly and they are never hot.
            return False
        self.probability = probability
        self.no_drop = probability == 0.0
        self.fairness_bound = bounds.pop()
        delay_kind = delays.pop()
        if delay_kind[0] == "fixed":
            self.delay_fixed = delay_kind[1]
        else:
            self.delay_fixed = None
            self.delay_low = delay_kind[1]
            self.delay_span = delay_kind[2] - delay_kind[1]
        return True

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def broadcast(self, payload: Any, now: SimTime, queue: Any) -> tuple:
        """Sample one broadcast.  Returns ``(sent, cols | None)``.

        ``sent`` is the number of attempted copies; ``cols`` is the
        time-sorted ``(3, k)`` chunk column array (times / seqs / dsts), or
        ``None`` when every copy was dropped.
        """
        if not self.vector:
            return self._broadcast_generic(payload, now, queue)
        self.broadcasts += 1
        if self.no_drop:
            delivered_idx = self.all_idx
            if self.any_guard:
                self._clear_guard(delivered_idx, self.network.dedup_key(payload))
        else:
            drops = self.loss_drops
            cursor = self.loss_cursor
            if drops is None or cursor >= SAMPLE_BLOCK:
                drops = self._refill_loss()
                cursor = 0
            mask = drops[cursor]
            self.loss_cursor = cursor + 1
            if mask.any():
                delivered_idx = self._apply_guard(
                    mask, self.network.dedup_key(payload)
                )
            else:
                delivered_idx = self.all_idx
                if self.any_guard:
                    self._clear_guard(delivered_idx,
                                      self.network.dedup_key(payload))
        k = len(delivered_idx)
        if k == 0:
            return self.m, None
        seq0 = queue.claim_seqs(k)
        if seq0 + k > _SEQ_EXACT_LIMIT:
            raise OverflowError("sequence numbers exceed float64 exactness")
        cols = np.empty((3, k), dtype=np.float64)
        if self.delay_fixed is not None:
            # Equal delays: time order is destination order already.
            cols[0] = now + self.delay_fixed
            cols[1] = np.arange(seq0, seq0 + k, dtype=np.float64)
            cols[2] = self.dst_arr[delivered_idx]
            return self.m, cols
        cursors = self.delay_cursors
        ci = cursors[delivered_idx]
        if (ci >= SAMPLE_BLOCK).any():
            for j in delivered_idx[ci >= SAMPLE_BLOCK].tolist():
                self._refill_delay(j)
            ci = cursors[delivered_idx]
        u = self.delay_u[ci, delivered_idx]
        cursors[delivered_idx] = ci + 1
        # Exactly the stdlib's uniform(a, b): a + (b - a) * random().
        times_arr = now + (self.delay_low + self.delay_span * u)
        order = np.argsort(times_arr, kind="stable")
        cols[0] = times_arr[order]
        cols[1] = order
        cols[1] += seq0
        cols[2] = self.dst_arr[delivered_idx[order]]
        return self.m, cols

    def _apply_guard(self, mask: np.ndarray, key: Any) -> np.ndarray:
        """Replay the fairness guard for one drop mask; returns delivered idx."""
        dropped = np.nonzero(mask)[0]
        bound = self.fairness_bound
        guards = self.guards
        dropped_counts = self.dropped_counts
        forced: list[int] = []
        for j in dropped.tolist():
            guard = guards[j]
            if bound is not None and guard.get(key, 0) >= bound:
                forced.append(j)
            else:
                dropped_counts[j] += 1
                guard[key] = guard.get(key, 0) + 1
        self.any_guard = True
        if forced:
            mask = mask.copy()
            mask[forced] = False
            self.forced_counts[forced] += 1
        delivered_idx = np.nonzero(~mask)[0]
        self._clear_guard(delivered_idx, key)
        return delivered_idx

    def _clear_guard(self, delivered_idx: np.ndarray, key: Any) -> None:
        guards = self.guards
        for j in delivered_idx.tolist():
            guard = guards[j]
            if guard and key in guard:
                del guard[key]

    def _refill_loss(self) -> np.ndarray:
        block = self.loss_block
        if block is None:
            block = self.loss_block = np.empty(
                (SAMPLE_BLOCK, self.m), dtype=np.float64
            )
            self.loss_drops = np.empty((SAMPLE_BLOCK, self.m), dtype=bool)
        for j, rng in enumerate(self.loss_rngs):
            _refill_uniform_column(block, j, rng.random)
        np.less(block, self.probability, out=self.loss_drops)
        self.loss_cursor = 0
        return self.loss_drops

    def _refill_delay(self, column: int) -> None:
        _refill_uniform_column(self.delay_u, column,
                               self.delay_rngs[column].random)
        self.delay_cursors[column] = 0

    def _broadcast_generic(self, payload: Any, now: SimTime,
                           queue: Any) -> tuple:
        """Exact generic path: per-channel ``transmit`` via broadcast_fast."""
        sent = 0
        delivered: list[tuple[SimTime, int]] = []
        for dst, deliver_time in self.network.broadcast_fast(
            self.src, payload, now
        ):
            sent += 1
            if deliver_time is not None:
                delivered.append((deliver_time, dst))
        k = len(delivered)
        if k == 0:
            return sent, None
        seq0 = queue.claim_seqs(k)
        if seq0 + k > _SEQ_EXACT_LIMIT:
            raise OverflowError("sequence numbers exceed float64 exactness")
        order = sorted(range(k), key=lambda i: delivered[i][0])
        cols = np.empty((3, k), dtype=np.float64)
        cols[0] = [delivered[i][0] for i in order]
        cols[1] = [seq0 + i for i in order]
        cols[2] = [delivered[i][1] for i in order]
        return sent, cols

    # ------------------------------------------------------------------ #
    # end-of-run flush
    # ------------------------------------------------------------------ #
    def flush_stats(self) -> None:
        """Fold the accumulated per-row counters into the channels' stats.

        Only vector mode defers stats (the generic path goes through each
        channel's own ``transmit``).  ``delivered = attempts - dropped``
        exactly as the per-transmit updates would have left them.
        """
        if not self.vector or self.broadcasts == 0:
            return
        attempts = self.broadcasts
        dropped_counts = self.dropped_counts
        forced_counts = self.forced_counts
        for j, channel in enumerate(self.channels):
            stats = channel.stats
            dropped = int(dropped_counts[j])
            stats.attempts += attempts
            stats.dropped += dropped
            stats.delivered += attempts - dropped
            stats.forced_deliveries += int(forced_counts[j])
        self.broadcasts = 0
        dropped_counts[:] = 0
        forced_counts[:] = 0


class VectorizedEngine(SimulationEngine):
    """SimulationEngine with sliced (struct-of-arrays) delivery dispatch.

    Bit-identical to the reference engine by construction (see module docs);
    falls back to the inherited per-event loop whenever a controller, hooks
    or a FULL trace level require per-copy observability.
    """

    #: ``"batched"`` or ``"per-event"`` — which dispatch path :meth:`run`
    #: took.  ``None`` until :meth:`run` is called.
    dispatch_mode: Optional[str] = None

    #: How the batched path consumed deliveries: ``"batched"`` — unboxed,
    #: straight from the chunk columns into the per-process
    #: :class:`~repro.core.interfaces.BatchConsumer`\ s; ``"boxed"`` — the
    #: segmented ``tolist()`` path through ``on_receive`` (protocols without
    #: a consumer, delivery listeners, unstable failure-detector windows, or
    #: no positive minimum delay).  ``None`` on the per-event fallback.
    consume_mode: Optional[str] = None

    engine_label = "vectorized"

    def _batchable(self) -> bool:
        """Whether the batched core preserves every observable of this run.

        Controllers decide per-copy fates, hooks observe per-copy events,
        and FULL tracing records per-copy SEND/DROP/CHANNEL_DELIVER entries
        — all three need the per-event loop.  DELIVERIES-level tracing and
        every metrics level are exactly reproduced by the batched path.
        """
        return self._fallback_reason() is None

    def _fallback_reason(self) -> Optional[str]:
        """Why this run needs the per-event loop (``None`` = batchable)."""
        if self.controller is not None:
            return "controller"
        if self.hooks:
            return "hooks"
        if self.trace.channel_active:
            return "full_trace"
        return None

    def run(self) -> SimulationResult:
        reason = self._fallback_reason()
        if reason is not None:
            self.dispatch_mode = "per-event"
            if obs.enabled():
                obs.counter(
                    "repro_engine_fallback_total",
                    "Vectorized runs that fell back to a slower dispatch "
                    "path, by reason.",
                    ("reason",),
                ).inc(reason=reason)
            if obs.timeline_active():
                obs.emit("engine.dispatch_mode", engine=self.engine_label,
                         mode="per-event", reason=reason)
            return super().run()
        self.dispatch_mode = "batched"
        if obs.timeline_active():
            obs.emit("engine.dispatch_mode", engine=self.engine_label,
                     mode="batched")
        return self._run_batched()

    # ------------------------------------------------------------------ #
    # batched services
    # ------------------------------------------------------------------ #
    def broadcast_from(self, src: int, payload: Any) -> None:
        if not self._fast_active:
            super().broadcast_from(src, payload)
            return
        if src in self._crashed:
            return
        sampler = self._row_samplers[src]
        if sampler is None:
            sampler = _RowSampler(self.network, src)
            self._row_samplers[src] = sampler
        now = self._now
        sent, cols = sampler.broadcast(payload, now, self.queue)
        kind = payload_kind(payload)
        metrics = self.metrics
        if metrics.active:
            metrics.on_send_many(now, src, kind, sent)
        if cols is None:
            if metrics.active:
                metrics.on_drop_many(now, src, kind, sent)
            return
        k = cols.shape[1]
        dropped = sent - k
        if dropped and metrics.active:
            metrics.on_drop_many(now, src, kind, dropped)
        self._batch_pending += k
        if obs.enabled():
            obs.histogram(
                "repro_engine_chunk_cells",
                "Copies per batched delivery chunk.",
                buckets=_CHUNK_BUCKETS,
            ).observe(k)
        interner = self._interner
        if interner is None:
            chunk = _Chunk(cols, payload)
        else:
            chunk = _Chunk(cols, payload, interner.pid_for(payload))
        heappush(self._chunk_heap,
                 (float(cols[0, 0]), int(cols[1, 0]), chunk))

    def _quiescence_reached(self) -> bool:
        # Pending chunk deliveries are in-flight copies exactly like the
        # reference engine's pending RECEIVE events.
        if self._batch_pending:
            return False
        return super()._quiescence_reached()

    # ------------------------------------------------------------------ #
    # batched main loop
    # ------------------------------------------------------------------ #
    def _min_delay_window(self) -> float:
        """The run's time-slice width: the minimum possible channel delay.

        Every delivery created while the engine dispatches events in
        ``[w0, w0 + W)`` lands at or after ``w0 + W`` (monotone float
        addition of a delay ``>= W``), which is exactly the property the
        sliced merge needs.  Returns ``0.0`` — disabling slicing — when any
        channel's delay cannot be bounded below by a positive constant.
        """
        bound = float("inf")
        network = self.network
        for src in range(self.config.n_processes):
            for ch in network._row(src):
                if ch is None:
                    continue
                if type(ch).transmit not in _BOUNDED_TRANSMITS:
                    return 0.0
                delay = ch.delay_model
                if type(delay) is FixedDelay:
                    low = delay.delay
                elif type(delay) is UniformDelay or \
                        type(delay) is BatchedUniformDelay:
                    low = delay.low
                else:
                    # Exponential delays do have a positive clamp, but it is
                    # orders of magnitude below the typical delay — slices
                    # that thin cost more than per-entry merging.
                    return 0.0
                if low <= 0.0:
                    return 0.0
                if low < bound:
                    bound = low
        return 0.0 if bound == float("inf") else bound

    def _run_batched(self) -> SimulationResult:
        self._chunk_heap: list = []
        self._batch_pending = 0
        self._row_samplers: list[Optional[_RowSampler]] = (
            [None] * self.config.n_processes
        )
        self._interner = None
        self._consumers = None
        self._fast_active = True
        try:
            self._seed_initial_events()
            window = self._min_delay_window()
            consumers = self._build_consumers() if window > 0.0 else None
            if consumers is not None:
                self.consume_mode = "batched"
                if obs.enabled():
                    self._batched_consumed_counter = obs.counter(
                        "repro_engine_batched_consumed_total",
                        "Delivery-run entries consumed unboxed through the "
                        "batched receiver.",
                    )
                    self._consume_width_hist = obs.histogram(
                        "repro_engine_consume_width",
                        "ACK receptions handed to one consume_acks call.",
                        buckets=_CONSUME_BUCKETS,
                    )
                if obs.timeline_active():
                    obs.emit("engine.consume_mode", engine=self.engine_label,
                             mode="batched")
                receive_count, deliver_count = (
                    self._merge_sliced_consumed(window)
                )
                for consumer in consumers:
                    consumer.flush()
            elif window > 0.0:
                self.consume_mode = "boxed"
                receive_count, deliver_count = self._merge_sliced(window)
            else:
                self.consume_mode = "boxed"
                if obs.enabled():
                    obs.counter(
                        "repro_engine_fallback_total",
                        "Vectorized runs that fell back to a slower "
                        "dispatch path, by reason.",
                        ("reason",),
                    ).inc(reason="no_positive_min_delay")
                receive_count, deliver_count = self._merge_per_entry()
        finally:
            self._fast_active = False
            self._batched_consumed_counter = None
            self._consume_width_hist = None
        # Flush the aggregate bookkeeping the batched loop deferred; every
        # value lands exactly where the per-event loop would have left it.
        metrics = self.metrics
        if receive_count:
            self.event_stats.dispatched[EventKind.RECEIVE] += receive_count
        if deliver_count:
            metrics.total_channel_deliveries += deliver_count
        for sampler in self._row_samplers:
            if sampler is not None:
                sampler.flush_stats()
        final_time = min(self._now, self.config.max_time)
        metrics.on_finish(final_time)
        provenance = self._schedule_provenance()
        self.trace.header.update(provenance.as_dict())
        if obs.enabled():
            self._record_obs_run()
        return SimulationResult(
            config=self.config,
            crash_schedule=self._effective_crash_schedule(),
            trace=self.trace,
            metrics=metrics,
            delivery_logs={
                index: process.delivery_log
                for index, process in self.processes.items()
            },
            processes=dict(self.processes),
            expected_contents=tuple(cmd.content for cmd in self.workload),
            final_time=final_time,
            stop_reason=self._stop_reason,
            event_stats=self.event_stats,
            schedule=provenance,
        )

    def _gather_slice(self, w1: float) -> tuple:
        """Collect every pending chunk entry with ``time < w1``.

        Returns ``(cols, payloads)`` in the reference ``(time, seq)``
        dispatch order: ``cols`` is a ``(3, n)`` column array (or ``None``
        when the slice is empty) and ``payloads`` is either a single object
        (every entry shares it — the single-chunk fast path) or a length-n
        object array.  The dispatch loop boxes the columns segment by
        segment; a dense slice never materialises all its Python floats at
        once.
        """
        chunks = self._chunk_heap
        parts = []
        payload_parts = []
        while chunks and chunks[0][0] < w1:
            _, _, chunk = heappop(chunks)
            cols = chunk.cols
            times = cols[0]
            start = chunk.start
            split = start + int(
                np.searchsorted(times[start:], w1, side="left")
            )
            parts.append(cols[:, start:split])
            payload_parts.append((chunk.payload, split - start))
            if split < cols.shape[1]:
                chunk.start = split
                heappush(chunks,
                         (float(times[split]), int(cols[1, split]), chunk))
        if not parts:
            return None, None
        if len(parts) == 1:
            # A single chunk is already in dispatch order (time-sorted with
            # ascending seqs on ties) and shares one payload.
            return parts[0], payload_parts[0][0]
        merged = np.concatenate(parts, axis=1)
        # lexsort: primary key last — times first, seqs break exact ties.
        order = np.lexsort((merged[1], merged[0]))
        payloads = np.empty(merged.shape[1], dtype=object)
        pos = 0
        for payload, count in payload_parts:
            # Payloads are protocol message objects, never sequences, so
            # this broadcast-fills `count` slots with the same object.
            payloads[pos:pos + count] = payload
            pos += count
        return merged[:, order], payloads[order]

    # ------------------------------------------------------------------ #
    # batched receiver (unboxed consumption through BatchConsumers)
    # ------------------------------------------------------------------ #
    def _build_consumers(self) -> Optional[list]:
        """Build one :class:`BatchConsumer` per process, or ``None``.

        ``None`` demotes the run to the boxed slice loop.  Requirements:
        every process supplies a consumer (baseline protocols and
        ``strict_equality`` Algorithm 2 do not), no delivery listeners are
        attached (listeners observe per-reception ordering), and — when any
        consumer evaluates failure-detector views — the AΘ oracle reports
        stable view-validity windows.
        """
        interner = PayloadInterner()
        consumers = []
        needs_views = False
        for index in range(self.config.n_processes):
            process = self.processes[index]
            if process._listeners:
                return None
            consumer = process.batch_consumer(
                interner, self._atheta_window_for(index)
            )
            if consumer is None:
                return None
            consumers.append(consumer)
            needs_views = needs_views or consumer.needs_views
        if needs_views and self.atheta is not None \
                and not self.atheta.has_stable_view_windows:
            return None
        self._interner = interner
        self._consumers = consumers
        return consumers

    def _atheta_window_for(self, index: int):
        """Per-process ``now -> (view, valid_until)`` AΘ reader."""
        detector = self.atheta
        if detector is None:
            empty = FailureDetectorView.empty()
            inf = float("inf")
            return lambda now, _e=empty, _i=inf: (_e, _i)
        view_window = detector.view_window
        return lambda now: view_window(index, now)

    def _gather_slice_pids(self, w1: float) -> tuple:
        """:meth:`_gather_slice`, returning interned pids instead of
        payload objects: ``(cols, pids)`` with ``pids`` an int64 array
        aligned with the merged columns (``None, None`` when empty)."""
        chunks = self._chunk_heap
        parts = []
        pid_parts = []
        while chunks and chunks[0][0] < w1:
            _, _, chunk = heappop(chunks)
            cols = chunk.cols
            times = cols[0]
            start = chunk.start
            split = start + int(
                np.searchsorted(times[start:], w1, side="left")
            )
            parts.append(cols[:, start:split])
            pid_parts.append((chunk.pid, split - start))
            if split < cols.shape[1]:
                chunk.start = split
                heappush(chunks,
                         (float(times[split]), int(cols[1, split]), chunk))
        if not parts:
            return None, None
        if len(parts) == 1:
            cols = parts[0]
            pids = np.full(cols.shape[1], pid_parts[0][0], dtype=np.int64)
            return cols, pids
        merged = np.concatenate(parts, axis=1)
        order = np.lexsort((merged[1], merged[0]))
        pids = np.empty(merged.shape[1], dtype=np.int64)
        pos = 0
        for pid, count in pid_parts:
            pids[pos:pos + count] = pid
            pos += count
        return merged[:, order], pids[order]

    def _merge_sliced_consumed(self, window: float) -> tuple[int, int]:
        """Batched-receiver main loop.

        Same slice geometry and ``(time, seq)`` total order as
        :meth:`_merge_sliced`, but maximal *runs* of consecutive delivery
        entries between queue events are consumed straight from the column
        arrays by the per-process :class:`BatchConsumer`\\ s — no per-entry
        boxing, no per-entry Python dispatch.  Queue events themselves are
        dispatched exactly as the reference engine would, with a consumer
        flush before each TICK (the only queue event that reads
        lazily-maintained ACK state).
        """
        queue = self.queue
        chunks = self._chunk_heap
        max_time = self.config.max_time
        dispatch = self._dispatch
        recycle = queue.recycle
        consumers = self._consumers
        metrics_active = self.metrics.active
        batched_counter = self._batched_consumed_counter
        receive_count = 0
        deliver_count = 0
        next_entry = queue.peek()
        stop = False
        while not stop:
            if chunks:
                head_time = chunks[0][0]
                if next_entry is not None and next_entry.time < head_time:
                    w1 = next_entry.time + window
                else:
                    w1 = head_time + window
            elif next_entry is not None:
                w1 = next_entry.time + window
            else:
                break
            cols, pids = self._gather_slice_pids(w1)
            if cols is None:
                n_w = 0
                times = seqs = dsts = None
            else:
                n_w = cols.shape[1]
                times = cols[0]
                seqs = cols[1]
                dsts = cols[2]
            i = 0
            while True:
                if self._stop_requested:
                    stop = True
                    break
                if i < n_w:
                    # End of the run starting at i: the first entry not
                    # preceding the next queue event in (time, seq) order.
                    if next_entry is None:
                        j = n_w
                    else:
                        et = next_entry.time
                        if et > times[n_w - 1]:
                            j = n_w
                        else:
                            j1 = i + int(np.searchsorted(
                                times[i:], et, side="left"))
                            j2 = i + int(np.searchsorted(
                                times[i:], et, side="right"))
                            if j1 < j2:
                                # Seqs ascend within equal times, so the
                                # tie-break is another binary search.
                                j = j1 + int(np.searchsorted(
                                    seqs[j1:j2], next_entry.seq,
                                    side="left"))
                            else:
                                j = j1
                    if j > i:
                        truncate = None
                        last = times[j - 1]
                        deadline = self._stop_deadline
                        if last > max_time or (
                            deadline is not None and last >= deadline
                        ):
                            jh = i + int(np.searchsorted(
                                times[i:j], max_time, side="right"))
                            jd = j if deadline is None else i + int(
                                np.searchsorted(times[i:j], deadline,
                                                side="left"))
                            if jh <= jd:
                                j = jh
                                truncate = "horizon"
                            else:
                                j = jd
                                truncate = "deadline"
                        if j > i:
                            alive_n = self._consume_run(
                                times, dsts, pids, i, j)
                            if metrics_active:
                                deliver_count += alive_n
                            receive_count += j - i
                            if batched_counter is not None:
                                batched_counter.inc(j - i)
                            self._batch_pending -= j - i
                            self._now = float(times[j - 1])
                            i = j
                        if truncate is not None:
                            if truncate == "horizon":
                                self._stop_reason = "horizon"
                            else:
                                self._now = float(times[j])
                            stop = True
                            break
                        continue
                    # The next queue event precedes entry i.
                    event = queue.pop()
                    et = event.time
                    if et > max_time:
                        self._stop_reason = "horizon"
                        stop = True
                        break
                    self._now = et
                    deadline = self._stop_deadline
                    if deadline is not None and et >= deadline:
                        stop = True
                        break
                    if event.kind is EventKind.TICK and \
                            event.target is not None:
                        # on_tick reads the retire condition's counters.
                        consumers[event.target].flush()
                    dispatch(event)
                    recycle(event)
                    next_entry = queue.peek()
                    continue
                # Slice entries exhausted: drain queue events before the
                # slice boundary, then advance to the next slice.
                if next_entry is not None and next_entry.time < w1:
                    event = queue.pop()
                    et = event.time
                    if et > max_time:
                        self._stop_reason = "horizon"
                        stop = True
                        break
                    self._now = et
                    deadline = self._stop_deadline
                    if deadline is not None and et >= deadline:
                        stop = True
                        break
                    if event.kind is EventKind.TICK and \
                            event.target is not None:
                        consumers[event.target].flush()
                    dispatch(event)
                    recycle(event)
                    next_entry = queue.peek()
                    continue
                break
        return receive_count, deliver_count

    def _consume_run(self, times: np.ndarray, dsts: np.ndarray,
                     pids: np.ndarray, lo: int, hi: int) -> int:
        """Consume run entries ``[lo, hi)`` through the batch consumers.

        Two phases, exchangeable because ACK handling draws no randomness,
        claims no sequence numbers and reads no MSG-written state:

        * **Phase B** — ACK receptions, grouped per destination and handed
          to ``consume_acks`` as unboxed id arrays (the hot path: ~97% of
          receptions in an ACK storm).
        * **Phase A** — MSG receptions, replayed one at a time in global
          run order: each draws the acknowledgement tag from the process
          RNG and broadcasts (claiming sequence numbers), so their RNG and
          seq consumption interleaves exactly as the reference engine's.

        URB-deliveries surfaced by Phase B are emitted afterwards sorted by
        run position — before any later queue event can record a trace
        entry — reproducing the reference trace/metrics order (at
        DELIVERIES level nothing else records between queue events).
        Returns the number of non-crashed receptions (metrics bookkeeping).
        """
        interner = self._interner
        consumers = self._consumers
        run_pids = pids[lo:hi]
        run_dsts = dsts[lo:hi].astype(np.int64)
        run_times = times[lo:hi]
        n = hi - lo
        crashed = self._crashed
        if crashed:
            alive = np.ones(n, dtype=bool)
            for c in crashed:
                alive &= run_dsts != c
        else:
            alive = None
        kinds = interner.kind_arr[run_pids]
        is_ack = kinds == PayloadInterner.KIND_ACK
        if alive is None:
            ack_idx = np.nonzero(is_ack)[0]
            msg_idx = np.nonzero(~is_ack)[0]
        else:
            ack_idx = np.nonzero(is_ack & alive)[0]
            msg_idx = np.nonzero(~is_ack & alive)[0]
        deliveries: list = []
        touched = None
        width_hist = self._consume_width_hist
        if ack_idx.size:
            ack_dsts = run_dsts[ack_idx]
            order = np.argsort(ack_dsts, kind="stable")
            sorted_idx = ack_idx[order]
            sorted_dsts = ack_dsts[order]
            bounds = np.nonzero(sorted_dsts[1:] != sorted_dsts[:-1])[0] + 1
            starts = np.concatenate(([0], bounds))
            ends = np.concatenate((bounds, [sorted_dsts.shape[0]]))
            for s, e in zip(starts.tolist(), ends.tolist()):
                dst = int(sorted_dsts[s])
                group = sorted_idx[s:e]
                if width_hist is not None:
                    width_hist.observe(e - s)
                got = consumers[dst].consume_acks(
                    run_pids[group], group, run_times[group]
                )
                if got:
                    if touched is None:
                        touched = []
                    touched.append(consumers[dst])
                    for pos, message in got:
                        deliveries.append((pos, dst, message))
        if msg_idx.size:
            payloads = interner.payloads
            is_msg = kinds == PayloadInterner.KIND_MSG
            processes = self.processes
            for k in msg_idx.tolist():
                self._now = run_times[k]
                if is_msg[k]:
                    consumers[int(run_dsts[k])].handle_msg(
                        payloads[run_pids[k]], k
                    )
                else:  # pragma: no cover - no such payloads today
                    processes[int(run_dsts[k])].on_receive(
                        payloads[run_pids[k]]
                    )
        if deliveries:
            if len(deliveries) > 1:
                deliveries.sort()
            metrics = self.metrics
            metrics_active = metrics.active
            trace = self.trace
            protocol_active = trace.protocol_active
            for pos, dst, message in deliveries:
                t = float(run_times[pos])
                if metrics_active:
                    metrics.on_urb_deliver(t, dst, message.content)
                if protocol_active:
                    trace.record(t, TraceCategory.URB_DELIVER, dst,
                                 content=message.content, tag=message.tag)
            for consumer in touched:
                consumer.run_delivered_pos.clear()
        return ack_idx.size + msg_idx.size

    def _merge_sliced(self, window: float) -> tuple[int, int]:
        """Main loop: dispatch slice-merged chunk entries + queue events.

        Replicates the reference loop's per-event order and stop semantics:
        ``(time, seq)`` total order across deliveries and queue events,
        horizon break *without* advancing ``_now``, deadline break after.
        """
        queue = self.queue
        chunks = self._chunk_heap
        max_time = self.config.max_time
        crashed = self._crashed
        processes = self.processes
        metrics_active = self.metrics.active
        dispatch = self._dispatch
        recycle = queue.recycle
        receive_count = 0
        deliver_count = 0
        next_entry = queue.peek()
        stop = False
        while not stop:
            if chunks:
                head_time = chunks[0][0]
                if next_entry is not None and next_entry.time < head_time:
                    w1 = next_entry.time + window
                else:
                    w1 = head_time + window
            elif next_entry is not None:
                w1 = next_entry.time + window
            else:
                break
            cols, pay = self._gather_slice(w1)
            n_w = 0 if cols is None else cols.shape[1]
            shared_payload = not isinstance(pay, np.ndarray)
            wt = ws = wd = wp = None
            seg_end = 0
            li = 0
            i = 0
            synced = 0
            while True:
                if self._stop_requested:
                    stop = True
                    break
                if i < n_w:
                    if i == seg_end:
                        # Box the next segment of the slice columns.  dsts
                        # stay floats: dict/set lookups hash 3.0 like 3.
                        hi = seg_end + _DISPATCH_SEGMENT
                        if hi > n_w:
                            hi = n_w
                        wt = cols[0, i:hi].tolist()
                        ws = cols[1, i:hi].tolist()
                        wd = cols[2, i:hi].tolist()
                        wp = ([pay] * (hi - i) if shared_payload
                              else pay[i:hi].tolist())
                        seg_end = hi
                        li = 0
                    t = wt[li]
                    if next_entry is not None:
                        et = next_entry.time
                        if et < t or (et == t and next_entry.seq < ws[li]):
                            event = queue.pop()
                            if et > max_time:
                                self._stop_reason = "horizon"
                                stop = True
                                break
                            self._now = et
                            deadline = self._stop_deadline
                            if deadline is not None and et >= deadline:
                                stop = True
                                break
                            if i != synced:
                                # An ENGINE_CHECK's quiescence predicate
                                # reads _batch_pending; keep it exact at
                                # every queue-event dispatch point.
                                self._batch_pending -= i - synced
                                synced = i
                            dispatch(event)
                            recycle(event)
                            next_entry = queue.peek()
                            continue
                    if t > max_time:
                        self._stop_reason = "horizon"
                        stop = True
                        break
                    self._now = t
                    deadline = self._stop_deadline
                    if deadline is not None and t >= deadline:
                        stop = True
                        break
                    receive_count += 1
                    dst = wd[li]
                    i += 1
                    li += 1
                    if dst not in crashed:
                        if metrics_active:
                            deliver_count += 1
                        processes[dst].on_receive(wp[li - 1])
                    continue
                # Slice entries exhausted: drain queue events that still
                # precede the slice boundary, then advance to the next slice
                # (chunks created meanwhile land at >= w1 by construction).
                if next_entry is not None and next_entry.time < w1:
                    et = next_entry.time
                    event = queue.pop()
                    if et > max_time:
                        self._stop_reason = "horizon"
                        stop = True
                        break
                    self._now = et
                    deadline = self._stop_deadline
                    if deadline is not None and et >= deadline:
                        stop = True
                        break
                    if i != synced:
                        self._batch_pending -= i - synced
                        synced = i
                    dispatch(event)
                    recycle(event)
                    next_entry = queue.peek()
                    continue
                break
            self._batch_pending -= i - synced
        return receive_count, deliver_count

    def _merge_per_entry(self) -> tuple[int, int]:
        """Fallback merge for runs without a positive minimum delay.

        One head tuple per chunk on the heap, re-pushed per dispatched copy
        — the pre-slicing behaviour, exact for any delay model.
        """
        queue = self.queue
        heap = self._chunk_heap
        max_time = self.config.max_time
        crashed = self._crashed
        processes = self.processes
        metrics_active = self.metrics.active
        dispatch = self._dispatch
        recycle = queue.recycle
        receive_count = 0
        deliver_count = 0
        next_entry = queue.peek()
        while True:
            if self._stop_requested:
                break
            if heap:
                head = heap[0]
                if next_entry is None or head[0] < next_entry.time or (
                    head[0] == next_entry.time and head[1] < next_entry.seq
                ):
                    time, seq, chunk = heappop(heap)
                    if time > max_time:
                        self._stop_reason = "horizon"
                        break
                    self._now = time
                    if (self._stop_deadline is not None
                            and time >= self._stop_deadline):
                        break
                    receive_count += 1
                    self._batch_pending -= 1
                    cols = chunk.cols
                    start = chunk.start
                    dst = int(cols[2, start])
                    start += 1
                    if start < cols.shape[1]:
                        chunk.start = start
                        heappush(heap, (float(cols[0, start]),
                                        int(cols[1, start]), chunk))
                    if dst not in crashed:
                        if metrics_active:
                            deliver_count += 1
                        processes[dst].on_receive(chunk.payload)
                    continue
            if next_entry is None:
                break
            event = queue.pop()
            if event.time > max_time:
                self._stop_reason = "horizon"
                break
            self._now = event.time
            if (self._stop_deadline is not None
                    and event.time >= self._stop_deadline):
                break
            dispatch(event)
            recycle(event)
            next_entry = queue.peek()
        return receive_count, deliver_count

    #: broadcast_from consults this before taking the batched path; the
    #: per-event fallback (super().run()) never sets it.
    _fast_active: bool = False
    _batch_pending: int = 0
    #: Payload interning table + per-process consumers of the current run;
    #: ``None`` whenever the batched receiver is not active (broadcast_from
    #: then skips interning entirely).
    _interner: Optional[PayloadInterner] = None
    _consumers: Optional[list] = None
    #: Cached obs instrument handles (resolved once per run, outside the
    #: hot loop); ``None`` when obs is disabled.
    _batched_consumed_counter: Any = None
    _consume_width_hist: Any = None
