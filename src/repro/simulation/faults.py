"""Crash-fault injection.

The paper assumes the *crash-stop* failure model (§II): a process executes
its algorithm correctly until it crashes; a crashed process executes no
further statements and never recovers.  A process that never crashes in a
run is *correct* in that run, otherwise it is *faulty*.

:class:`CrashSchedule` is the simulator's ground truth for a run's failure
pattern: it maps each process index to its crash time (``NEVER`` for correct
processes).  Both the engine (to stop dispatching to crashed processes) and
the failure-detector oracles (which are formally defined over the failure
pattern) read it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from .simtime import NEVER, SimTime, is_never, validate_time


@dataclass(frozen=True)
class CrashSchedule:
    """The failure pattern of a run.

    Attributes
    ----------
    n_processes:
        Total number of processes.
    crash_times:
        Mapping from process index to crash time.  Indices absent from the
        mapping never crash.
    """

    n_processes: int
    crash_times: Mapping[int, SimTime] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_processes < 1:
            raise ValueError("n_processes must be positive")
        normalised: dict[int, SimTime] = {}
        for index, time in dict(self.crash_times).items():
            if not isinstance(index, int) or not (0 <= index < self.n_processes):
                raise ValueError(
                    f"crash schedule index {index!r} out of range "
                    f"[0, {self.n_processes})"
                )
            if not is_never(time):
                validate_time(time, name=f"crash time of process {index}")
                normalised[index] = float(time)
        if len(normalised) >= self.n_processes:
            raise ValueError(
                "the paper's model assumes at least one correct process "
                f"(t <= n-1); got {len(normalised)} crashes for "
                f"{self.n_processes} processes"
            )
        object.__setattr__(self, "crash_times", dict(normalised))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def none(cls, n_processes: int) -> "CrashSchedule":
        """A failure-free run."""
        return cls(n_processes=n_processes, crash_times={})

    @classmethod
    def crash_at(cls, n_processes: int, crashes: Mapping[int, SimTime]) -> "CrashSchedule":
        """Crash the given processes at the given times."""
        return cls(n_processes=n_processes, crash_times=dict(crashes))

    @classmethod
    def crash_initially(cls, n_processes: int, indices: Iterable[int]) -> "CrashSchedule":
        """Crash the given processes at time zero (they never take a step)."""
        return cls(n_processes=n_processes,
                   crash_times={i: 0.0 for i in indices})

    @classmethod
    def random_crashes(
        cls,
        n_processes: int,
        n_crashes: int,
        rng: random.Random,
        *,
        earliest: SimTime = 0.0,
        latest: SimTime = 50.0,
    ) -> "CrashSchedule":
        """Crash *n_crashes* uniformly chosen processes at uniform times.

        Parameters
        ----------
        n_processes:
            Total number of processes.
        n_crashes:
            Number of faulty processes (must leave at least one correct).
        rng:
            Random substream used for both the victim choice and the times.
        earliest, latest:
            Crash times are drawn uniformly from ``[earliest, latest]``.
        """
        if n_crashes < 0:
            raise ValueError("n_crashes must be non-negative")
        if n_crashes >= n_processes:
            raise ValueError("at least one process must remain correct")
        victims = rng.sample(range(n_processes), n_crashes)
        times = {v: rng.uniform(earliest, latest) for v in victims}
        return cls(n_processes=n_processes, crash_times=times)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def crash_time(self, index: int) -> SimTime:
        """Crash time of process *index* (``NEVER`` if it is correct)."""
        self._check_index(index)
        return self.crash_times.get(index, NEVER)

    def is_correct(self, index: int) -> bool:
        """Whether process *index* is correct *in this run* (never crashes)."""
        self._check_index(index)
        return index not in self.crash_times

    def is_faulty(self, index: int) -> bool:
        """Whether process *index* crashes at some point in this run."""
        return not self.is_correct(index)

    def is_crashed_at(self, index: int, time: SimTime) -> bool:
        """Whether process *index* has already crashed at simulated *time*."""
        return self.crash_time(index) <= time

    def correct_indices(self) -> tuple[int, ...]:
        """Indices of the correct processes (paper's ``Correct`` set).

        Cached after the first call: the schedule is frozen, and failure
        detectors read this set on every view query.
        """
        cached = self.__dict__.get("_correct_indices")
        if cached is None:
            crash_times = self.crash_times
            cached = tuple(
                i for i in range(self.n_processes) if i not in crash_times
            )
            object.__setattr__(self, "_correct_indices", cached)
        return cached

    def faulty_indices(self) -> tuple[int, ...]:
        """Indices of the faulty processes (paper's ``Faulty`` set)."""
        return tuple(i for i in range(self.n_processes) if self.is_faulty(i))

    def alive_indices_at(self, time: SimTime) -> tuple[int, ...]:
        """Indices of processes that have not crashed by *time*."""
        return tuple(
            i for i in range(self.n_processes) if not self.is_crashed_at(i, time)
        )

    def crashed_indices_at(self, time: SimTime) -> tuple[int, ...]:
        """Indices of processes that have crashed by *time*."""
        return tuple(
            i for i in range(self.n_processes) if self.is_crashed_at(i, time)
        )

    @property
    def n_faulty(self) -> int:
        """Number of faulty processes (paper's ``t`` for this run)."""
        return len(self.crash_times)

    @property
    def n_correct(self) -> int:
        """Number of correct processes."""
        return self.n_processes - self.n_faulty

    def has_correct_majority(self) -> bool:
        """Whether a majority of processes are correct (``t < n/2``)."""
        return self.n_faulty < self.n_processes / 2

    def __iter__(self) -> Iterator[tuple[int, SimTime]]:
        """Iterate over ``(index, crash_time)`` pairs for faulty processes."""
        return iter(sorted(self.crash_times.items()))

    def describe(self) -> str:
        """Human-readable summary used in reports."""
        if not self.crash_times:
            return "no crashes"
        parts = [f"p{i}@{t:g}" for i, t in sorted(self.crash_times.items())]
        return ", ".join(parts)

    # ------------------------------------------------------------------ #
    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.n_processes):
            raise IndexError(
                f"process index {index} out of range [0, {self.n_processes})"
            )
