"""The per-process environment handed to protocol code.

:class:`ProcessEnvironment` implements
:class:`repro.core.interfaces.EnvironmentAPI`: it is the *only* object a
protocol process ever touches.  It deliberately exposes nothing that would
break the paper's system model:

* no process identifiers (the index is stored privately for the engine's
  bookkeeping only),
* no clock (times are recorded engine-side),
* no topology or channel access beyond the anonymous ``broadcast``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any

from ..core.messages import TaggedMessage
from ..failure_detectors.base import FailureDetectorView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import SimulationEngine


class ProcessEnvironment:
    """Anonymous runtime environment of one simulated process."""

    def __init__(self, index: int, engine: "SimulationEngine") -> None:
        self._index = index
        self._engine = engine
        self._random = engine.random_source.for_process(index)

    # ------------------------------------------------------------------ #
    # EnvironmentAPI
    # ------------------------------------------------------------------ #
    def broadcast(self, payload: Any) -> None:
        """The paper's ``broadcast(m)``: one copy to every process."""
        self._engine.broadcast_from(self._index, payload)

    @property
    def random(self) -> random.Random:
        """Process-local random substream (tags)."""
        return self._random

    def atheta(self) -> FailureDetectorView:
        """Read the AΘ variable (empty view if no detector is configured)."""
        return self._engine.atheta_view(self._index)

    def apstar(self) -> FailureDetectorView:
        """Read the AP\\* variable (empty view if no detector is configured)."""
        return self._engine.apstar_view(self._index)

    def notify_delivery(self, message: TaggedMessage) -> None:
        """Report a URB-delivery to the platform (tracing/metrics/hooks)."""
        self._engine.on_process_delivered(self._index, message)

    def notify_retire(self, message: TaggedMessage) -> None:
        """Report the retirement of *message* from the retransmission set."""
        self._engine.on_process_retired(self._index, message)

    # ------------------------------------------------------------------ #
    # engine-side helpers (not part of EnvironmentAPI)
    # ------------------------------------------------------------------ #
    @property
    def engine_index(self) -> int:
        """The process index — for engine/analysis use, never protocol code."""
        return self._index
