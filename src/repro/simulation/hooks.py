"""Engine hooks.

Hooks let experiments observe or steer a run without modifying protocol or
engine code.  The impossibility demonstration (paper Theorem 2) is built this
way: a hook crashes a process the instant it URB-delivers, reproducing the
adversarial run ``R2`` of the proof.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.messages import TaggedMessage
from .simtime import SimTime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import SimulationEngine


class EngineHook:
    """Base class of engine hooks; every callback is a no-op by default."""

    def on_run_start(self, engine: "SimulationEngine") -> None:
        """Called once before the first event is dispatched."""

    def on_deliver(self, engine: "SimulationEngine", process: int,
                   message: TaggedMessage, now: SimTime) -> None:
        """Called right after *process* URB-delivers *message*."""

    def on_send(self, engine: "SimulationEngine", process: int, payload: object,
                now: SimTime) -> None:
        """Called when *process* hands *payload* to the network."""

    def on_crash(self, engine: "SimulationEngine", process: int,
                 now: SimTime) -> None:
        """Called when *process* crashes."""

    def on_run_end(self, engine: "SimulationEngine", now: SimTime) -> None:
        """Called once after the last event is dispatched."""


class CrashOnDeliveryHook(EngineHook):
    """Crash selected processes the moment they URB-deliver anything.

    This is the adversary of the impossibility proof (Theorem 2, run
    ``R2``): the processes of one partition side deliver a message and then
    crash before any of their messages can reach the other side.

    Parameters
    ----------
    targets:
        Indices of the processes to crash on delivery.  ``None`` means every
        process.
    """

    def __init__(self, targets: set[int] | frozenset[int] | None = None) -> None:
        self.targets = frozenset(targets) if targets is not None else None
        #: ``(process, time)`` pairs for every crash this hook performed.
        self.crashes: list[tuple[int, SimTime]] = []

    def on_deliver(self, engine: "SimulationEngine", process: int,
                   message: TaggedMessage, now: SimTime) -> None:
        if self.targets is not None and process not in self.targets:
            return
        if engine.is_crashed(process):
            return
        engine.crash_now(process)
        self.crashes.append((process, now))


class DeliveryTimelineHook(EngineHook):
    """Record ``(time, process, content)`` for every delivery (experiments)."""

    def __init__(self) -> None:
        self.deliveries: list[tuple[SimTime, int, object]] = []

    def on_deliver(self, engine: "SimulationEngine", process: int,
                   message: TaggedMessage, now: SimTime) -> None:
        self.deliveries.append((now, process, message.content))


class SendBudgetHook(EngineHook):
    """Abort the run once a global send budget is exceeded.

    A safety valve for property-based tests that explore extreme
    configurations: rather than letting a pathological configuration grind
    through millions of sends, the run is stopped and flagged.
    """

    def __init__(self, max_sends: int) -> None:
        if max_sends < 1:
            raise ValueError("max_sends must be positive")
        self.max_sends = max_sends
        self.exceeded = False
        self._sends = 0

    def on_send(self, engine: "SimulationEngine", process: int, payload: object,
                now: SimTime) -> None:
        self._sends += 1
        if self._sends > self.max_sends and not self.exceeded:
            self.exceeded = True
            engine.request_stop("send budget exceeded")
