"""Discrete-event simulation substrate for the anonymous system model.

The engine-level names (:class:`SimulationEngine`, :class:`ProcessEnvironment`,
the hooks) are exported lazily (PEP 562): the engine imports protocol-layer
modules, and loading it eagerly here would create an import cycle when
low-level modules such as :mod:`repro.simulation.simtime` are pulled in by
the protocol layer itself.
"""

from .config import SimulationConfig, StopConditions
from .events import BroadcastCommand, Event, EventKind, EventStats
from .faults import CrashSchedule
from .metrics import LatencySample, MetricsCollector, MetricsLevel, MetricsSummary
from .rng import RandomSource, derive_seed
from .scheduler import EventQueue, QueuedEvent, SchedulingError
from .simtime import NEVER, TIME_ZERO, SimTime, TimeWindow
from .tracing import TraceCategory, TraceEvent, TraceLevel, TraceRecorder

#: Names resolved lazily to avoid import cycles with the protocol layer.
_LAZY_EXPORTS = {
    "SimulationEngine": ("repro.simulation.engine", "SimulationEngine"),
    "SimulationResult": ("repro.simulation.engine", "SimulationResult"),
    "ProcessFactory": ("repro.simulation.engine", "ProcessFactory"),
    "ProcessEnvironment": ("repro.simulation.environment", "ProcessEnvironment"),
    "EngineHook": ("repro.simulation.hooks", "EngineHook"),
    "CrashOnDeliveryHook": ("repro.simulation.hooks", "CrashOnDeliveryHook"),
    "DeliveryTimelineHook": ("repro.simulation.hooks", "DeliveryTimelineHook"),
    "SendBudgetHook": ("repro.simulation.hooks", "SendBudgetHook"),
}


def __getattr__(name: str):
    """Resolve the lazily exported engine-level names (PEP 562)."""
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(list(globals()) + list(_LAZY_EXPORTS))


__all__ = [
    "BroadcastCommand",
    "CrashOnDeliveryHook",
    "CrashSchedule",
    "DeliveryTimelineHook",
    "EngineHook",
    "Event",
    "EventKind",
    "EventQueue",
    "EventStats",
    "LatencySample",
    "MetricsCollector",
    "MetricsLevel",
    "MetricsSummary",
    "NEVER",
    "ProcessEnvironment",
    "ProcessFactory",
    "QueuedEvent",
    "RandomSource",
    "SchedulingError",
    "SendBudgetHook",
    "SimTime",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "StopConditions",
    "TIME_ZERO",
    "TimeWindow",
    "TraceCategory",
    "TraceEvent",
    "TraceLevel",
    "TraceRecorder",
    "derive_seed",
]
