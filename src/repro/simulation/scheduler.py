"""Binary-heap event queue used by the simulation engine.

The queue enforces two invariants that the rest of the simulator relies on:

* *Monotonicity* — events are popped in non-decreasing time order and an
  event can never be scheduled in the past relative to the last popped time.
* *Determinism* — events scheduled for the same instant are popped in the
  order they were pushed (FIFO tie-break via a monotonically increasing
  sequence counter).
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, Optional

from .events import Event, EventKind
from .simtime import SimTime, validate_time


class SchedulingError(RuntimeError):
    """Raised when an event would violate the scheduler's invariants."""


class EventQueue:
    """A deterministic priority queue of :class:`~repro.simulation.events.Event`.

    The queue assigns sequence numbers itself; callers provide only the time,
    kind, target and payload.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._next_seq: int = 0
        self._last_popped_time: SimTime = 0.0
        self._pushed: int = 0
        self._popped: int = 0

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        time: SimTime,
        kind: EventKind,
        target: Optional[int] = None,
        payload: Any = None,
    ) -> Event:
        """Create and enqueue an event.

        Raises
        ------
        SchedulingError
            If *time* precedes the time of the last popped event (scheduling
            into the past would break causality).
        """
        validate_time(time, name="scheduled time")
        if time < self._last_popped_time:
            raise SchedulingError(
                f"cannot schedule event at t={time} before current "
                f"simulation time t={self._last_popped_time}"
            )
        event = Event(
            time=time, seq=self._next_seq, kind=kind, target=target, payload=payload
        )
        self._next_seq += 1
        self._pushed += 1
        heapq.heappush(self._heap, event)
        return event

    def push_event(self, event: Event) -> None:
        """Enqueue an already-constructed event (used in tests)."""
        if event.time < self._last_popped_time:
            raise SchedulingError(
                f"cannot schedule event at t={event.time} before current "
                f"simulation time t={self._last_popped_time}"
            )
        self._pushed += 1
        heapq.heappush(self._heap, event)

    # ------------------------------------------------------------------ #
    # consumption
    # ------------------------------------------------------------------ #
    def pop(self) -> Event:
        """Pop and return the earliest event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        event = heapq.heappop(self._heap)
        self._last_popped_time = event.time
        self._popped += 1
        return event

    def peek(self) -> Optional[Event]:
        """Return (without removing) the earliest event, or ``None``."""
        return self._heap[0] if self._heap else None

    def peek_time(self) -> Optional[SimTime]:
        """Return the time of the earliest event, or ``None`` if empty."""
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:
        """Iterate over pending events in time order (non-destructive)."""
        return iter(sorted(self._heap))

    @property
    def current_time(self) -> SimTime:
        """Time of the last popped event (the engine's notion of "now")."""
        return self._last_popped_time

    @property
    def pushed_count(self) -> int:
        """Total number of events ever pushed."""
        return self._pushed

    @property
    def popped_count(self) -> int:
        """Total number of events ever popped."""
        return self._popped

    def pending_by_kind(self) -> dict[EventKind, int]:
        """Return a histogram of pending events by kind (for diagnostics)."""
        counts: dict[EventKind, int] = {kind: 0 for kind in EventKind}
        for event in self._heap:
            counts[event.kind] += 1
        return counts

    def drop_pending(self, kind: EventKind) -> int:
        """Remove every pending event of *kind*; return how many were removed.

        Used by early-stop logic to discard future ticks once a run has been
        declared finished.
        """
        kept = [event for event in self._heap if event.kind is not kind]
        removed = len(self._heap) - len(kept)
        if removed:
            heapq.heapify(kept)
            self._heap = kept
        return removed
