"""Binary-heap event queue used by the simulation engine.

The queue enforces two invariants that the rest of the simulator relies on:

* *Monotonicity* — events are popped in non-decreasing time order and an
  event can never be scheduled in the past relative to the last popped time.
* *Determinism* — events scheduled for the same instant are popped in the
  order they were pushed (FIFO tie-break via a monotonically increasing
  sequence counter).

Hot-path design (see DESIGN.md §Performance):

* The heap stores ``(time, seq, entry)`` tuples, so ``heapq`` orders events
  with C-level tuple comparisons instead of calling a Python ``__lt__`` —
  the single largest cost of the original implementation.  Sequence numbers
  assigned by :meth:`EventQueue.schedule` are unique, so the comparison
  never reaches the entry object.
* Entries are mutable, slotted :class:`QueuedEvent` objects drawn from a
  free list.  The engine returns each entry with :meth:`EventQueue.recycle`
  after dispatching it, so steady-state simulation allocates no event
  objects at all.
* :meth:`EventQueue.drop_pending` uses *lazy deletion*: entries are marked
  dead in place and skipped when they surface, instead of filtering and
  re-heapifying the entire heap.
* Pending-event counts per kind are maintained incrementally, making
  :meth:`EventQueue.pending_by_kind` O(#kinds) instead of O(#pending) —
  the engine's quiescence check reads it on every self-check event.

None of this changes observable ordering: the pop order is still exactly
``(time, seq)``, bit-identical to the original implementation.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Iterator, Optional, Union

from .events import Event, EventKind
from .simtime import SimTime, validate_time

#: Upper bound on the entry free list; beyond this, popped entries are left
#: to the garbage collector (prevents pathological growth after bursts).
_MAX_POOL = 4096

#: Compact the heap when dead entries outnumber live ones past this count.
_COMPACT_THRESHOLD = 1024


class SchedulingError(RuntimeError):
    """Raised when an event would violate the scheduler's invariants."""


class QueuedEvent:
    """A pooled, mutable scheduled event.

    Exposes the same read surface as :class:`~repro.simulation.events.Event`
    (``time``, ``seq``, ``kind``, ``target``, ``payload``, ``sort_key``,
    ``describe``); unlike ``Event`` it is reused across schedule/pop cycles
    by the queue's free list, so holders must not retain entries after
    handing them to :meth:`EventQueue.recycle`.
    """

    __slots__ = ("time", "seq", "kind", "target", "payload", "alive")

    def __init__(
        self,
        time: SimTime,
        seq: int,
        kind: EventKind,
        target: Optional[int],
        payload: Any,
    ) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.target = target
        self.payload = payload
        self.alive = True

    @property
    def sort_key(self) -> tuple[SimTime, int]:
        """The total-order key used by the scheduler."""
        return (self.time, self.seq)

    def __lt__(self, other: "QueuedEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def describe(self) -> str:
        """Human-readable one-line description (used in debug traces)."""
        target = "engine" if self.target is None else f"p[{self.target}]"
        return f"{self.kind.value}@{self.time:.4f}->{target}"


class EventQueue:
    """A deterministic priority queue of simulation events.

    The queue assigns sequence numbers itself; callers provide only the time,
    kind, target and payload.
    """

    def __init__(self) -> None:
        #: Heap of ``(time, seq, entry)`` tuples (may contain dead entries).
        self._heap: list[tuple[SimTime, int, QueuedEvent]] = []
        self._free: list[QueuedEvent] = []
        self._next_seq: int = 0
        self._last_popped_time: SimTime = 0.0
        self._pushed: int = 0
        self._popped: int = 0
        self._live: int = 0
        self._dead: int = 0
        #: Live pending events per kind, indexed by ``EventKind.slot``.
        self._pending: list[int] = [0] * len(EventKind)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        time: SimTime,
        kind: EventKind,
        target: Optional[int] = None,
        payload: Any = None,
    ) -> QueuedEvent:
        """Create and enqueue an event.

        Raises
        ------
        SchedulingError
            If *time* precedes the time of the last popped event (scheduling
            into the past would break causality).
        """
        if not time >= self._last_popped_time:  # also catches NaN
            if time >= 0.0:
                raise SchedulingError(
                    f"cannot schedule event at t={time} before current "
                    f"simulation time t={self._last_popped_time}"
                )
            validate_time(time, name="scheduled time")
        if target is not None and target < 0:
            raise ValueError("event target must be a non-negative index")
        seq = self._next_seq
        self._next_seq = seq + 1
        free = self._free
        if free:
            entry = free.pop()
            entry.time = time
            entry.seq = seq
            entry.kind = kind
            entry.target = target
            entry.payload = payload
            entry.alive = True
        else:
            entry = QueuedEvent(time, seq, kind, target, payload)
        heappush(self._heap, (time, seq, entry))
        self._pushed += 1
        self._live += 1
        self._pending[kind.slot] += 1
        return entry

    def push_event(self, event: Union[Event, QueuedEvent]) -> None:
        """Enqueue an already-constructed event (used in tests)."""
        if event.time < self._last_popped_time:
            raise SchedulingError(
                f"cannot schedule event at t={event.time} before current "
                f"simulation time t={self._last_popped_time}"
            )
        entry = QueuedEvent(
            event.time, event.seq, event.kind, event.target, event.payload
        )
        heappush(self._heap, (entry.time, entry.seq, entry))
        self._pushed += 1
        self._live += 1
        self._pending[entry.kind.slot] += 1

    def claim_seqs(self, count: int) -> int:
        """Reserve *count* consecutive sequence numbers and return the first.

        Used by batching engine backends (see
        :mod:`repro.simulation.vectorized`) that keep delivery events outside
        the heap: claiming the numbers through the queue's counter keeps
        batched events on the same global ``(time, seq)`` total order as
        heap-scheduled ticks/checks, which is exactly the reference engine's
        dispatch order.
        """
        if count < 0:
            raise ValueError("cannot claim a negative number of seqs")
        seq = self._next_seq
        self._next_seq = seq + count
        return seq

    # ------------------------------------------------------------------ #
    # consumption
    # ------------------------------------------------------------------ #
    def pop(self) -> QueuedEvent:
        """Pop and return the earliest live event.

        Raises
        ------
        IndexError
            If the queue is empty.
        """
        heap = self._heap
        while heap:
            entry = heappop(heap)[2]
            if entry.alive:
                self._last_popped_time = entry.time
                self._popped += 1
                self._live -= 1
                self._pending[entry.kind.slot] -= 1
                return entry
            self._dead -= 1
            self._retire(entry)
        raise IndexError("pop from an empty EventQueue")

    def _retire(self, entry: QueuedEvent) -> None:
        """Drop an entry's references and pool it for reuse (if room)."""
        if len(self._free) < _MAX_POOL:
            entry.payload = None
            entry.target = None
            self._free.append(entry)

    def recycle(self, entry: QueuedEvent) -> None:
        """Return a popped entry to the free list.

        Only the engine's dispatch loop calls this (immediately after it is
        done with the event); external callers that retain popped events
        simply never recycle them, which is always safe.
        """
        self._retire(entry)

    def peek(self) -> Optional[QueuedEvent]:
        """Return (without removing) the earliest event, or ``None``."""
        self._prune_dead_top()
        heap = self._heap
        return heap[0][2] if heap else None

    def peek_time(self) -> Optional[SimTime]:
        """Return the time of the earliest event, or ``None`` if empty."""
        self._prune_dead_top()
        heap = self._heap
        return heap[0][0] if heap else None

    def _prune_dead_top(self) -> None:
        heap = self._heap
        while heap and not heap[0][2].alive:
            entry = heappop(heap)[2]
            self._dead -= 1
            self._retire(entry)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __iter__(self) -> Iterator[QueuedEvent]:
        """Iterate over pending live events in time order (non-destructive)."""
        return iter(
            [item[2] for item in sorted(self._heap) if item[2].alive]
        )

    @property
    def current_time(self) -> SimTime:
        """Time of the last popped event (the engine's notion of "now")."""
        return self._last_popped_time

    @property
    def pushed_count(self) -> int:
        """Total number of events ever pushed."""
        return self._pushed

    @property
    def popped_count(self) -> int:
        """Total number of events ever popped."""
        return self._popped

    @property
    def pool_size(self) -> int:
        """Current size of the entry free list (diagnostics/tests)."""
        return len(self._free)

    @property
    def dead_count(self) -> int:
        """Number of lazily-deleted entries still in the heap."""
        return self._dead

    def pending_by_kind(self) -> dict[EventKind, int]:
        """Histogram of pending live events by kind (O(#kinds))."""
        return {kind: self._pending[kind.slot] for kind in EventKind}

    def pending_of(self, kind: EventKind) -> int:
        """Number of pending live events of *kind* (O(1))."""
        return self._pending[kind.slot]

    def drop_pending(self, kind: EventKind) -> int:
        """Lazily remove every pending event of *kind*; return the count.

        Entries are marked dead in place and skipped (and recycled) when
        they reach the top of the heap; the heap is only physically rebuilt
        when dead entries pile up past a threshold.
        """
        removed = 0
        for item in self._heap:
            entry = item[2]
            if entry.alive and entry.kind is kind:
                entry.alive = False
                entry.payload = None
                removed += 1
        if removed:
            self._live -= removed
            self._dead += removed
            self._pending[kind.slot] -= removed
            if self._dead > _COMPACT_THRESHOLD and self._dead > self._live:
                self._compact()
        return removed

    def _compact(self) -> None:
        """Physically drop dead entries (rare; amortised by the threshold)."""
        kept = []
        for item in self._heap:
            if item[2].alive:
                kept.append(item)
            else:
                self._retire(item[2])
        heapify(kept)
        self._heap = kept
        self._dead = 0
