"""Low-level simulation configuration.

:class:`SimulationConfig` captures the engine-level knobs shared by every
protocol and experiment: process count, retransmission period (the paper's
Task 1 cadence), horizon, stopping behaviour and the master seed.  The
higher-level, user-facing :class:`repro.experiments.config.Scenario` builds a
``SimulationConfig`` plus the network, oracle and workload objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from .simtime import NEVER, SimTime, validate_duration, validate_time


@dataclass(frozen=True, slots=True)
class StopConditions:
    """Early-stop behaviour of the engine.

    Attributes
    ----------
    stop_when_all_correct_delivered:
        Stop once every correct process has URB-delivered every payload the
        workload asked any process to broadcast.  (The run also keeps going
        until in-flight channel messages drain, so traces stay causal.)
    stop_when_quiescent:
        Stop once the protocol is *quiescent*: no process has any pending
        retransmission obligation and no channel message is in flight.
        Only meaningful for protocols that can quiesce (Algorithm 2);
        Algorithm 1 never satisfies it.
    drain_grace_period:
        Extra simulated time to keep running after a stop predicate first
        holds.  A non-zero grace period lets the trace show the (absence of)
        further traffic, which the quiescence analysis relies on.
    """

    stop_when_all_correct_delivered: bool = False
    stop_when_quiescent: bool = False
    drain_grace_period: float = 0.0

    def __post_init__(self) -> None:
        validate_duration(self.drain_grace_period, name="drain_grace_period",
                          allow_zero=True)

    @property
    def any_enabled(self) -> bool:
        """Whether any early-stop predicate is active."""
        return self.stop_when_all_correct_delivered or self.stop_when_quiescent


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Engine-level parameters of a single simulated run.

    Attributes
    ----------
    n_processes:
        Number of anonymous processes ``n`` (paper notation ``|Π| = n``).
    tick_interval:
        Period of the Task 1 retransmission loop.  The paper's «repeat
        forever» becomes one retransmission round per tick for every message
        still in the process's ``MSG`` set.
    max_time:
        Simulation horizon.  The run always terminates at this time even if
        no early-stop predicate fires (Algorithm 1 is non-quiescent, so some
        horizon is required).
    seed:
        Master seed from which every random substream is derived.
    check_interval:
        Period of the engine's self-check event used to evaluate early-stop
        predicates.  Smaller values detect stop conditions sooner at a small
        scheduling cost.
    stop:
        Early-stop behaviour, see :class:`StopConditions`.
    metadata:
        Free-form experiment metadata propagated into results.
    """

    n_processes: int
    tick_interval: float = 1.0
    max_time: SimTime = 200.0
    seed: int = 0
    check_interval: float = 1.0
    stop: StopConditions = field(default_factory=StopConditions)
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.n_processes, int) or self.n_processes < 1:
            raise ValueError(
                f"n_processes must be a positive integer, got {self.n_processes!r}"
            )
        validate_duration(self.tick_interval, name="tick_interval")
        if self.max_time is not NEVER:
            validate_time(self.max_time, name="max_time")
        if self.max_time <= 0:
            raise ValueError("max_time must be positive")
        validate_duration(self.check_interval, name="check_interval")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise TypeError("seed must be an int")

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def with_seed(self, seed: int) -> "SimulationConfig":
        """Return a copy of the config with a different master seed."""
        return replace(self, seed=seed)

    def with_max_time(self, max_time: SimTime) -> "SimulationConfig":
        """Return a copy of the config with a different horizon."""
        return replace(self, max_time=max_time)

    @property
    def process_indices(self) -> range:
        """The range of process indices ``0 .. n-1``."""
        return range(self.n_processes)

    def majority_threshold(self) -> int:
        """Smallest integer strictly greater than ``n/2``.

        This is the number of distinct acknowledgements Algorithm 1 waits for
        before URB-delivering (paper §III: «more than n/2 different
        tag_ack»).
        """
        return self.n_processes // 2 + 1

    def describe(self) -> str:
        """One-line human readable description used in logs and reports."""
        return (
            f"n={self.n_processes} tick={self.tick_interval} "
            f"horizon={self.max_time} seed={self.seed}"
        )
