"""Built-in simulation-engine backends.

This module populates the :data:`repro.registry.engines` registry (it is the
registry's lazy loader target).  A *backend* is a dispatch strategy for the
same simulation: every backend receives the exact keyword arguments of
:class:`~repro.simulation.engine.SimulationEngine` and must produce
bit-identical trace digests, delivery logs and metrics.  The parity suite
(:mod:`repro.experiments.parity`) enforces this pairwise against
``reference`` in CI.

* ``reference`` — the per-event heap dispatcher
  (:class:`~repro.simulation.engine.SimulationEngine` itself), byte-for-byte
  unchanged by the backend split.  Always correct, always available; the
  baseline every other backend is measured against.
* ``vectorized`` — :class:`~repro.simulation.vectorized.VectorizedEngine`,
  a struct-of-arrays core that batches the delivery fan-out of each
  broadcast (NumPy time/seq/destination arrays per batch, prefetched
  per-channel loss/delay vectors) and merges batches with the event heap on
  the reference ``(time, seq)`` total order.  Falls back to per-event
  dispatch — silently, and bit-identically — whenever a
  :class:`~repro.explore.controller.ScheduleController`, engine hooks or a
  FULL trace level are active, so explore/replay stay exact.
"""

from __future__ import annotations

from typing import Any

from ..registry import register_engine
from .engine import SimulationEngine
from .vectorized import VectorizedEngine


@register_engine(
    "reference",
    description="per-event heap dispatch (the bit-exact baseline)",
)
def _build_reference(**engine_kwargs: Any) -> SimulationEngine:
    return SimulationEngine(**engine_kwargs)


@register_engine(
    "vectorized",
    batched=True,
    description=(
        "struct-of-arrays batched delivery dispatch; bit-identical to "
        "reference, falls back to per-event under controllers/hooks/FULL "
        "trace"
    ),
)
def _build_vectorized(**engine_kwargs: Any) -> VectorizedEngine:
    return VectorizedEngine(**engine_kwargs)
