"""Named, seeded random substreams.

Every source of randomness in a simulation (per-process tag generation,
per-channel loss decisions, per-channel delays, failure-detector learning
delays, workload generation, …) draws from its own named substream derived
from the run's master seed.  This guarantees:

* **Reproducibility** — the same master seed always produces the same run.
* **Independence of components** — adding random draws to one component
  (e.g. a new loss model) does not perturb the stream seen by another,
  so experiments remain comparable across code versions.

Substream seeds are derived with SHA-256 over ``(master_seed, name)`` so they
are stable across Python versions and processes (unlike ``hash()``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit substream seed from *master_seed* and *name*."""
    if not isinstance(master_seed, int):
        raise TypeError(f"master seed must be an int, got {master_seed!r}")
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomSource:
    """Factory of named, independent random substreams.

    Parameters
    ----------
    master_seed:
        The run's master seed.  Two :class:`RandomSource` instances built
        with the same master seed hand out identical substreams.
    """

    def __init__(self, master_seed: int = 0) -> None:
        if not isinstance(master_seed, int) or isinstance(master_seed, bool):
            raise TypeError("master_seed must be an int")
        self._master_seed = master_seed
        self._streams: dict[str, random.Random] = {}
        self._numpy_streams: dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this source was built from."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the (cached) ``random.Random`` substream called *name*."""
        if not name:
            raise ValueError("stream name must be a non-empty string")
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self._master_seed, name))
            self._streams[name] = stream
        return stream

    def fresh_stream(self, name: str) -> random.Random:
        """Return a brand-new (non-cached) substream called *name*.

        Useful in tests that need to replay a component's stream from the
        beginning without affecting the cached instance.
        """
        return random.Random(derive_seed(self._master_seed, name))

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return the (cached) NumPy generator substream called *name*."""
        if not name:
            raise ValueError("stream name must be a non-empty string")
        gen = self._numpy_streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._master_seed, name))
            self._numpy_streams[name] = gen
        return gen

    def spawn(self, suffix: str) -> "RandomSource":
        """Derive a child :class:`RandomSource` (e.g. one per repetition)."""
        return RandomSource(derive_seed(self._master_seed, f"spawn:{suffix}"))

    # Convenience names used throughout the code base ------------------- #
    def for_process(self, index: int) -> random.Random:
        """Substream used by process *index* for tag generation."""
        return self.stream(f"process:{index}")

    def for_channel(self, src: int, dst: int) -> random.Random:
        """Substream used by the directed channel *src* → *dst*."""
        return self.stream(f"channel:{src}->{dst}")

    def for_component(self, name: str, index: Optional[int] = None) -> random.Random:
        """Substream for an arbitrary named component."""
        full = name if index is None else f"{name}:{index}"
        return self.stream(full)
