"""Structured trace recording.

A :class:`TraceRecorder` collects a flat, time-ordered list of
:class:`TraceEvent` records describing everything observable about a run:
sends, drops, channel deliveries, URB-deliveries, crashes, broadcasts and
retransmission rounds.  The analysis layer (``repro.analysis``) is written
entirely against traces, which keeps property checking independent from the
protocol implementations being checked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional

from .simtime import SimTime


class TraceLevel(enum.IntEnum):
    """How much a :class:`TraceRecorder` records.

    Levels are cumulative: each level records everything the level below it
    does.  ``FULL`` (the default) reproduces the historic behaviour exactly;
    ``DELIVERIES`` keeps only protocol-level observables (broadcasts,
    deliveries, crashes, retirements) and skips the per-copy channel events
    that dominate trace size; ``OFF`` records nothing (equivalent to
    ``enabled=False``).
    """

    OFF = 0
    DELIVERIES = 1
    FULL = 2


class TraceCategory(enum.Enum):
    """Categories of observable run events."""

    #: The application layer invoked ``URB_broadcast(m)`` at a process.
    URB_BROADCAST = "urb_broadcast"
    #: A process handed one protocol payload to one directed channel.
    SEND = "send"
    #: The channel dropped the payload (fair lossy behaviour).
    DROP = "drop"
    #: The payload reached the destination process.
    CHANNEL_DELIVER = "channel_deliver"
    #: A process URB-delivered an application message.
    URB_DELIVER = "urb_deliver"
    #: A process crashed.
    CRASH = "crash"
    #: A retransmission round executed (possibly sending nothing).
    TICK = "tick"
    #: A process removed a message from its retransmission set (Algorithm 2).
    RETIRE = "retire"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Minimum :class:`TraceLevel` at which each category is recorded.
CATEGORY_LEVELS: dict[TraceCategory, TraceLevel] = {
    TraceCategory.URB_BROADCAST: TraceLevel.DELIVERIES,
    TraceCategory.URB_DELIVER: TraceLevel.DELIVERIES,
    TraceCategory.CRASH: TraceLevel.DELIVERIES,
    TraceCategory.RETIRE: TraceLevel.DELIVERIES,
    TraceCategory.SEND: TraceLevel.FULL,
    TraceCategory.DROP: TraceLevel.FULL,
    TraceCategory.CHANNEL_DELIVER: TraceLevel.FULL,
    TraceCategory.TICK: TraceLevel.FULL,
}


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observable event of a simulated run.

    Attributes
    ----------
    time:
        Simulated time of the event.
    category:
        The :class:`TraceCategory`.
    process:
        The index of the process the event concerns.  For channel events
        this is the *source* process; the destination is in ``details``.
    details:
        Category-specific payload (kept as a plain mapping so traces are
        cheap to build and easy to serialise).
    """

    time: SimTime
    category: TraceCategory
    process: int
    details: Mapping[str, Any] = field(default_factory=dict)

    def detail(self, key: str, default: Any = None) -> Any:
        """Shorthand for ``details.get(key, default)``."""
        return self.details.get(key, default)


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records in arrival order.

    The recorder can be disabled (``enabled=False``) for large benchmark
    runs where only aggregate metrics are needed; recording then becomes a
    no-op while counters in :class:`repro.simulation.metrics.MetricsCollector`
    keep working.  The *level* knob (:class:`TraceLevel`) offers a middle
    ground: ``DELIVERIES`` keeps protocol-level observables while skipping
    the per-copy channel events.

    The engine gates its hot-path recording calls on the plain boolean
    attributes ``channel_active`` / ``protocol_active`` so that disabled
    categories cost a single attribute read per event — no keyword-dict
    construction, no method call.
    """

    def __init__(self, enabled: bool = True,
                 level: TraceLevel = TraceLevel.FULL) -> None:
        self._enabled = bool(enabled)
        self._level = TraceLevel(level)
        self._events: list[TraceEvent] = []
        #: Run-level metadata (schedule provenance: strategy, seed, decision
        #: hash) written by the engine at the end of a run so serialised
        #: traces carry everything needed to replay them.  Populated even
        #: when event recording is disabled.
        self.header: dict[str, Any] = {}
        #: Fast flags read by the engine before building record() arguments.
        self.channel_active: bool = False
        self.protocol_active: bool = False
        self._refresh_flags()

    def _refresh_flags(self) -> None:
        active = self._enabled and self._level > TraceLevel.OFF
        self.protocol_active = active and self._level >= TraceLevel.DELIVERIES
        self.channel_active = active and self._level >= TraceLevel.FULL

    @property
    def enabled(self) -> bool:
        """Whether the recorder records anything at all."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self._refresh_flags()

    @property
    def level(self) -> TraceLevel:
        """The recording level (see :class:`TraceLevel`)."""
        return self._level

    @level.setter
    def level(self, value: TraceLevel) -> None:
        self._level = TraceLevel(value)
        self._refresh_flags()

    def wants(self, category: TraceCategory) -> bool:
        """Whether events of *category* would currently be recorded."""
        return (self._enabled
                and self._level >= CATEGORY_LEVELS[category])

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(
        self,
        time: SimTime,
        category: TraceCategory,
        process: int,
        **details: Any,
    ) -> Optional[TraceEvent]:
        """Append one event (no-op when the recorder is disabled or the
        category is gated out by the recording level)."""
        if not self._enabled or self._level < CATEGORY_LEVELS[category]:
            return None
        event = TraceEvent(time=time, category=category, process=process,
                           details=details)
        self._events.append(event)
        return event

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Append pre-built events (used when merging sub-traces)."""
        if self.enabled:
            self._events.extend(events)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """All recorded events, in recording order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def filter(
        self,
        category: Optional[TraceCategory] = None,
        process: Optional[int] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> list[TraceEvent]:
        """Return events matching the given criteria.

        Parameters
        ----------
        category:
            Keep only events of this category.
        process:
            Keep only events whose ``process`` field equals this index.
        predicate:
            Arbitrary extra filter applied last.
        """
        result = []
        for event in self._events:
            if category is not None and event.category is not category:
                continue
            if process is not None and event.process != process:
                continue
            if predicate is not None and not predicate(event):
                continue
            result.append(event)
        return result

    def count(self, category: TraceCategory) -> int:
        """Number of recorded events of *category*."""
        return sum(1 for event in self._events if event.category is category)

    def last_time(self, category: TraceCategory) -> Optional[SimTime]:
        """Time of the last event of *category*, or ``None`` if none."""
        result: Optional[SimTime] = None
        for event in self._events:
            if event.category is category:
                result = event.time
        return result

    def first_time(self, category: TraceCategory) -> Optional[SimTime]:
        """Time of the first event of *category*, or ``None`` if none."""
        for event in self._events:
            if event.category is category:
                return event.time
        return None

    def timeline(self, category: TraceCategory,
                 bucket: float) -> list[tuple[SimTime, int]]:
        """Histogram of *category* events over time.

        Returns a list of ``(bucket_start, count)`` pairs covering the span
        of the trace with buckets of width *bucket*.
        """
        if bucket <= 0:
            raise ValueError("bucket width must be positive")
        selected = [e.time for e in self._events if e.category is category]
        if not selected:
            return []
        end = max(selected)
        n_buckets = int(end // bucket) + 1
        counts = [0] * n_buckets
        for t in selected:
            counts[int(t // bucket)] += 1
        return [(i * bucket, counts[i]) for i in range(n_buckets)]

    def digest(self) -> str:
        """Stable SHA-256 digest of the recorded trace.

        Two runs are considered bit-identical when their digests match; the
        determinism parity tests compare digests across hot-path
        configurations (see tests/unit/test_determinism_parity.py).
        """
        import hashlib

        h = hashlib.sha256()
        for event in self._events:
            h.update(
                repr(
                    (
                        event.time,
                        event.category.value,
                        event.process,
                        sorted(event.details.items()),
                    )
                ).encode("utf-8")
            )
        return h.hexdigest()

    def to_dicts(self) -> list[dict[str, Any]]:
        """Serialise the trace as a list of plain dictionaries."""
        return [
            {
                "time": event.time,
                "category": event.category.value,
                "process": event.process,
                **dict(event.details),
            }
            for event in self._events
        ]
