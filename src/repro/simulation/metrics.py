"""Aggregate run metrics.

While :class:`repro.simulation.tracing.TraceRecorder` keeps a full event log,
:class:`MetricsCollector` keeps cheap aggregate counters and samples that the
experiment harness reports directly: messages sent/dropped/received by
payload kind, per-process send counts, delivery latencies and a cumulative
send timeline (the raw material for the quiescence figures).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .simtime import SimTime


class MetricsLevel(enum.IntEnum):
    """How much a :class:`MetricsCollector` records.

    ``FULL`` (the default) reproduces the historic behaviour: aggregate
    counters plus per-delivery latency samples and the cumulative send
    timeline.  ``COUNTERS`` keeps only the O(1)-memory aggregate counters —
    the right setting for large benchmark sweeps where per-event lists
    would dominate memory and time.  ``OFF`` records nothing.
    """

    OFF = 0
    COUNTERS = 1
    FULL = 2


@dataclass(slots=True)
class LatencySample:
    """One delivery latency observation.

    Attributes
    ----------
    content:
        The application payload delivered.
    process:
        The delivering process.
    broadcast_time:
        Time the payload was URB-broadcast by its sender.
    deliver_time:
        Time this process URB-delivered it.
    """

    content: object
    process: int
    broadcast_time: SimTime
    deliver_time: SimTime

    @property
    def latency(self) -> float:
        """Delivery latency (``deliver_time - broadcast_time``)."""
        return self.deliver_time - self.broadcast_time


@dataclass(slots=True)
class MetricsSummary:
    """Aggregate view of a finished run, as reported by experiments."""

    total_sends: int
    total_drops: int
    total_channel_deliveries: int
    sends_by_kind: dict[str, int]
    sends_by_process: dict[int, int]
    deliveries: int
    mean_latency: Optional[float]
    max_latency: Optional[float]
    p95_latency: Optional[float]
    last_send_time: Optional[SimTime]
    final_time: SimTime

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (JSON friendly)."""
        return {
            "total_sends": self.total_sends,
            "total_drops": self.total_drops,
            "total_channel_deliveries": self.total_channel_deliveries,
            "sends_by_kind": dict(self.sends_by_kind),
            "sends_by_process": dict(self.sends_by_process),
            "deliveries": self.deliveries,
            "mean_latency": self.mean_latency,
            "max_latency": self.max_latency,
            "p95_latency": self.p95_latency,
            "last_send_time": self.last_send_time,
            "final_time": self.final_time,
        }


class MetricsCollector:
    """Accumulates aggregate counters during a run.

    The *level* knob (:class:`MetricsLevel`) gates the per-event lists:
    at ``COUNTERS`` only O(1)-memory aggregates are kept, at ``OFF`` the
    collector is a pure no-op.  The engine reads the plain boolean
    ``active`` attribute before calling the recording hooks, so a disabled
    collector costs one attribute read per event.
    """

    def __init__(self, level: MetricsLevel = MetricsLevel.FULL) -> None:
        self._level = MetricsLevel(level)
        #: Fast flag read by the engine before calling recording hooks.
        self.active: bool = False
        self._full: bool = False
        self._refresh_flags()
        self.total_sends: int = 0
        self.total_drops: int = 0
        self.total_channel_deliveries: int = 0
        self.sends_by_kind: dict[str, int] = defaultdict(int)
        self.sends_by_process: dict[int, int] = defaultdict(int)
        self.drops_by_kind: dict[str, int] = defaultdict(int)
        self.latency_samples: list[LatencySample] = []
        #: ``(time, cumulative_send_count)`` pairs, one per send.
        self.send_timeline: list[tuple[SimTime, int]] = []
        self.broadcast_times: dict[object, SimTime] = {}
        self.last_send_time: Optional[SimTime] = None
        self.final_time: SimTime = 0.0
        self._deliveries: int = 0

    def _refresh_flags(self) -> None:
        self.active = self._level > MetricsLevel.OFF
        self._full = self._level >= MetricsLevel.FULL

    @property
    def level(self) -> MetricsLevel:
        """The recording level (see :class:`MetricsLevel`)."""
        return self._level

    @level.setter
    def level(self, value: MetricsLevel) -> None:
        self._level = MetricsLevel(value)
        self._refresh_flags()

    # ------------------------------------------------------------------ #
    # recording hooks called by the engine
    # ------------------------------------------------------------------ #
    def on_send(self, time: SimTime, src: int, kind: str) -> None:
        """Record one protocol payload handed to one directed channel."""
        if not self.active:
            return
        self.total_sends += 1
        self.sends_by_kind[kind] += 1
        self.sends_by_process[src] += 1
        self.last_send_time = time
        if self._full:
            self.send_timeline.append((time, self.total_sends))

    def on_drop(self, time: SimTime, src: int, kind: str) -> None:
        """Record a channel drop."""
        if not self.active:
            return
        self.total_drops += 1
        self.drops_by_kind[kind] += 1

    def on_send_many(self, time: SimTime, src: int, kind: str, count: int) -> None:
        """Aggregate equivalent of *count* consecutive :meth:`on_send` calls.

        Used by batching engine backends for one broadcast's fan-out; the
        resulting collector state (counters and, at FULL level, the send
        timeline) is identical to *count* individual calls at *time*.
        """
        if not self.active or count <= 0:
            return
        total = self.total_sends
        self.total_sends = total + count
        self.sends_by_kind[kind] += count
        self.sends_by_process[src] += count
        self.last_send_time = time
        if self._full:
            self.send_timeline.extend(
                (time, total + offset) for offset in range(1, count + 1)
            )

    def on_drop_many(self, time: SimTime, src: int, kind: str, count: int) -> None:
        """Aggregate equivalent of *count* consecutive :meth:`on_drop` calls."""
        if not self.active or count <= 0:
            return
        self.total_drops += count
        self.drops_by_kind[kind] += count

    def on_channel_deliver(self, time: SimTime, dst: int, kind: str) -> None:
        """Record a channel delivery (payload reached its destination)."""
        if self.active:
            self.total_channel_deliveries += 1

    def on_urb_broadcast(self, time: SimTime, sender: int, content: object) -> None:
        """Record the application-level broadcast of *content*."""
        if not self.active:
            return
        # First broadcast time wins; re-broadcasting the same content is a
        # workload decision, and latency is measured from the first attempt.
        self.broadcast_times.setdefault(content, time)

    def on_urb_deliver(self, time: SimTime, process: int, content: object) -> None:
        """Record the URB-delivery of *content* at *process*."""
        if not self.active:
            return
        self._deliveries += 1
        if self._full:
            broadcast_time = self.broadcast_times.get(content, 0.0)
            self.latency_samples.append(
                LatencySample(
                    content=content,
                    process=process,
                    broadcast_time=broadcast_time,
                    deliver_time=time,
                )
            )

    def on_finish(self, time: SimTime) -> None:
        """Record the final simulated time of the run."""
        self.final_time = time

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def deliveries(self) -> int:
        """Total number of URB-deliveries across all processes."""
        return self._deliveries

    def latencies(self) -> np.ndarray:
        """Delivery latencies as a NumPy array (possibly empty)."""
        return np.asarray([s.latency for s in self.latency_samples], dtype=float)

    def sends_in_window(self, start: SimTime, end: SimTime) -> int:
        """Number of sends with ``start <= time < end``."""
        return sum(1 for t, _ in self.send_timeline if start <= t < end)

    def cumulative_sends_at(self, time: SimTime) -> int:
        """Cumulative number of sends up to and including *time*."""
        count = 0
        for t, cumulative in self.send_timeline:
            if t <= time:
                count = cumulative
            else:
                break
        return count

    def summary(self) -> MetricsSummary:
        """Build the aggregate :class:`MetricsSummary` for reporting."""
        lat = self.latencies()
        return MetricsSummary(
            total_sends=self.total_sends,
            total_drops=self.total_drops,
            total_channel_deliveries=self.total_channel_deliveries,
            sends_by_kind=dict(self.sends_by_kind),
            sends_by_process=dict(self.sends_by_process),
            deliveries=self.deliveries,
            mean_latency=float(lat.mean()) if lat.size else None,
            max_latency=float(lat.max()) if lat.size else None,
            p95_latency=float(np.percentile(lat, 95)) if lat.size else None,
            last_send_time=self.last_send_time,
            final_time=self.final_time,
        )
