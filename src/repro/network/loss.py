"""Channel loss models.

The paper's channels are *fair lossy* (§II): a channel may lose messages —
even infinitely many — but if the same message is sent infinitely often to a
correct process, the process eventually receives it; channels never create,
duplicate or garble messages.

A :class:`LossModel` decides, per transmission attempt, whether one copy of a
payload is dropped on one directed channel.  Models are *stateful per
directed channel* (each channel owns its own instance built from a
:class:`LossSpec` factory), and they receive a *deduplication key* describing
the payload so that per-message behaviour (e.g. "drop the first k copies of
this particular message") can be expressed.

The finite-run counterpart of the fairness property is implemented one layer
up, in :class:`repro.network.fair_lossy.FairLossyChannel`, as an optional
*fairness guard* bounding the number of consecutive drops per key.
"""

from __future__ import annotations

import abc
import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

import numpy as np

DedupKey = Hashable

#: Default number of samples drawn per vectorized refill of the batched
#: models.  NumPy generators produce the same stream regardless of how it is
#: chunked, so the block size never changes simulated behaviour — only how
#: often Python crosses into NumPy.
DEFAULT_SAMPLE_BLOCK = 1024


def batched_generator(rng: random.Random) -> np.random.Generator:
    """Derive a NumPy generator from a channel's ``random.Random`` substream.

    The derivation consumes one 64-bit draw from *rng*, so it is fully
    determined by the run's master seed and the channel's substream name.
    """
    return np.random.default_rng(rng.getrandbits(64))


class LossModel(abc.ABC):
    """Decides whether one transmission attempt is dropped."""

    @abc.abstractmethod
    def should_drop(self, src: int, dst: int, key: DedupKey) -> bool:
        """Return ``True`` if this copy of the payload is lost.

        Parameters
        ----------
        src, dst:
            Directed channel endpoints (processes indices).
        key:
            Deduplication key of the payload (identical retransmissions of
            the same protocol message share a key).
        """

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return type(self).__name__


class NoLoss(LossModel):
    """A channel that never drops anything (reliable-channel baseline)."""

    def should_drop(self, src: int, dst: int, key: DedupKey) -> bool:
        return False

    def describe(self) -> str:
        return "no-loss"


class BernoulliLoss(LossModel):
    """Drop each copy independently with probability *p*.

    With ``p < 1`` and unbounded retransmissions this is a fair lossy channel
    with probability 1; the fairness guard of
    :class:`~repro.network.fair_lossy.FairLossyChannel` makes the guarantee
    unconditional on finite runs.
    """

    def __init__(self, probability: float, rng: random.Random) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {probability}")
        self.probability = float(probability)
        self._rng = rng

    def should_drop(self, src: int, dst: int, key: DedupKey) -> bool:
        if self.probability == 0.0:
            return False
        if self.probability == 1.0:
            return True
        return self._rng.random() < self.probability

    def describe(self) -> str:
        return f"bernoulli(p={self.probability:g})"


class BatchedBernoulliLoss(LossModel):
    """Bernoulli loss drawing its uniform samples in vectorized NumPy blocks.

    Behaviour is a Bernoulli(p) decision per transmission attempt, exactly
    like :class:`BernoulliLoss`, but the underlying uniforms come from a
    per-channel ``numpy.random.Generator`` refilled *block* samples at a
    time — one NumPy call per *block* messages instead of one Python-level
    RNG call per message.

    Determinism: NumPy generators yield the same sample stream regardless
    of chunking, so runs are bit-identical for every block size (the parity
    tests pin this).  The stream differs from :class:`BernoulliLoss` (which
    uses the stdlib Mersenne Twister), so switching a scenario between the
    scalar and batched families changes the (equally valid) sampled run.
    """

    def __init__(self, probability: float, rng: random.Random,
                 block: int = DEFAULT_SAMPLE_BLOCK) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {probability}")
        if block < 1:
            raise ValueError("block size must be >= 1")
        self.probability = float(probability)
        self.block = int(block)
        self._gen = batched_generator(rng)
        # Refilled blocks are kept as a *reversed* plain list so each draw
        # is a single C-level ``list.pop()`` — cheaper than any index
        # bookkeeping or scalar ndarray access.
        self._drops: list[bool] = []

    def should_drop(self, src: int, dst: int, key: DedupKey) -> bool:
        p = self.probability
        if p == 0.0:
            return False
        if p == 1.0:
            return True
        drops = self._drops
        if not drops:
            drops = self._drops = (self._gen.random(self.block) < p).tolist()
            drops.reverse()
        return drops.pop()

    def describe(self) -> str:
        return f"bernoulli(p={self.probability:g}, batched)"


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss model (Gilbert–Elliott).

    The channel alternates between a *good* and a *bad* state with the given
    transition probabilities evaluated per transmission attempt; each state
    has its own drop probability.  This models correlated (bursty) loss,
    which stresses retransmission-based protocols harder than independent
    loss at the same average rate.
    """

    def __init__(
        self,
        rng: random.Random,
        *,
        p_good_to_bad: float = 0.05,
        p_bad_to_good: float = 0.25,
        loss_good: float = 0.01,
        loss_bad: float = 0.8,
    ) -> None:
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._rng = rng
        self._in_bad_state = False

    def should_drop(self, src: int, dst: int, key: DedupKey) -> bool:
        # State transition first, then the per-state loss draw.
        if self._in_bad_state:
            if self._rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        loss_probability = self.loss_bad if self._in_bad_state else self.loss_good
        return self._rng.random() < loss_probability

    @property
    def in_bad_state(self) -> bool:
        """Whether the channel is currently in the lossy burst state."""
        return self._in_bad_state

    def describe(self) -> str:
        return (
            f"gilbert-elliott(g->b={self.p_good_to_bad:g}, "
            f"b->g={self.p_bad_to_good:g}, "
            f"loss_g={self.loss_good:g}, loss_b={self.loss_bad:g})"
        )


class DropFirstK(LossModel):
    """Deterministically drop the first *k* copies of each distinct payload.

    Useful for fully deterministic unit tests of retransmission logic: the
    channel is trivially fair lossy (after k drops every further copy goes
    through) and the number of retransmissions needed is known exactly.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = int(k)
        self._attempts: dict[DedupKey, int] = defaultdict(int)

    def should_drop(self, src: int, dst: int, key: DedupKey) -> bool:
        attempt = self._attempts[key]
        self._attempts[key] = attempt + 1
        return attempt < self.k

    def attempts_for(self, key: DedupKey) -> int:
        """Number of transmission attempts seen so far for *key*."""
        return self._attempts.get(key, 0)

    def describe(self) -> str:
        return f"drop-first-{self.k}"


class AdversarialFiniteLoss(LossModel):
    """Drop every copy until a finite adversary budget is exhausted.

    The adversary drops the first *budget* transmissions on the channel
    (regardless of payload), then becomes perfectly reliable.  This is the
    strongest behaviour compatible with the fair lossy definition for a
    finite run and is used in worst-case liveness tests.
    """

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = int(budget)
        self._dropped = 0

    def should_drop(self, src: int, dst: int, key: DedupKey) -> bool:
        if self._dropped < self.budget:
            self._dropped += 1
            return True
        return False

    @property
    def remaining_budget(self) -> int:
        """How many more drops the adversary may still perform."""
        return self.budget - self._dropped

    def describe(self) -> str:
        return f"adversarial-finite(budget={self.budget})"


class PartitionLoss(LossModel):
    """Drop every message crossing a process partition.

    This is the channel behaviour of the indistinguishability argument in the
    paper's impossibility proof (Theorem 2, run ``R2``): all messages ever
    sent from the ``S1`` side towards the ``S2`` side are lost.  Note that a
    permanent partition is *not* a fair lossy channel — which is exactly the
    point of the proof: the finite prefix observed by ``S1`` is
    indistinguishable from a fair lossy run in which ``S2`` crashed.

    Parameters
    ----------
    group_a, group_b:
        The two sides of the partition (process index sets).
    drop_a_to_b, drop_b_to_a:
        Which crossing directions are severed.
    inner_model:
        Loss model applied to non-crossing traffic (defaults to no loss).
    """

    def __init__(
        self,
        group_a: frozenset[int] | set[int],
        group_b: frozenset[int] | set[int],
        *,
        drop_a_to_b: bool = True,
        drop_b_to_a: bool = True,
        inner_model: Optional[LossModel] = None,
    ) -> None:
        self.group_a = frozenset(group_a)
        self.group_b = frozenset(group_b)
        if self.group_a & self.group_b:
            raise ValueError("partition groups must be disjoint")
        self.drop_a_to_b = drop_a_to_b
        self.drop_b_to_a = drop_b_to_a
        self.inner_model = inner_model or NoLoss()

    def should_drop(self, src: int, dst: int, key: DedupKey) -> bool:
        if self.drop_a_to_b and src in self.group_a and dst in self.group_b:
            return True
        if self.drop_b_to_a and src in self.group_b and dst in self.group_a:
            return True
        return self.inner_model.should_drop(src, dst, key)

    def describe(self) -> str:
        return (
            f"partition(A={sorted(self.group_a)}, B={sorted(self.group_b)}, "
            f"inner={self.inner_model.describe()})"
        )


@dataclass(frozen=True)
class LossSpec:
    """Declarative factory of per-channel :class:`LossModel` instances.

    Channels need independent model instances (they keep per-channel state
    and per-channel random substreams).  A spec captures *which* model and
    *its parameters*; :meth:`build` instantiates it for a directed channel.

    Attributes
    ----------
    kind:
        One of ``"none"``, ``"bernoulli"``, ``"gilbert_elliott"``,
        ``"drop_first_k"``, ``"adversarial_finite"``, ``"partition"``,
        ``"custom"``.
    params:
        Keyword parameters of the model.
    factory:
        For ``kind="custom"``: a callable ``(src, dst, rng) -> LossModel``.
    """

    kind: str = "none"
    params: dict = field(default_factory=dict)
    factory: Optional[Callable[[int, int, random.Random], LossModel]] = None

    _KINDS = (
        "none",
        "bernoulli",
        "gilbert_elliott",
        "drop_first_k",
        "adversarial_finite",
        "partition",
        "custom",
    )

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown loss kind {self.kind!r}; expected one of {self._KINDS}"
            )
        if self.kind == "custom" and self.factory is None:
            raise ValueError("custom loss spec requires a factory")

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def none(cls) -> "LossSpec":
        """No loss (reliable links)."""
        return cls(kind="none")

    @classmethod
    def bernoulli(cls, probability: float,
                  batch: Optional[int] = None) -> "LossSpec":
        """Independent loss with the given probability.

        With ``batch`` set, channels use :class:`BatchedBernoulliLoss` and
        draw their uniforms in vectorized NumPy blocks of that size.
        """
        params: dict = {"probability": probability}
        if batch is not None:
            params["batch"] = int(batch)
        return cls(kind="bernoulli", params=params)

    @classmethod
    def gilbert_elliott(cls, **params: float) -> "LossSpec":
        """Bursty loss; see :class:`GilbertElliottLoss` for parameters."""
        return cls(kind="gilbert_elliott", params=dict(params))

    @classmethod
    def drop_first_k(cls, k: int) -> "LossSpec":
        """Deterministically drop the first *k* copies of each payload."""
        return cls(kind="drop_first_k", params={"k": k})

    @classmethod
    def adversarial_finite(cls, budget: int) -> "LossSpec":
        """Adversarial finite-budget loss."""
        return cls(kind="adversarial_finite", params={"budget": budget})

    @classmethod
    def partition(cls, group_a: set[int], group_b: set[int],
                  **kwargs) -> "LossSpec":
        """Permanent partition between two process groups."""
        return cls(kind="partition",
                   params={"group_a": frozenset(group_a),
                           "group_b": frozenset(group_b), **kwargs})

    @classmethod
    def custom(cls, factory: Callable[[int, int, random.Random], LossModel]) -> "LossSpec":
        """Arbitrary user-supplied per-channel factory."""
        return cls(kind="custom", factory=factory)

    # ------------------------------------------------------------------ #
    def build(self, src: int, dst: int, rng: random.Random) -> LossModel:
        """Instantiate the loss model for the directed channel *src* → *dst*."""
        if self.kind == "none":
            return NoLoss()
        if self.kind == "bernoulli":
            if "batch" in self.params:
                params = dict(self.params)
                batch = params.pop("batch")
                return BatchedBernoulliLoss(rng=rng, block=batch, **params)
            return BernoulliLoss(rng=rng, **self.params)
        if self.kind == "gilbert_elliott":
            return GilbertElliottLoss(rng=rng, **self.params)
        if self.kind == "drop_first_k":
            return DropFirstK(**self.params)
        if self.kind == "adversarial_finite":
            return AdversarialFiniteLoss(**self.params)
        if self.kind == "partition":
            return PartitionLoss(**self.params)
        assert self.kind == "custom" and self.factory is not None
        return self.factory(src, dst, rng)

    def describe(self) -> str:
        """Human-readable description used in reports."""
        if self.kind == "bernoulli":
            suffix = ", batched" if "batch" in self.params else ""
            return f"bernoulli(p={self.params.get('probability')}{suffix})"
        if self.kind == "none":
            return "no-loss"
        return self.kind
