"""Fair lossy channels (the paper's channel model).

A fair lossy channel (§II) satisfies:

* **Fairness** — if ``p`` sends a message ``m`` to ``q`` an infinite number
  of times and ``q`` is correct, then ``q`` eventually receives ``m``.
* **Uniform Integrity** — if ``q`` receives ``m`` from ``p`` then ``p``
  previously sent ``m``; and ``q`` receives ``m`` infinitely often only if
  ``p`` sends it infinitely often.

:class:`FairLossyChannel` is a :class:`~repro.network.channel.LossyChannel`
whose fairness guard is on by default, which makes the Fairness property hold
unconditionally on finite simulated runs (after at most ``fairness_bound``
consecutive losses of the same payload the next copy gets through).  Uniform
Integrity holds by construction: the simulator never fabricates or duplicates
envelopes.
"""

from __future__ import annotations

import random
from typing import Optional

from .channel import LossyChannel
from .delay import DelayModel, DelaySpec
from .loss import LossModel, LossSpec

#: Default bound on consecutive per-payload drops used by the fairness guard.
DEFAULT_FAIRNESS_BOUND = 25


class FairLossyChannel(LossyChannel):
    """A lossy channel with the fairness guard enabled by default."""

    def __init__(
        self,
        src: int,
        dst: int,
        loss_model: LossModel,
        delay_model: DelayModel,
        fairness_bound: Optional[int] = DEFAULT_FAIRNESS_BOUND,
    ) -> None:
        super().__init__(
            src,
            dst,
            loss_model=loss_model,
            delay_model=delay_model,
            fairness_bound=fairness_bound,
        )


class FairLossyChannelFactory:
    """Builds one :class:`FairLossyChannel` per directed process pair.

    Parameters
    ----------
    loss_spec:
        Declarative loss-model description (per-channel instances are
        created with independent random substreams).
    delay_spec:
        Declarative delay-model description.
    fairness_bound:
        Fairness guard bound shared by every channel; ``None`` disables the
        guard (Bernoulli channels then satisfy fairness only almost surely).
    """

    def __init__(
        self,
        loss_spec: Optional[LossSpec] = None,
        delay_spec: Optional[DelaySpec] = None,
        fairness_bound: Optional[int] = DEFAULT_FAIRNESS_BOUND,
    ) -> None:
        self.loss_spec = loss_spec or LossSpec.none()
        self.delay_spec = delay_spec or DelaySpec.fixed(1.0)
        self.fairness_bound = fairness_bound

    def build(self, src: int, dst: int, loss_rng: random.Random,
              delay_rng: random.Random) -> FairLossyChannel:
        """Instantiate the channel for the directed pair *src* → *dst*."""
        return FairLossyChannel(
            src,
            dst,
            loss_model=self.loss_spec.build(src, dst, loss_rng),
            delay_model=self.delay_spec.build(src, dst, delay_rng),
            fairness_bound=self.fairness_bound,
        )

    def describe(self) -> str:
        """Human-readable description used in reports."""
        guard = (
            f"fairness_bound={self.fairness_bound}"
            if self.fairness_bound is not None
            else "no fairness guard"
        )
        return (
            f"fair-lossy(loss={self.loss_spec.describe()}, "
            f"delay={self.delay_spec.describe()}, {guard})"
        )
