"""The completely connected anonymous network.

The paper's processes communicate through a completely connected network of
bidirectional fair lossy channels using a single ``broadcast(m)`` primitive
that sends ``m`` to *all* processes, including the sender itself (§I, §II).

:class:`Network` owns the ``n × n`` directed channels (built lazily from a
channel factory) and implements the broadcast primitive by handing one copy
of the payload to every directed channel originating at the sender.  It
returns a :class:`~repro.network.messagebox.TransmissionOutcome` per
destination so the engine can schedule the corresponding receive events and
record drops.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from ..simulation.rng import RandomSource
from ..simulation.simtime import SimTime
from .channel import Channel
from .loss import DedupKey
from .messagebox import Envelope, TransmissionOutcome


class ChannelFactory(Protocol):
    """Anything that can build a directed channel for a process pair."""

    def build(self, src: int, dst: int, loss_rng, delay_rng) -> Channel:
        """Create the channel for the directed pair ``src -> dst``."""
        ...

    def describe(self) -> str:
        """Human-readable factory description."""
        ...


def default_dedup_key(payload: Any) -> DedupKey:
    """Default deduplication key: the payload itself (payloads are hashable
    frozen dataclasses, and identical retransmissions compare equal)."""
    return payload


class Network:
    """Completely connected topology with an anonymous broadcast primitive.

    Parameters
    ----------
    n_processes:
        Number of processes.
    channel_factory:
        Factory building each directed channel (fair lossy by default).
    random_source:
        Master random source; each channel gets independent loss and delay
        substreams.
    loopback_delivers:
        Whether a broadcast also delivers to the sender itself.  The paper's
        primitive includes the sender («send a message to all processes
        (including itself)»), so this defaults to ``True``.
    dedup_key:
        Function mapping a payload to its deduplication key (used by loss
        models and the fairness guard to recognise retransmissions of the
        same protocol message).
    """

    def __init__(
        self,
        n_processes: int,
        channel_factory: ChannelFactory,
        random_source: Optional[RandomSource] = None,
        *,
        loopback_delivers: bool = True,
        dedup_key=default_dedup_key,
    ) -> None:
        if n_processes < 1:
            raise ValueError("n_processes must be positive")
        self.n_processes = n_processes
        self.channel_factory = channel_factory
        self.random_source = random_source or RandomSource(0)
        self.loopback_delivers = loopback_delivers
        self.dedup_key = dedup_key
        self._channels: dict[tuple[int, int], Channel] = {}
        #: Per-source dense channel rows, built lazily for the broadcast
        #: fast path (avoids a dict lookup per destination per send).  The
        #: ``src`` slot is ``None`` when loopback is disabled.
        self._rows: list[Optional[list[Optional[Channel]]]] = [None] * n_processes
        #: Reusable result buffer for :meth:`broadcast_fast`.  Safe because
        #: the engine fully consumes it before any code path can broadcast
        #: again (protocol handlers run from later queue events).
        self._fast_buffer: list[tuple[int, Optional[SimTime]]] = []

    # ------------------------------------------------------------------ #
    # channels
    # ------------------------------------------------------------------ #
    def channel(self, src: int, dst: int) -> Channel:
        """Return (building lazily) the directed channel ``src -> dst``."""
        self._check_index(src)
        self._check_index(dst)
        key = (src, dst)
        channel = self._channels.get(key)
        if channel is None:
            channel = self.channel_factory.build(
                src,
                dst,
                self.random_source.for_component("loss", src * self.n_processes + dst),
                self.random_source.for_component("delay", src * self.n_processes + dst),
            )
            self._channels[key] = channel
        return channel

    @property
    def channels(self) -> dict[tuple[int, int], Channel]:
        """All channels instantiated so far, keyed by ``(src, dst)``."""
        return dict(self._channels)

    # ------------------------------------------------------------------ #
    # communication primitives
    # ------------------------------------------------------------------ #
    def broadcast(self, src: int, payload: Any, now: SimTime) -> list[TransmissionOutcome]:
        """The paper's ``broadcast(m)``: one copy to every process.

        Returns one :class:`TransmissionOutcome` per destination (including
        the sender itself when loopback is enabled), in destination-index
        order so runs stay deterministic.
        """
        self._check_index(src)
        outcomes: list[TransmissionOutcome] = []
        key = self.dedup_key(payload)
        for dst in range(self.n_processes):
            if dst == src and not self.loopback_delivers:
                continue
            outcomes.append(self._transmit(src, dst, payload, key, now))
        return outcomes

    def _row(self, src: int) -> list[Optional[Channel]]:
        """Dense destination-ordered channel row for *src* (built lazily).

        When loopback is disabled the ``src`` slot holds ``None``: the
        self-channel must not be instantiated, exactly like in
        :meth:`broadcast`.
        """
        row = self._rows[src]
        if row is None:
            row = [
                None if dst == src and not self.loopback_delivers
                else self.channel(src, dst)
                for dst in range(self.n_processes)
            ]
            self._rows[src] = row
        return row

    def broadcast_fast(
        self, src: int, payload: Any, now: SimTime
    ) -> list[tuple[int, Optional[SimTime]]]:
        """Allocation-light variant of :meth:`broadcast`.

        Returns ``(dst, deliver_time)`` pairs in destination order, with
        ``deliver_time is None`` meaning the copy was dropped — skipping the
        per-copy :class:`Envelope`/:class:`TransmissionOutcome` objects that
        :meth:`broadcast` builds.  The returned list is a reusable buffer
        owned by the network: callers must fully consume it before invoking
        ``broadcast_fast`` again (the engine does).

        Channel RNG draws happen in exactly the same order as in
        :meth:`broadcast`, so runs using either path are bit-identical.
        """
        self._check_index(src)
        key = self.dedup_key(payload)
        row = self._row(src)
        loopback = self.loopback_delivers
        out = self._fast_buffer
        out.clear()
        for dst in range(self.n_processes):
            if dst == src and not loopback:
                continue
            out.append((dst, row[dst].transmit(key, now)))
        return out

    def unicast(self, src: int, dst: int, payload: Any, now: SimTime) -> TransmissionOutcome:
        """Point-to-point send (not used by the paper's protocols, provided
        for baseline protocols and tests)."""
        self._check_index(src)
        self._check_index(dst)
        return self._transmit(src, dst, payload, self.dedup_key(payload), now)

    def _transmit(
        self, src: int, dst: int, payload: Any, key: DedupKey, now: SimTime
    ) -> TransmissionOutcome:
        channel = self.channel(src, dst)
        deliver_time = channel.transmit(key, now)
        envelope = Envelope(
            payload=payload,
            src=src,
            dst=dst,
            send_time=now,
            deliver_time=deliver_time,
        )
        return TransmissionOutcome(envelope=envelope)

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def total_attempts(self) -> int:
        """Total transmission attempts across all instantiated channels."""
        return sum(c.stats.attempts for c in self._channels.values())

    def total_drops(self) -> int:
        """Total drops across all instantiated channels."""
        return sum(c.stats.dropped for c in self._channels.values())

    def observed_drop_rate(self) -> float:
        """Aggregate observed drop rate across all channels."""
        attempts = self.total_attempts()
        return self.total_drops() / attempts if attempts else 0.0

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return (
            f"complete-graph(n={self.n_processes}, "
            f"channels={self.channel_factory.describe()})"
        )

    def _check_index(self, index: int) -> None:
        if not (0 <= index < self.n_processes):
            raise IndexError(
                f"process index {index} out of range [0, {self.n_processes})"
            )
