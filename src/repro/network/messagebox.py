"""Wire envelopes.

The network layer wraps every protocol payload in an :class:`Envelope` that
carries routing and timing information.  Crucially, **the envelope is never
shown to protocol code**: the engine unwraps it and hands only the payload to
the destination process, exactly like the paper's anonymous ``receive(m)``
primitive, where «when a process receives a message, it cannot determine who
is the sender of this message» (§II).

The source index stored in the envelope is used exclusively by the trace
recorder and the analysis layer (which play the role of the omniscient
observer used in the paper's proofs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..simulation.simtime import SimTime

_envelope_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class Envelope:
    """A protocol payload in flight on one directed channel.

    Attributes
    ----------
    payload:
        The protocol payload (e.g. ``MsgPayload`` or ``AckPayload``).
    src:
        Index of the sending process.  Hidden from protocol code.
    dst:
        Index of the destination process.
    send_time:
        Simulated time the payload was handed to the channel.
    deliver_time:
        Simulated time the payload reaches the destination, or ``None`` if
        the channel dropped it.
    envelope_id:
        Monotonically increasing identifier, unique within a Python process,
        handy when correlating trace events in tests.
    """

    payload: Any
    src: int
    dst: int
    send_time: SimTime
    deliver_time: Optional[SimTime] = None
    envelope_id: int = field(default_factory=lambda: next(_envelope_counter))

    @property
    def dropped(self) -> bool:
        """Whether the channel dropped this envelope."""
        return self.deliver_time is None

    @property
    def in_flight_duration(self) -> Optional[float]:
        """Channel latency of the envelope, or ``None`` if dropped."""
        if self.deliver_time is None:
            return None
        return self.deliver_time - self.send_time

    def describe(self) -> str:
        """Human-readable one-liner for debugging."""
        status = (
            "dropped" if self.dropped else f"delivered@{self.deliver_time:.4f}"
        )
        return (
            f"Envelope#{self.envelope_id} p{self.src}->p{self.dst} "
            f"sent@{self.send_time:.4f} {status}"
        )


@dataclass(frozen=True, slots=True)
class TransmissionOutcome:
    """Result of handing one payload to one directed channel.

    Returned by :meth:`repro.network.network.Network.broadcast` so the engine
    can schedule receive events and record drops without re-querying the
    channel.
    """

    envelope: Envelope

    @property
    def delivered(self) -> bool:
        """Whether the payload will reach its destination."""
        return not self.envelope.dropped

    @property
    def dst(self) -> int:
        """Destination process index."""
        return self.envelope.dst

    @property
    def deliver_time(self) -> Optional[SimTime]:
        """Delivery time at the destination (``None`` if dropped)."""
        return self.envelope.deliver_time
