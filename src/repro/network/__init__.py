"""Network substrate: fair lossy channels, baselines and the anonymous
completely connected topology (paper §II)."""

from .channel import Channel, ChannelStats, LossyChannel
from .delay import (
    DelayModel,
    DelaySpec,
    ExponentialDelay,
    FixedDelay,
    UniformDelay,
)
from .fair_lossy import (
    DEFAULT_FAIRNESS_BOUND,
    FairLossyChannel,
    FairLossyChannelFactory,
)
from .loss import (
    AdversarialFiniteLoss,
    BernoulliLoss,
    DropFirstK,
    GilbertElliottLoss,
    LossModel,
    LossSpec,
    NoLoss,
    PartitionLoss,
)
from .messagebox import Envelope, TransmissionOutcome
from .network import Network
from .reliable import (
    QuasiReliableChannel,
    QuasiReliableChannelFactory,
    ReliableChannel,
    ReliableChannelFactory,
)

__all__ = [
    "AdversarialFiniteLoss",
    "BernoulliLoss",
    "Channel",
    "ChannelStats",
    "DEFAULT_FAIRNESS_BOUND",
    "DelayModel",
    "DelaySpec",
    "DropFirstK",
    "Envelope",
    "ExponentialDelay",
    "FairLossyChannel",
    "FairLossyChannelFactory",
    "FixedDelay",
    "GilbertElliottLoss",
    "LossModel",
    "LossSpec",
    "LossyChannel",
    "Network",
    "NoLoss",
    "PartitionLoss",
    "QuasiReliableChannel",
    "QuasiReliableChannelFactory",
    "ReliableChannel",
    "ReliableChannelFactory",
    "TransmissionOutcome",
    "UniformDelay",
]
