"""Network substrate: fair lossy channels, baselines and the anonymous
completely connected topology (paper §II)."""

from .channel import Channel, ChannelStats, LossyChannel
from .delay import (
    BatchedExponentialDelay,
    BatchedUniformDelay,
    DelayModel,
    DelaySpec,
    ExponentialDelay,
    FixedDelay,
    UniformDelay,
)
from .fair_lossy import (
    DEFAULT_FAIRNESS_BOUND,
    FairLossyChannel,
    FairLossyChannelFactory,
)
from .loss import (
    DEFAULT_SAMPLE_BLOCK,
    AdversarialFiniteLoss,
    BatchedBernoulliLoss,
    BernoulliLoss,
    DropFirstK,
    GilbertElliottLoss,
    LossModel,
    LossSpec,
    NoLoss,
    PartitionLoss,
)
from .messagebox import Envelope, TransmissionOutcome
from .network import Network
from .reliable import (
    QuasiReliableChannel,
    QuasiReliableChannelFactory,
    ReliableChannel,
    ReliableChannelFactory,
)

__all__ = [
    "AdversarialFiniteLoss",
    "BatchedBernoulliLoss",
    "BatchedExponentialDelay",
    "BatchedUniformDelay",
    "BernoulliLoss",
    "Channel",
    "ChannelStats",
    "DEFAULT_FAIRNESS_BOUND",
    "DEFAULT_SAMPLE_BLOCK",
    "DelayModel",
    "DelaySpec",
    "DropFirstK",
    "Envelope",
    "ExponentialDelay",
    "FairLossyChannel",
    "FairLossyChannelFactory",
    "FixedDelay",
    "GilbertElliottLoss",
    "LossModel",
    "LossSpec",
    "LossyChannel",
    "Network",
    "NoLoss",
    "PartitionLoss",
    "QuasiReliableChannel",
    "QuasiReliableChannelFactory",
    "ReliableChannel",
    "ReliableChannelFactory",
    "TransmissionOutcome",
    "UniformDelay",
]
