"""Reliable and quasi-reliable channels (baseline channel models).

The paper contrasts fair lossy channels with the *reliable* and
*quasi-reliable* channels commonly assumed in the literature (§I):

* **Reliable** — if ``p`` sends ``m`` to a correct ``q``, then ``q``
  eventually receives ``m`` (no loss at all in the simulator).
* **Quasi-reliable** — if correct ``p`` sends ``m`` to correct ``q``, then
  ``q`` eventually receives ``m``.  The simulator realises the weaker
  guarantee by allowing copies sent by a process that crashes *before the
  copy would arrive* to be lost (the classic "message in the output buffer
  dies with the sender" behaviour).

Both are provided so baseline broadcast protocols (eager reliable broadcast,
best-effort broadcast) can be evaluated under the channel assumptions they
were designed for, and so the experiments can show what breaks when those
assumptions are replaced by fair lossy links.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..simulation.simtime import SimTime
from .channel import Channel
from .delay import DelayModel, DelaySpec
from .loss import DedupKey


class ReliableChannel(Channel):
    """A channel that delivers every copy after a sampled delay."""

    def __init__(self, src: int, dst: int, delay_model: DelayModel) -> None:
        super().__init__(src, dst)
        self.delay_model = delay_model

    def transmit(self, key: DedupKey, now: SimTime) -> Optional[SimTime]:
        self.stats.attempts += 1
        self.stats.delivered += 1
        return now + self.delay_model.sample()

    def describe(self) -> str:
        return (
            f"ReliableChannel({self.src}->{self.dst}, "
            f"delay={self.delay_model.describe()})"
        )


class QuasiReliableChannel(Channel):
    """Delivers every copy unless the *sender* crashes before arrival.

    Parameters
    ----------
    src, dst:
        Directed endpoints.
    delay_model:
        Transfer delay distribution.
    sender_crash_time:
        A callable returning the sender's crash time (``inf`` if correct).
        Copies whose arrival would postdate the sender's crash are dropped,
        modelling in-flight messages lost together with the crashed sender's
        outgoing buffers.
    """

    def __init__(
        self,
        src: int,
        dst: int,
        delay_model: DelayModel,
        sender_crash_time: Callable[[int], SimTime],
    ) -> None:
        super().__init__(src, dst)
        self.delay_model = delay_model
        self._sender_crash_time = sender_crash_time

    def transmit(self, key: DedupKey, now: SimTime) -> Optional[SimTime]:
        self.stats.attempts += 1
        deliver_time = now + self.delay_model.sample()
        if deliver_time >= self._sender_crash_time(self.src):
            self.stats.dropped += 1
            return None
        self.stats.delivered += 1
        return deliver_time

    def describe(self) -> str:
        return (
            f"QuasiReliableChannel({self.src}->{self.dst}, "
            f"delay={self.delay_model.describe()})"
        )


class ReliableChannelFactory:
    """Builds one :class:`ReliableChannel` per directed process pair."""

    def __init__(self, delay_spec: Optional[DelaySpec] = None) -> None:
        self.delay_spec = delay_spec or DelaySpec.fixed(1.0)

    def build(self, src: int, dst: int, loss_rng: random.Random,
              delay_rng: random.Random) -> ReliableChannel:
        """Instantiate the channel for the directed pair *src* → *dst*."""
        return ReliableChannel(
            src, dst, delay_model=self.delay_spec.build(src, dst, delay_rng)
        )

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return f"reliable(delay={self.delay_spec.describe()})"


class QuasiReliableChannelFactory:
    """Builds one :class:`QuasiReliableChannel` per directed process pair."""

    def __init__(
        self,
        sender_crash_time: Callable[[int], SimTime],
        delay_spec: Optional[DelaySpec] = None,
    ) -> None:
        self.delay_spec = delay_spec or DelaySpec.fixed(1.0)
        self._sender_crash_time = sender_crash_time

    def build(self, src: int, dst: int, loss_rng: random.Random,
              delay_rng: random.Random) -> QuasiReliableChannel:
        """Instantiate the channel for the directed pair *src* → *dst*."""
        return QuasiReliableChannel(
            src,
            dst,
            delay_model=self.delay_spec.build(src, dst, delay_rng),
            sender_crash_time=self._sender_crash_time,
        )

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return f"quasi-reliable(delay={self.delay_spec.describe()})"
