"""Directed point-to-point channels.

A :class:`Channel` models one *directed* link between two processes.  Given a
payload's deduplication key and the current simulated time, it decides
whether the copy is delivered and, if so, after what delay.  Channels never
duplicate or corrupt payloads (the paper's Uniform Integrity channel
property holds by construction: a copy is delivered at most once and only if
it was sent).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from ..simulation.simtime import SimTime
from .delay import DelayModel
from .loss import DedupKey, LossModel


@dataclass(slots=True)
class ChannelStats:
    """Per-channel transmission statistics."""

    attempts: int = 0
    delivered: int = 0
    dropped: int = 0
    forced_deliveries: int = 0

    @property
    def drop_rate(self) -> float:
        """Observed drop rate (0 when nothing was transmitted)."""
        return self.dropped / self.attempts if self.attempts else 0.0


class Channel(abc.ABC):
    """A directed communication link from ``src`` to ``dst``."""

    def __init__(self, src: int, dst: int) -> None:
        if src < 0 or dst < 0:
            raise ValueError("channel endpoints must be non-negative indices")
        self.src = src
        self.dst = dst
        self.stats = ChannelStats()

    @abc.abstractmethod
    def transmit(self, key: DedupKey, now: SimTime) -> Optional[SimTime]:
        """Transmit one copy of the payload identified by *key*.

        Returns
        -------
        Optional[SimTime]
            The delivery time at the destination, or ``None`` if the copy is
            lost.
        """

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return f"{type(self).__name__}({self.src}->{self.dst})"


class LossyChannel(Channel):
    """A channel composed of a loss model and a delay model.

    Parameters
    ----------
    src, dst:
        Directed endpoints.
    loss_model:
        Decides whether each copy is dropped.
    delay_model:
        Samples the transfer delay of delivered copies.
    fairness_bound:
        Optional fairness guard: after this many *consecutive* drops of
        copies sharing the same deduplication key, the next copy is forcibly
        delivered.  This turns any loss model into a bona-fide fair lossy
        channel even on finite runs (see DESIGN.md §3.2).  ``None`` disables
        the guard.
    """

    def __init__(
        self,
        src: int,
        dst: int,
        loss_model: LossModel,
        delay_model: DelayModel,
        fairness_bound: Optional[int] = None,
    ) -> None:
        super().__init__(src, dst)
        if fairness_bound is not None and fairness_bound < 1:
            raise ValueError("fairness_bound must be >= 1 when given")
        self.loss_model = loss_model
        self.delay_model = delay_model
        self.fairness_bound = fairness_bound
        self._consecutive_drops: dict[DedupKey, int] = {}

    def transmit(self, key: DedupKey, now: SimTime) -> Optional[SimTime]:
        stats = self.stats
        stats.attempts += 1
        drop = self.loss_model.should_drop(self.src, self.dst, key)
        consecutive_drops = self._consecutive_drops
        if drop:
            if self.fairness_bound is not None:
                if consecutive_drops.get(key, 0) >= self.fairness_bound:
                    # Fairness guard: the loss model wanted to drop yet
                    # again, but the channel has already dropped
                    # `fairness_bound` consecutive copies of this payload —
                    # force delivery so the Fairness property holds on this
                    # finite run.
                    drop = False
                    stats.forced_deliveries += 1
            if drop:
                stats.dropped += 1
                consecutive_drops[key] = consecutive_drops.get(key, 0) + 1
                return None
        stats.delivered += 1
        # Only non-zero counts are stored (absent key == zero drops), so the
        # common no-drop path costs one membership test instead of growing
        # the dict with a zero for every payload ever transmitted.
        if consecutive_drops and key in consecutive_drops:
            del consecutive_drops[key]
        return now + self.delay_model.sample()

    def consecutive_drops(self, key: DedupKey) -> int:
        """Current consecutive-drop count for *key* (fairness bookkeeping)."""
        return self._consecutive_drops.get(key, 0)

    def describe(self) -> str:
        guard = (
            f", fairness_bound={self.fairness_bound}"
            if self.fairness_bound is not None
            else ""
        )
        return (
            f"LossyChannel({self.src}->{self.dst}, "
            f"loss={self.loss_model.describe()}, "
            f"delay={self.delay_model.describe()}{guard})"
        )
