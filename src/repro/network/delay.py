"""Channel delay models.

Asynchrony in the paper's model means there is no bound on message transfer
delays (nor on relative process speeds).  The simulator realises asynchrony
by drawing a per-copy channel delay from a configurable distribution; the
protocols never read the clock, so any positive-delay distribution yields a
legitimate asynchronous schedule.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .loss import DEFAULT_SAMPLE_BLOCK, batched_generator


class DelayModel(abc.ABC):
    """Produces per-copy channel delays."""

    @abc.abstractmethod
    def sample(self) -> float:
        """Return the transfer delay for one transmitted copy (``> 0``)."""

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return type(self).__name__


class FixedDelay(DelayModel):
    """Constant transfer delay (synchronous-looking, fully deterministic)."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ValueError("delay must be positive")
        self.delay = float(delay)

    def sample(self) -> float:
        return self.delay

    def describe(self) -> str:
        return f"fixed({self.delay:g})"


class UniformDelay(DelayModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, rng: random.Random, low: float = 0.1, high: float = 1.0) -> None:
        if low <= 0 or high <= 0:
            raise ValueError("delay bounds must be positive")
        if high < low:
            raise ValueError("high must be >= low")
        self.low = float(low)
        self.high = float(high)
        self._rng = rng

    def sample(self) -> float:
        return self._rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"uniform({self.low:g}, {self.high:g})"


class ExponentialDelay(DelayModel):
    """Exponentially distributed delay with an optional cap.

    A heavy-ish tailed delay distribution exercises genuinely asynchronous
    schedules (late messages overtaken by retransmissions, "fast delivery"
    of ACKs before the original MSG as discussed in the paper's §III remark).
    """

    def __init__(self, rng: random.Random, mean: float = 0.5,
                 cap: Optional[float] = None, minimum: float = 1e-3) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive when given")
        if minimum <= 0:
            raise ValueError("minimum must be positive")
        self.mean = float(mean)
        self.cap = float(cap) if cap is not None else None
        self.minimum = float(minimum)
        self._rng = rng

    def sample(self) -> float:
        value = self._rng.expovariate(1.0 / self.mean)
        value = max(value, self.minimum)
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    def describe(self) -> str:
        cap = f", cap={self.cap:g}" if self.cap is not None else ""
        return f"exponential(mean={self.mean:g}{cap})"


class BatchedUniformDelay(DelayModel):
    """Uniform delay drawing its samples in vectorized NumPy blocks.

    Same distribution as :class:`UniformDelay`, but the samples come from a
    per-channel ``numpy.random.Generator`` refilled *block* at a time.
    NumPy streams are chunking-invariant, so the block size never affects
    the simulated run (only the stdlib-vs-NumPy stream choice does).
    """

    def __init__(self, rng: random.Random, low: float = 0.1, high: float = 1.0,
                 block: int = DEFAULT_SAMPLE_BLOCK) -> None:
        if low <= 0 or high <= 0:
            raise ValueError("delay bounds must be positive")
        if high < low:
            raise ValueError("high must be >= low")
        if block < 1:
            raise ValueError("block size must be >= 1")
        self.low = float(low)
        self.high = float(high)
        self.block = int(block)
        self._gen = batched_generator(rng)
        # Reversed plain-list buffer consumed with C-level ``list.pop()``.
        self._samples: list[float] = []

    def sample(self) -> float:
        samples = self._samples
        if not samples:
            samples = self._samples = self._gen.uniform(
                self.low, self.high, self.block
            ).tolist()
            samples.reverse()
        return samples.pop()

    def describe(self) -> str:
        return f"uniform({self.low:g}, {self.high:g}, batched)"


class BatchedExponentialDelay(DelayModel):
    """Exponential delay (with min/cap clamping) sampled in NumPy blocks.

    Same distribution shape as :class:`ExponentialDelay`; the clamping to
    ``[minimum, cap]`` is applied vectorized on each refilled block.
    """

    def __init__(self, rng: random.Random, mean: float = 0.5,
                 cap: Optional[float] = None, minimum: float = 1e-3,
                 block: int = DEFAULT_SAMPLE_BLOCK) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive when given")
        if minimum <= 0:
            raise ValueError("minimum must be positive")
        if block < 1:
            raise ValueError("block size must be >= 1")
        self.mean = float(mean)
        self.cap = float(cap) if cap is not None else None
        self.minimum = float(minimum)
        self.block = int(block)
        self._gen = batched_generator(rng)
        # Reversed plain-list buffer consumed with C-level ``list.pop()``.
        self._samples: list[float] = []

    def sample(self) -> float:
        samples = self._samples
        if not samples:
            block = self._gen.exponential(self.mean, self.block)
            np.clip(block, self.minimum, self.cap, out=block)
            samples = self._samples = block.tolist()
            samples.reverse()
        return samples.pop()

    def describe(self) -> str:
        cap = f", cap={self.cap:g}" if self.cap is not None else ""
        return f"exponential(mean={self.mean:g}{cap}, batched)"


@dataclass(frozen=True)
class DelaySpec:
    """Declarative factory of per-channel :class:`DelayModel` instances.

    Attributes
    ----------
    kind:
        One of ``"fixed"``, ``"uniform"``, ``"exponential"``, ``"custom"``.
    params:
        Keyword parameters of the model.
    factory:
        For ``kind="custom"``: a callable ``(src, dst, rng) -> DelayModel``.
    """

    kind: str = "fixed"
    params: dict = field(default_factory=dict)
    factory: Optional[Callable[[int, int, random.Random], DelayModel]] = None

    _KINDS = ("fixed", "uniform", "exponential", "custom")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown delay kind {self.kind!r}; expected one of {self._KINDS}"
            )
        if self.kind == "custom" and self.factory is None:
            raise ValueError("custom delay spec requires a factory")

    @classmethod
    def fixed(cls, delay: float = 1.0) -> "DelaySpec":
        """Constant delay."""
        return cls(kind="fixed", params={"delay": delay})

    @classmethod
    def uniform(cls, low: float = 0.1, high: float = 1.0,
                batch: Optional[int] = None) -> "DelaySpec":
        """Uniform delay in ``[low, high]``.

        With ``batch`` set, channels sample in vectorized NumPy blocks of
        that size (see :class:`BatchedUniformDelay`).
        """
        params: dict = {"low": low, "high": high}
        if batch is not None:
            params["batch"] = int(batch)
        return cls(kind="uniform", params=params)

    @classmethod
    def exponential(cls, mean: float = 0.5, cap: Optional[float] = None,
                    batch: Optional[int] = None) -> "DelaySpec":
        """Exponential delay with the given mean (optionally capped).

        With ``batch`` set, channels sample in vectorized NumPy blocks of
        that size (see :class:`BatchedExponentialDelay`).
        """
        params: dict = {"mean": mean}
        if cap is not None:
            params["cap"] = cap
        if batch is not None:
            params["batch"] = int(batch)
        return cls(kind="exponential", params=params)

    @classmethod
    def custom(cls, factory: Callable[[int, int, random.Random], DelayModel]) -> "DelaySpec":
        """Arbitrary user-supplied per-channel factory."""
        return cls(kind="custom", factory=factory)

    def build(self, src: int, dst: int, rng: random.Random) -> DelayModel:
        """Instantiate the delay model for the directed channel *src* → *dst*."""
        if self.kind == "fixed":
            return FixedDelay(**self.params)
        if self.kind == "uniform":
            if "batch" in self.params:
                params = dict(self.params)
                batch = params.pop("batch")
                return BatchedUniformDelay(rng=rng, block=batch, **params)
            return UniformDelay(rng=rng, **self.params)
        if self.kind == "exponential":
            if "batch" in self.params:
                params = dict(self.params)
                batch = params.pop("batch")
                return BatchedExponentialDelay(rng=rng, block=batch, **params)
            return ExponentialDelay(rng=rng, **self.params)
        assert self.kind == "custom" and self.factory is not None
        return self.factory(src, dst, rng)

    def describe(self) -> str:
        """Human-readable description used in reports."""
        if self.kind == "fixed":
            return f"fixed({self.params.get('delay', 1.0)})"
        if self.kind == "uniform":
            return f"uniform({self.params.get('low')}, {self.params.get('high')})"
        if self.kind == "exponential":
            return f"exponential(mean={self.params.get('mean')})"
        return self.kind
