"""Channel delay models.

Asynchrony in the paper's model means there is no bound on message transfer
delays (nor on relative process speeds).  The simulator realises asynchrony
by drawing a per-copy channel delay from a configurable distribution; the
protocols never read the clock, so any positive-delay distribution yields a
legitimate asynchronous schedule.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Callable, Optional


class DelayModel(abc.ABC):
    """Produces per-copy channel delays."""

    @abc.abstractmethod
    def sample(self) -> float:
        """Return the transfer delay for one transmitted copy (``> 0``)."""

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return type(self).__name__


class FixedDelay(DelayModel):
    """Constant transfer delay (synchronous-looking, fully deterministic)."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ValueError("delay must be positive")
        self.delay = float(delay)

    def sample(self) -> float:
        return self.delay

    def describe(self) -> str:
        return f"fixed({self.delay:g})"


class UniformDelay(DelayModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, rng: random.Random, low: float = 0.1, high: float = 1.0) -> None:
        if low <= 0 or high <= 0:
            raise ValueError("delay bounds must be positive")
        if high < low:
            raise ValueError("high must be >= low")
        self.low = float(low)
        self.high = float(high)
        self._rng = rng

    def sample(self) -> float:
        return self._rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"uniform({self.low:g}, {self.high:g})"


class ExponentialDelay(DelayModel):
    """Exponentially distributed delay with an optional cap.

    A heavy-ish tailed delay distribution exercises genuinely asynchronous
    schedules (late messages overtaken by retransmissions, "fast delivery"
    of ACKs before the original MSG as discussed in the paper's §III remark).
    """

    def __init__(self, rng: random.Random, mean: float = 0.5,
                 cap: Optional[float] = None, minimum: float = 1e-3) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive when given")
        if minimum <= 0:
            raise ValueError("minimum must be positive")
        self.mean = float(mean)
        self.cap = float(cap) if cap is not None else None
        self.minimum = float(minimum)
        self._rng = rng

    def sample(self) -> float:
        value = self._rng.expovariate(1.0 / self.mean)
        value = max(value, self.minimum)
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    def describe(self) -> str:
        cap = f", cap={self.cap:g}" if self.cap is not None else ""
        return f"exponential(mean={self.mean:g}{cap})"


@dataclass(frozen=True)
class DelaySpec:
    """Declarative factory of per-channel :class:`DelayModel` instances.

    Attributes
    ----------
    kind:
        One of ``"fixed"``, ``"uniform"``, ``"exponential"``, ``"custom"``.
    params:
        Keyword parameters of the model.
    factory:
        For ``kind="custom"``: a callable ``(src, dst, rng) -> DelayModel``.
    """

    kind: str = "fixed"
    params: dict = field(default_factory=dict)
    factory: Optional[Callable[[int, int, random.Random], DelayModel]] = None

    _KINDS = ("fixed", "uniform", "exponential", "custom")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown delay kind {self.kind!r}; expected one of {self._KINDS}"
            )
        if self.kind == "custom" and self.factory is None:
            raise ValueError("custom delay spec requires a factory")

    @classmethod
    def fixed(cls, delay: float = 1.0) -> "DelaySpec":
        """Constant delay."""
        return cls(kind="fixed", params={"delay": delay})

    @classmethod
    def uniform(cls, low: float = 0.1, high: float = 1.0) -> "DelaySpec":
        """Uniform delay in ``[low, high]``."""
        return cls(kind="uniform", params={"low": low, "high": high})

    @classmethod
    def exponential(cls, mean: float = 0.5, cap: Optional[float] = None) -> "DelaySpec":
        """Exponential delay with the given mean (optionally capped)."""
        params: dict = {"mean": mean}
        if cap is not None:
            params["cap"] = cap
        return cls(kind="exponential", params=params)

    @classmethod
    def custom(cls, factory: Callable[[int, int, random.Random], DelayModel]) -> "DelaySpec":
        """Arbitrary user-supplied per-channel factory."""
        return cls(kind="custom", factory=factory)

    def build(self, src: int, dst: int, rng: random.Random) -> DelayModel:
        """Instantiate the delay model for the directed channel *src* → *dst*."""
        if self.kind == "fixed":
            return FixedDelay(**self.params)
        if self.kind == "uniform":
            return UniformDelay(rng=rng, **self.params)
        if self.kind == "exponential":
            return ExponentialDelay(rng=rng, **self.params)
        assert self.kind == "custom" and self.factory is not None
        return self.factory(src, dst, rng)

    def describe(self) -> str:
        """Human-readable description used in reports."""
        if self.kind == "fixed":
            return f"fixed({self.params.get('delay', 1.0)})"
        if self.kind == "uniform":
            return f"uniform({self.params.get('low')}, {self.params.get('high')})"
        if self.kind == "exponential":
            return f"exponential(mean={self.params.get('mean')})"
        return self.kind
