"""The persistent result store: SQLite index + compressed JSON blobs.

A :class:`ResultStore` is a directory::

    store/
      index.sqlite    -- queryable index (results, campaigns, artifacts)
      blobs/ab/ab…cd.json.z  -- one zlib-compressed JSON blob per result

The index holds one row per *cell* (content-addressed by
:func:`~repro.campaigns.hashing.scenario_cell_key`) with the columns the
query layer filters and aggregates on; the blob holds everything the export
layer records about the run (scenario round-trip, verdict, quiescence,
metrics, deliveries, schedule provenance).  Counterexamples found by the
schedule explorer are first-class artifacts in the same store, keyed by
their schedule hash.

Durability model
----------------
``put`` writes the blob to a temporary file, renames it into place, then
commits the index row — so a SIGKILL at any point leaves either a fully
recorded cell or (at worst) an orphan blob, which :meth:`ResultStore.gc`
removes.  The index row is the source of truth: a cell exists iff its row
does.

Schema versioning
-----------------
``SCHEMA_VERSION`` is stamped into the index ``meta`` table at creation and
into every blob.  Opening a store written by a different schema raises
:class:`SchemaMismatchError` — campaigns never silently mix layouts.

Hit accounting
--------------
The store counts ``hits`` (lookups that found a cell), ``misses`` and
``puts`` per open handle.  The campaign runner's resume guarantee — *zero
duplicate simulations* — is asserted straight off these counters.

Beyond the per-handle counters, lifetime totals are persisted in the
``meta`` table (``stat_hits`` / ``stat_misses`` / ``stat_puts``) so they
survive handle churn: distributed workers open and close a store handle
per grant, and before this the totals silently reset every time.  Handle
deltas are flushed incrementally (piggybacked on ``put`` transactions,
every :data:`_STAT_FLUSH_EVERY` lookups, and on :meth:`ResultStore.close`)
as relative ``+= delta`` upserts, so concurrent handles on one store
never overwrite each other's totals.  The same increments also feed the
process-wide :mod:`repro.obs` registry (``repro_store_lookups_total``,
``repro_store_puts_total``, ``repro_store_blob_bytes_total``,
``repro_store_gc_total``) when observability is enabled.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence

from .. import obs
from ..experiments.config import Scenario
from ..experiments.export import provenance_from_dict, scenario_result_to_dict
from ..explore.serialize import counterexample_to_dict, scenario_from_dict
from .hashing import canonical_scenario_dict, scenario_cell_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.runner import ScenarioResult
    from ..explore.explorer import Counterexample

#: Bump when the index or blob layout changes incompatibly.
SCHEMA_VERSION = 2

#: Blob payload versions :meth:`ResultStore.load` accepts.  Version 2 added
#: the per-cell ``wall_time`` *index* column only — the blob layout is
#: unchanged — so version-1 blobs remain readable (tolerant read).
_SUPPORTED_BLOB_VERSIONS = frozenset({1, 2})

#: Index schema versions an opening handle knows how to bring up to date.
#: 1 → 2 adds the nullable ``results.wall_time`` column in place.
_MIGRATABLE_VERSIONS = frozenset({1})

#: How long a handle waits on another writer before erroring (milliseconds).
_BUSY_TIMEOUT_MS = 30_000

_INDEX_NAME = "index.sqlite"
_BLOB_DIR = "blobs"

#: Lookup count between incremental flushes of the lifetime hit/miss
#: counters into the ``meta`` table.  Puts flush inside their own write
#: transaction, so at most this many *lookups* can be lost to a SIGKILL.
_STAT_FLUSH_EVERY = 64


class StoreError(RuntimeError):
    """Base class for result-store failures."""


class SchemaMismatchError(StoreError):
    """The on-disk store was written under a different schema version."""


@dataclass(frozen=True)
class StoredRow:
    """One indexed cell — the queryable summary of a stored result.

    Exposes the same accessors the CLI's aggregation code reads off a live
    :class:`~repro.experiments.runner.ScenarioResult` (``all_properties_
    hold``, ``mean_latency``, ``quiescent``), so table adapters work
    uniformly over live and stored data.
    """

    cell_key: str
    name: str
    algorithm: str
    channel_type: str
    detector_setup: str
    workload: Optional[str]
    n_processes: int
    n_crashes: int
    seed: int
    loss_kind: str
    loss_level: Optional[float]
    delay_kind: str
    explore_strategy: Optional[str]
    explore_index: int
    all_hold: bool
    quiescent: bool
    anonymity_passed: bool
    stop_reason: str
    final_time: float
    mean_latency: Optional[float]
    total_sends: int
    deliveries: int
    schedule_strategy: str
    schedule_hash: str
    created_at: float
    #: Wall-clock seconds the cell took to simulate (``None`` for rows
    #: written before schema 2 or results assembled without timing).
    wall_time: Optional[float] = None

    @property
    def all_properties_hold(self) -> bool:
        """Alias matching :class:`ScenarioResult` for shared aggregation."""
        return self.all_hold


@dataclass(frozen=True)
class CampaignInfo:
    """Summary of one registered campaign: planned vs completed cells."""

    name: str
    suite_name: str
    total: int
    done: int
    created_at: float
    updated_at: float

    @property
    def complete(self) -> bool:
        """Whether every planned cell has a stored result."""
        return self.done >= self.total


@dataclass(frozen=True)
class CounterexampleRow:
    """One stored counterexample artifact (index view).

    ``artifact_id`` is the store's primary key — a hash of the scenario's
    canonical form *plus* the schedule hash, because the schedule hash
    alone only identifies a decision trace, which different scenarios can
    share.
    """

    artifact_id: str
    schedule_hash: str
    strategy: str
    algorithm: str
    signature: tuple[str, ...]
    shrunk_verified: bool
    created_at: float


@dataclass(frozen=True)
class GcStats:
    """What one :meth:`ResultStore.gc` pass removed."""

    orphan_blobs: int
    missing_blobs: int
    dropped_results: int

    def describe(self) -> str:
        """One-line summary for the CLI."""
        return (
            f"gc: removed {self.orphan_blobs} orphan blob(s), dropped "
            f"{self.dropped_results} unreferenced result(s), repaired "
            f"{self.missing_blobs} index row(s) whose blob had vanished"
        )


def _loss_level(scenario: Scenario) -> Optional[float]:
    """Representative numeric loss level for query convenience.

    Bernoulli's probability is the common sweep axis; other kinds have no
    single scalar and map to ``None`` (query them by ``loss_kind``).
    """
    if scenario.loss.kind == "bernoulli":
        return float(scenario.loss.params.get("probability", 0.0))
    if scenario.loss.kind == "none":
        return 0.0
    return None


class ResultStore:
    """Content-addressed persistence for scenario results and artifacts.

    Parameters
    ----------
    root:
        The store directory (created if missing unless ``create=False``).
    create:
        When false, a missing store raises :class:`StoreError` instead of
        being initialised — the CLI's read verbs use this so a typoed path
        fails loudly.
    """

    def __init__(self, root: str | Path, *, create: bool = True) -> None:
        self.root = Path(root)
        index_path = self.root / _INDEX_NAME
        if not create and not index_path.exists():
            raise StoreError(f"no result store at {self.root}")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            (self.root / _BLOB_DIR).mkdir(exist_ok=True)
        except OSError as exc:
            raise StoreError(
                f"cannot use {self.root} as a result store: {exc}"
            ) from exc
        # IMMEDIATE isolation makes every write transaction take the write
        # lock up front, so two handles on one store queue (bounded by the
        # busy timeout) instead of deadlocking on a deferred-to-write lock
        # upgrade ("database is locked" with no retry).
        self._db = sqlite3.connect(index_path, isolation_level="IMMEDIATE",
                                   timeout=_BUSY_TIMEOUT_MS / 1000)
        self._db.row_factory = sqlite3.Row
        # WAL lets readers proceed while a writer commits — the mode the
        # distributed merge/worker paths rely on; busy_timeout covers the
        # statements issued outside explicit transactions.
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        self._db.execute("PRAGMA synchronous=NORMAL")
        #: Lookups that found a stored cell (per open handle).
        self.hits = 0
        #: Lookups that found nothing.
        self.misses = 0
        #: Results written through this handle.
        self.puts = 0
        # Portions of the handle counters already flushed to the meta
        # table; lifetime totals survive handle churn via += upserts.
        self._stat_flushed = {"hits": 0, "misses": 0, "puts": 0}
        self._stat_unflushed = 0
        self._obs_store_label = self.root.name or str(self.root)
        try:
            self._init_schema()
        except BaseException:
            self._db.close()
            raise

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _init_schema(self) -> None:
        # Version check BEFORE any DDL: a store written under a different
        # schema must raise cleanly, not be mutated towards this layout (or
        # crash mid-script on an incompatible table).
        has_meta = self._db.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND "
            "name = 'meta'"
        ).fetchone() is not None
        recorded_version: Optional[int] = None
        if has_meta:
            recorded = self._db.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if recorded is not None:
                recorded_version = int(recorded["value"])
            if (recorded_version is not None
                    and recorded_version != SCHEMA_VERSION
                    and recorded_version not in _MIGRATABLE_VERSIONS):
                raise SchemaMismatchError(
                    f"store at {self.root} has schema version "
                    f"{recorded_version}, this library writes version "
                    f"{SCHEMA_VERSION}"
                )
        with self._db:
            self._db.executescript(
                """
                CREATE TABLE IF NOT EXISTS meta (
                    key TEXT PRIMARY KEY,
                    value TEXT NOT NULL
                );
                CREATE TABLE IF NOT EXISTS results (
                    cell_key TEXT PRIMARY KEY,
                    name TEXT NOT NULL,
                    algorithm TEXT NOT NULL,
                    channel_type TEXT NOT NULL,
                    detector_setup TEXT NOT NULL,
                    workload TEXT,
                    n_processes INTEGER NOT NULL,
                    n_crashes INTEGER NOT NULL,
                    seed INTEGER NOT NULL,
                    loss_kind TEXT NOT NULL,
                    loss_level REAL,
                    delay_kind TEXT NOT NULL,
                    explore_strategy TEXT,
                    explore_index INTEGER NOT NULL,
                    all_hold INTEGER NOT NULL,
                    quiescent INTEGER NOT NULL,
                    anonymity_passed INTEGER NOT NULL,
                    stop_reason TEXT NOT NULL,
                    final_time REAL NOT NULL,
                    mean_latency REAL,
                    total_sends INTEGER NOT NULL,
                    deliveries INTEGER NOT NULL,
                    schedule_strategy TEXT NOT NULL,
                    schedule_hash TEXT NOT NULL,
                    schema_version INTEGER NOT NULL,
                    created_at REAL NOT NULL,
                    wall_time REAL
                );
                CREATE INDEX IF NOT EXISTS idx_results_algorithm
                    ON results (algorithm);
                CREATE INDEX IF NOT EXISTS idx_results_loss
                    ON results (loss_kind, loss_level);
                CREATE TABLE IF NOT EXISTS campaigns (
                    name TEXT PRIMARY KEY,
                    suite_name TEXT NOT NULL,
                    total INTEGER NOT NULL,
                    created_at REAL NOT NULL,
                    updated_at REAL NOT NULL
                );
                CREATE TABLE IF NOT EXISTS campaign_cells (
                    campaign TEXT NOT NULL,
                    position INTEGER NOT NULL,
                    group_label TEXT NOT NULL,
                    cell_key TEXT NOT NULL,
                    PRIMARY KEY (campaign, position)
                );
                CREATE INDEX IF NOT EXISTS idx_campaign_cells_key
                    ON campaign_cells (cell_key);
                CREATE TABLE IF NOT EXISTS artifacts (
                    artifact_id TEXT PRIMARY KEY,
                    schedule_hash TEXT NOT NULL,
                    strategy TEXT NOT NULL,
                    algorithm TEXT NOT NULL,
                    signature TEXT NOT NULL,
                    shrunk_verified INTEGER NOT NULL,
                    payload BLOB NOT NULL,
                    schema_version INTEGER NOT NULL,
                    created_at REAL NOT NULL
                );
                """
            )
            if recorded_version in _MIGRATABLE_VERSIONS:
                # v1 → v2: the results table predates the wall_time column
                # (the executescript CREATE IF NOT EXISTS was a no-op).
                # Old rows keep wall_time NULL — readers treat that as
                # "timing unknown".
                columns = {row["name"] for row in self._db.execute(
                    "PRAGMA table_info(results)"
                ).fetchall()}
                if "wall_time" not in columns:
                    self._db.execute(
                        "ALTER TABLE results ADD COLUMN wall_time REAL"
                    )
                self._db.execute(
                    "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                    (str(SCHEMA_VERSION),),
                )
            self._db.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )

    def close(self) -> None:
        """Flush lifetime counters and close the SQLite handle."""
        try:
            with self._db:
                self._flush_stats_locked()
        except sqlite3.Error:
            # A close must never fail on accounting; worst case the
            # unflushed tail of the lifetime counters is lost.
            pass
        self._db.close()

    # ------------------------------------------------------------------ #
    # lifetime hit accounting (survives handle churn)
    # ------------------------------------------------------------------ #
    def _flush_stats_locked(self) -> None:
        """Upsert the unflushed handle deltas into ``meta`` (``+=``, not
        overwrite — concurrent handles both land their increments).
        Callers hold a transaction (``with self._db``)."""
        for key, current in (("hits", self.hits), ("misses", self.misses),
                             ("puts", self.puts)):
            delta = current - self._stat_flushed[key]
            if delta:
                self._db.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET value = "
                    "CAST(value AS INTEGER) + excluded.value",
                    (f"stat_{key}", str(delta)),
                )
                self._stat_flushed[key] = current
        self._stat_unflushed = 0

    def flush_stats(self) -> None:
        """Persist the handle's lookup/put counters into the store now."""
        with self._db:
            self._flush_stats_locked()

    def _persisted_stat(self, key: str) -> int:
        row = self._db.execute(
            "SELECT value FROM meta WHERE key = ?", (f"stat_{key}",)
        ).fetchone()
        return int(row["value"]) if row is not None else 0

    def _lifetime(self, key: str, current: int) -> int:
        return self._persisted_stat(key) + (current - self._stat_flushed[key])

    @property
    def lifetime_hits(self) -> int:
        """Hits over the store's whole life (all handles, ever)."""
        return self._lifetime("hits", self.hits)

    @property
    def lifetime_misses(self) -> int:
        """Misses over the store's whole life (all handles, ever)."""
        return self._lifetime("misses", self.misses)

    @property
    def lifetime_puts(self) -> int:
        """Puts over the store's whole life (all handles, ever)."""
        return self._lifetime("puts", self.puts)

    def _count_lookup(self, found: bool) -> None:
        """One hit/miss: handle counters, registry, timeline, lazy flush."""
        if found:
            self.hits += 1
        else:
            self.misses += 1
        if obs.enabled():
            obs.counter(
                "repro_store_lookups_total",
                "Result-store lookups by outcome.",
                ("store", "result"),
            ).inc(result="hit" if found else "miss",
                  store=self._obs_store_label)
        if obs.timeline_active():
            obs.emit("store.hit" if found else "store.miss",
                     store=str(self.root))
        self._stat_unflushed += 1
        if self._stat_unflushed >= _STAT_FLUSH_EVERY:
            self.flush_stats()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # blobs
    # ------------------------------------------------------------------ #
    def _blob_path(self, cell_key: str) -> Path:
        return self.root / _BLOB_DIR / cell_key[:2] / f"{cell_key}.json.z"

    def _write_blob(self, cell_key: str, payload: dict[str, Any]) -> None:
        path = self._blob_path(cell_key)
        path.parent.mkdir(exist_ok=True)
        data = zlib.compress(
            json.dumps(payload, separators=(",", ":")).encode("utf-8")
        )
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)
        self._record_blob_written(len(data))

    def _record_blob_written(self, n_bytes: int) -> None:
        if obs.enabled():
            obs.counter(
                "repro_store_blob_bytes_total",
                "Compressed blob bytes written to result stores.",
                ("store",),
            ).inc(n_bytes, store=self._obs_store_label)

    def _read_blob(self, cell_key: str) -> dict[str, Any]:
        path = self._blob_path(cell_key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            raise StoreError(
                f"blob for cell {cell_key} is missing from {self.root} "
                "(run `repro-urb campaign gc` to repair the index)"
            ) from None
        return json.loads(zlib.decompress(raw).decode("utf-8"))

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    _INSERT_RESULT_SQL = """
        INSERT OR REPLACE INTO results (
            cell_key, name, algorithm, channel_type, detector_setup,
            workload, n_processes, n_crashes, seed, loss_kind,
            loss_level, delay_kind, explore_strategy, explore_index,
            all_hold, quiescent, anonymity_passed, stop_reason,
            final_time, mean_latency, total_sends, deliveries,
            schedule_strategy, schedule_hash, schema_version,
            created_at, wall_time
        ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,
                  ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
    """

    @staticmethod
    def _index_params(result: "ScenarioResult", key: str,
                      created_at: float) -> tuple:
        """The :data:`_INSERT_RESULT_SQL` parameter tuple for one result."""
        scenario = result.scenario
        provenance = result.simulation.schedule
        summary = result.metrics
        return (
            key,
            scenario.name,
            scenario.algorithm,
            scenario.channel_type,
            scenario.detector_setup,
            scenario.workload if isinstance(scenario.workload, str)
            else None,
            scenario.n_processes,
            scenario.n_crashes,
            scenario.seed,
            scenario.loss.kind,
            _loss_level(scenario),
            scenario.delay.kind,
            scenario.explore_strategy,
            scenario.explore_index,
            int(result.all_properties_hold),
            int(result.quiescence.quiescent),
            int(result.anonymity.passed),
            result.simulation.stop_reason,
            float(result.simulation.final_time),
            summary.mean_latency,
            summary.total_sends,
            summary.deliveries,
            provenance.strategy if provenance is not None else "default",
            provenance.schedule_hash if provenance is not None else "",
            SCHEMA_VERSION,
            created_at,
            result.wall_time,
        )

    def put(self, result: "ScenarioResult", *,
            cell_key: Optional[str] = None) -> StoredRow:
        """Persist one finished scenario result; returns its index row.

        Re-putting an existing cell overwrites it (the content hash
        guarantees the payload is equivalent, so this is only reachable via
        an explicit ``recompute``).
        """
        keys = None if cell_key is None else [cell_key]
        return self.put_many([result], cell_keys=keys)[0]

    def put_many(self, results: Sequence["ScenarioResult"], *,
                 cell_keys: Optional[Sequence[str]] = None) -> list[StoredRow]:
        """Persist a batch of finished results in one index transaction.

        Every blob is written (and atomically renamed into place) first,
        then all index rows land in a *single* transaction — the same
        blob-before-row durability order as :meth:`put`, but with one
        commit fsync amortised over the whole batch.  A SIGKILL mid-batch
        therefore leaves fully recorded cells for the committed rows and,
        at worst, orphan blobs for the rest (:meth:`gc` removes those);
        never an index row without its blob.
        """
        results = list(results)
        if cell_keys is None:
            keys = [scenario_cell_key(result.scenario) for result in results]
        else:
            keys = [str(key) for key in cell_keys]
            if len(keys) != len(results):
                raise StoreError(
                    f"put_many got {len(results)} results but "
                    f"{len(keys)} cell keys"
                )
        params: list[tuple] = []
        for result, key in zip(results, keys):
            payload = {
                "schema_version": SCHEMA_VERSION,
                "cell_key": key,
                "scenario": canonical_scenario_dict(result.scenario),
                "result": scenario_result_to_dict(result),
                "created_at": time.time(),
            }
            self._write_blob(key, payload)
            params.append(self._index_params(result, key,
                                             payload["created_at"]))
        if params:
            with self._db:
                self._db.executemany(self._INSERT_RESULT_SQL, params)
                self.puts += len(params)
                self._flush_stats_locked()
        rows: list[StoredRow] = []
        for key in keys:
            self._count_put(key)
            row = self.get(key, count=False)
            assert row is not None
            rows.append(row)
        return rows

    def _count_put(self, cell_key: str) -> None:
        if obs.enabled():
            obs.counter(
                "repro_store_puts_total",
                "Results written to result stores.",
                ("store",),
            ).inc(store=self._obs_store_label)
        if obs.timeline_active():
            obs.emit("store.put", store=str(self.root), cell_key=cell_key)

    def contains(self, cell_key: str, *, count: bool = True) -> bool:
        """Whether a result for *cell_key* is stored (counts hit/miss)."""
        found = self._db.execute(
            "SELECT 1 FROM results WHERE cell_key = ?", (cell_key,)
        ).fetchone() is not None
        if count:
            self._count_lookup(found)
        return found

    def __contains__(self, cell_key: object) -> bool:
        return isinstance(cell_key, str) and self.contains(cell_key,
                                                           count=False)

    def get(self, cell_key: str, *, count: bool = True) -> Optional[StoredRow]:
        """The index row for *cell_key*, or ``None``."""
        row = self._db.execute(
            "SELECT * FROM results WHERE cell_key = ?", (cell_key,)
        ).fetchone()
        if count:
            self._count_lookup(row is not None)
        return None if row is None else self._row_to_stored(row)

    def load(self, cell_key: str) -> dict[str, Any]:
        """The full stored payload of one cell, scenario rebuilt live.

        The mapping mirrors the blob: ``scenario`` is a live
        :class:`Scenario`, ``result`` the export-layer dict with
        ``schedule`` rebuilt into a
        :class:`~repro.simulation.engine.ScheduleProvenance`.
        """
        payload = self._read_blob(cell_key)
        if payload.get("schema_version") not in _SUPPORTED_BLOB_VERSIONS:
            raise SchemaMismatchError(
                f"blob for cell {cell_key} has schema version "
                f"{payload.get('schema_version')}, supported: "
                f"{sorted(_SUPPORTED_BLOB_VERSIONS)}"
            )
        payload["scenario"] = scenario_from_dict(payload["scenario"])
        payload["result"]["schedule"] = provenance_from_dict(
            payload["result"].get("schedule")
        )
        return payload

    @staticmethod
    def _row_to_stored(row: sqlite3.Row) -> StoredRow:
        return StoredRow(
            cell_key=row["cell_key"],
            name=row["name"],
            algorithm=row["algorithm"],
            channel_type=row["channel_type"],
            detector_setup=row["detector_setup"],
            workload=row["workload"],
            n_processes=row["n_processes"],
            n_crashes=row["n_crashes"],
            seed=row["seed"],
            loss_kind=row["loss_kind"],
            loss_level=row["loss_level"],
            delay_kind=row["delay_kind"],
            explore_strategy=row["explore_strategy"],
            explore_index=row["explore_index"],
            all_hold=bool(row["all_hold"]),
            quiescent=bool(row["quiescent"]),
            anonymity_passed=bool(row["anonymity_passed"]),
            stop_reason=row["stop_reason"],
            final_time=row["final_time"],
            mean_latency=row["mean_latency"],
            total_sends=row["total_sends"],
            deliveries=row["deliveries"],
            schedule_strategy=row["schedule_strategy"],
            schedule_hash=row["schedule_hash"],
            created_at=row["created_at"],
            wall_time=row["wall_time"],
        )

    #: Filters accepted by :meth:`query` (name -> SQL column).
    _QUERY_COLUMNS = {
        "algorithm": "algorithm",
        "channel_type": "channel_type",
        "detector_setup": "detector_setup",
        "workload": "workload",
        "n_processes": "n_processes",
        "n_crashes": "n_crashes",
        "seed": "seed",
        "loss_kind": "loss_kind",
        "loss": "loss_level",
        "delay_kind": "delay_kind",
        "explore_strategy": "explore_strategy",
        "all_hold": "all_hold",
        "quiescent": "quiescent",
        "anonymity_passed": "anonymity_passed",
        "stop_reason": "stop_reason",
        "name": "name",
    }

    def query(
        self,
        *,
        campaign: Optional[str] = None,
        group: Optional[str] = None,
        limit: Optional[int] = None,
        **filters: Any,
    ) -> list[StoredRow]:
        """Stored rows matching every given equality filter.

        Keyword filters map onto index columns (``algorithm=...``,
        ``loss=0.2`` — the Bernoulli probability, ``all_hold=True`` …).
        ``campaign``/``group`` restrict to a campaign's cells, returned in
        campaign position order (the deterministic suite order aggregation
        relies on); without them, rows come back in insertion order.
        """
        clauses: list[str] = []
        params: list[Any] = []
        for key, value in filters.items():
            column = self._QUERY_COLUMNS.get(key)
            if column is None:
                raise StoreError(
                    f"unknown query filter {key!r}; known: "
                    f"{', '.join(sorted(self._QUERY_COLUMNS))}, campaign, "
                    "group, limit"
                )
            if isinstance(value, bool):
                value = int(value)
            clauses.append(f"r.{column} = ?")
            params.append(value)
        if campaign is not None or group is not None:
            sql = (
                "SELECT r.* FROM campaign_cells c "
                "JOIN results r ON r.cell_key = c.cell_key"
            )
            if campaign is not None:
                clauses.append("c.campaign = ?")
                params.append(campaign)
            if group is not None:
                clauses.append("c.group_label = ?")
                params.append(group)
            order = "ORDER BY c.campaign, c.position"
        else:
            sql = "SELECT r.* FROM results r"
            order = "ORDER BY r.rowid"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += f" {order}"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        rows = self._db.execute(sql, params).fetchall()
        return [self._row_to_stored(row) for row in rows]

    def count(self, **filters: Any) -> int:
        """Number of stored rows matching the filters (see :meth:`query`)."""
        return len(self.query(**filters))

    def __len__(self) -> int:
        return int(self._db.execute(
            "SELECT COUNT(*) AS c FROM results"
        ).fetchone()["c"])

    # ------------------------------------------------------------------ #
    # campaigns
    # ------------------------------------------------------------------ #
    def register_campaign(
        self,
        name: str,
        suite_name: str,
        cells: Sequence[tuple[int, str, str]],
        *,
        resume: bool = False,
    ) -> None:
        """Record a campaign manifest: ``(position, group, cell_key)`` rows.

        A campaign name can only be reused with ``resume=True``, and then
        only with the *identical* cell list — resuming a changed suite under
        an old name would make ``status`` lie about what the numbers mean.
        """
        existing = self._db.execute(
            "SELECT name FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        if existing is None:
            now = time.time()
            try:
                with self._db:
                    # `total` counts distinct cells (the completion
                    # denominator): suites scheduling the same scenario
                    # twice still reach 100%.
                    self._db.execute(
                        "INSERT INTO campaigns (name, suite_name, total, "
                        "created_at, updated_at) VALUES (?, ?, ?, ?, ?)",
                        (name, suite_name,
                         len({key for _position, _group, key in cells}),
                         now, now),
                    )
                    self._db.executemany(
                        "INSERT INTO campaign_cells (campaign, position, "
                        "group_label, cell_key) VALUES (?, ?, ?, ?)",
                        [(name, position, group, key)
                         for position, group, key in cells],
                    )
                return
            except sqlite3.IntegrityError:
                # Lost a registration race against another handle on the
                # same store — treat the campaign as pre-existing below.
                pass
        if not resume:
            raise StoreError(
                f"campaign {name!r} already exists in {self.root}; pass "
                "resume=True (CLI: --resume) to continue it"
            )
        recorded = self.campaign_cells(name)
        if recorded != [tuple(cell) for cell in cells]:
            raise StoreError(
                f"campaign {name!r} cannot resume: the suite expands to "
                "a different cell list than the recorded manifest"
            )
        with self._db:
            self._db.execute(
                "UPDATE campaigns SET updated_at = ? WHERE name = ?",
                (time.time(), name),
            )

    def campaign_cells(self, name: str) -> list[tuple[int, str, str]]:
        """The manifest of *name*: ``(position, group, cell_key)`` in order."""
        rows = self._db.execute(
            "SELECT position, group_label, cell_key FROM campaign_cells "
            "WHERE campaign = ? ORDER BY position",
            (name,),
        ).fetchall()
        return [(row["position"], row["group_label"], row["cell_key"])
                for row in rows]

    def campaign_info(self, name: str) -> Optional[CampaignInfo]:
        """Progress summary of one campaign, or ``None`` if unknown."""
        row = self._db.execute(
            "SELECT * FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            return None
        done = int(self._db.execute(
            "SELECT COUNT(DISTINCT c.cell_key) AS c FROM campaign_cells c "
            "JOIN results r ON r.cell_key = c.cell_key WHERE c.campaign = ?",
            (name,),
        ).fetchone()["c"])
        return CampaignInfo(
            name=row["name"],
            suite_name=row["suite_name"],
            total=row["total"],
            done=done,
            created_at=row["created_at"],
            updated_at=row["updated_at"],
        )

    def campaigns(self) -> list[CampaignInfo]:
        """Every registered campaign, in creation order."""
        names = [row["name"] for row in self._db.execute(
            "SELECT name FROM campaigns ORDER BY created_at, name"
        ).fetchall()]
        infos = (self.campaign_info(name) for name in names)
        return [info for info in infos if info is not None]

    def delete_campaign(self, name: str) -> None:
        """Drop a campaign manifest (results stay; gc can drop orphans)."""
        if self._db.execute("SELECT 1 FROM campaigns WHERE name = ?",
                            (name,)).fetchone() is None:
            raise StoreError(f"unknown campaign {name!r} in {self.root}")
        with self._db:
            self._db.execute("DELETE FROM campaigns WHERE name = ?", (name,))
            self._db.execute("DELETE FROM campaign_cells WHERE campaign = ?",
                             (name,))

    # ------------------------------------------------------------------ #
    # raw access (store-merge support)
    # ------------------------------------------------------------------ #
    def result_cell_keys(self) -> list[str]:
        """Every stored cell key, in insertion order."""
        return [row["cell_key"] for row in self._db.execute(
            "SELECT cell_key FROM results ORDER BY rowid"
        ).fetchall()]

    def raw_result_row(self, cell_key: str) -> Optional[dict[str, Any]]:
        """One result row as a plain column→value mapping (``None`` if
        absent).  This is the copy unit of ``store merge`` — columns travel
        verbatim, including ``created_at`` and ``wall_time``."""
        row = self._db.execute(
            "SELECT * FROM results WHERE cell_key = ?", (cell_key,)
        ).fetchone()
        return None if row is None else dict(row)

    def blob_bytes(self, cell_key: str) -> bytes:
        """The compressed on-disk blob of one cell, verbatim."""
        path = self._blob_path(cell_key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise StoreError(
                f"blob for cell {cell_key} is missing from {self.root} "
                "(run `repro-urb campaign gc` to repair the index)"
            ) from None

    def insert_raw_result(self, row: dict[str, Any], blob: bytes) -> None:
        """Insert a result row copied verbatim from another store.

        Writes the blob bytes first (atomic rename), then the index row —
        the same durability order as :meth:`put`.  The row's own
        ``schema_version`` is preserved; both stores were version-checked
        at open time.
        """
        key = row["cell_key"]
        path = self._blob_path(key)
        path.parent.mkdir(exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, path)
        self._record_blob_written(len(blob))
        columns = list(row)
        with self._db:
            self._db.execute(
                f"INSERT OR REPLACE INTO results ({', '.join(columns)}) "
                f"VALUES ({', '.join('?' for _ in columns)})",
                [row[column] for column in columns],
            )
            self.puts += 1
            self._flush_stats_locked()
        self._count_put(key)

    def raw_artifact_rows(self) -> list[dict[str, Any]]:
        """Every counterexample artifact row as a plain mapping (payload
        bytes included), oldest first — the merge copy unit."""
        rows = self._db.execute(
            "SELECT * FROM artifacts ORDER BY created_at, artifact_id"
        ).fetchall()
        return [dict(row) for row in rows]

    def insert_raw_artifact(self, row: dict[str, Any]) -> bool:
        """Adopt an artifact row copied from another store.

        Artifact ids are content hashes (scenario + schedule), so an id
        collision means the payloads agree — ``INSERT OR IGNORE`` keeps the
        first copy.  Returns whether a new row was written.
        """
        columns = list(row)
        with self._db:
            cursor = self._db.execute(
                f"INSERT OR IGNORE INTO artifacts ({', '.join(columns)}) "
                f"VALUES ({', '.join('?' for _ in columns)})",
                [row[column] for column in columns],
            )
        return cursor.rowcount > 0

    # ------------------------------------------------------------------ #
    # counterexample artifacts
    # ------------------------------------------------------------------ #
    @staticmethod
    def _artifact_id(data: dict[str, Any]) -> str:
        """Primary key of one counterexample artifact.

        The schedule hash alone only identifies a *decision trace* — two
        different scenarios can legitimately share one (e.g. short
        enumerative traces), so the key hashes the scenario's canonical
        form too.  Re-storing the same scenario+schedule is idempotent.
        """
        scenario_json = json.dumps(data["scenario"], sort_keys=True,
                                   separators=(",", ":"))
        payload = f"artifact:{scenario_json}:{data['schedule_hash']}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    def put_counterexample(self, counterexample: "Counterexample") -> str:
        """Persist an explorer counterexample; returns its artifact id.

        The payload is the exact replayable artifact schema written by
        :func:`repro.explore.serialize.write_counterexample`, so an exported
        artifact feeds straight into ``repro-urb replay``.
        """
        data = counterexample_to_dict(counterexample)
        payload = zlib.compress(
            json.dumps(data, separators=(",", ":")).encode("utf-8")
        )
        artifact_id = self._artifact_id(data)
        with self._db:
            self._db.execute(
                "INSERT OR REPLACE INTO artifacts (artifact_id, "
                "schedule_hash, strategy, algorithm, signature, "
                "shrunk_verified, payload, schema_version, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    artifact_id,
                    data["schedule_hash"],
                    data["strategy"],
                    data["scenario"]["algorithm"],
                    json.dumps(list(data["signature"])),
                    int(bool(data["shrunk_verified"])),
                    payload,
                    SCHEMA_VERSION,
                    time.time(),
                ),
            )
        return artifact_id

    def counterexamples(self) -> list[CounterexampleRow]:
        """Index rows of every stored counterexample, oldest first."""
        rows = self._db.execute(
            "SELECT artifact_id, schedule_hash, strategy, algorithm, "
            "signature, shrunk_verified, created_at FROM artifacts "
            "ORDER BY created_at"
        ).fetchall()
        return [
            CounterexampleRow(
                artifact_id=row["artifact_id"],
                schedule_hash=row["schedule_hash"],
                strategy=row["strategy"],
                algorithm=row["algorithm"],
                signature=tuple(json.loads(row["signature"])),
                shrunk_verified=bool(row["shrunk_verified"]),
                created_at=row["created_at"],
            )
            for row in rows
        ]

    def load_counterexample_dict(self, reference: str) -> dict[str, Any]:
        """The raw artifact dict of one stored counterexample.

        *reference* is an artifact id or a schedule hash; a schedule hash
        shared by several stored artifacts is rejected as ambiguous.
        """
        rows = self._db.execute(
            "SELECT payload FROM artifacts WHERE artifact_id = ?",
            (reference,),
        ).fetchall()
        if not rows:
            rows = self._db.execute(
                "SELECT payload FROM artifacts WHERE schedule_hash = ?",
                (reference,),
            ).fetchall()
        if not rows:
            raise StoreError(f"no counterexample {reference!r} in {self.root}")
        if len(rows) > 1:
            raise StoreError(
                f"schedule hash {reference!r} matches {len(rows)} stored "
                "counterexamples; use the artifact id from "
                "`campaign query --counterexamples`"
            )
        return json.loads(zlib.decompress(rows[0]["payload"]).decode("utf-8"))

    def export_counterexample(self, reference: str,
                              path: str | Path) -> Path:
        """Write one stored counterexample back out as a replayable JSON
        artifact (the ``repro-urb replay`` input format)."""
        path = Path(path)
        path.write_text(
            json.dumps(self.load_counterexample_dict(reference), indent=2)
            + "\n",
            encoding="utf-8",
        )
        return path

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def _iter_blob_paths(self) -> Iterator[Path]:
        yield from (self.root / _BLOB_DIR).glob("*/*.json.z")
        # Interrupted writes leave .tmp files behind; gc sweeps them too.
        yield from (self.root / _BLOB_DIR).glob("*/*.tmp")

    def gc(self, *, drop_unreferenced: bool = False) -> GcStats:
        """Repair and compact the store.

        * removes blobs (and interrupted ``.tmp`` writes) with no index row;
        * drops index rows whose blob has vanished (they would fail on
          :meth:`load`), so the cells get recomputed instead of erroring;
        * with ``drop_unreferenced=True``, additionally deletes results not
          referenced by any campaign manifest — the knob for reclaiming
          space after :meth:`delete_campaign`;
        * finishes with ``VACUUM``.
        """
        dropped_results = 0
        if drop_unreferenced:
            with self._db:
                cursor = self._db.execute(
                    "DELETE FROM results WHERE cell_key NOT IN "
                    "(SELECT cell_key FROM campaign_cells)"
                )
                dropped_results = cursor.rowcount
        indexed = {row["cell_key"] for row in self._db.execute(
            "SELECT cell_key FROM results"
        ).fetchall()}
        orphans = 0
        on_disk: set[str] = set()
        for path in list(self._iter_blob_paths()):
            key = path.name.split(".", 1)[0]
            if path.suffix == ".tmp" or key not in indexed:
                path.unlink(missing_ok=True)
                orphans += 1
            else:
                on_disk.add(key)
        missing = indexed - on_disk
        if missing:
            with self._db:
                self._db.executemany(
                    "DELETE FROM results WHERE cell_key = ?",
                    [(key,) for key in missing],
                )
        self._db.execute("VACUUM")
        stats = GcStats(orphan_blobs=orphans, missing_blobs=len(missing),
                        dropped_results=dropped_results)
        if obs.enabled():
            gc_counter = obs.counter(
                "repro_store_gc_total",
                "Result-store gc actions by kind.",
                ("store", "kind"),
            )
            gc_counter.inc(stats.orphan_blobs, kind="orphan_blobs",
                           store=self._obs_store_label)
            gc_counter.inc(stats.missing_blobs, kind="missing_blobs",
                           store=self._obs_store_label)
            gc_counter.inc(stats.dropped_results, kind="dropped_results",
                           store=self._obs_store_label)
        if obs.timeline_active():
            obs.emit("store.gc", store=str(self.root),
                     orphan_blobs=stats.orphan_blobs,
                     missing_blobs=stats.missing_blobs,
                     dropped_results=stats.dropped_results)
        return stats
