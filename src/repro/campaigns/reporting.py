"""Query/aggregation layer: stored campaign data → tables and reports.

The adapters here feed the existing presentation stack —
:func:`repro.analysis.tables.render_table` and
:class:`repro.experiments.report.ExperimentArtifact` /
:class:`~repro.experiments.report.ExperimentResult` — from a
:class:`~repro.campaigns.store.ResultStore` instead of live runs, using the
same statistics (:func:`repro.analysis.stats.summarize`) over the same
floats in the same order.  The formatting helpers are shared with the CLI's
live sweep rendering, so a stored campaign and an in-memory sweep of the
same suite render byte-identical aggregate tables.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence, TypeVar

from ..analysis.stats import summarize
from ..experiments.report import ExperimentArtifact, ExperimentResult
from .store import ResultStore, StoreError, StoredRow

R = TypeVar("R")

#: Columns of the standard per-group aggregate table (sweeps + campaigns).
GROUP_TABLE_HEADERS = ("configuration", "runs", "mean latency", "URB ok",
                       "quiescent")


def format_group_rows(
    groups: Mapping[str, Sequence[R]],
    *,
    mean_latency_of: Callable[[R], Optional[float]],
    ok_of: Callable[[R], bool],
    quiescent_of: Callable[[R], bool],
) -> list[list[Any]]:
    """The standard aggregate table rows over grouped run data.

    Works uniformly over live :class:`~repro.experiments.runner.
    ScenarioResult` groups and stored :class:`StoredRow` groups — callers
    supply the accessors, this function owns the statistics and formatting,
    which is what makes stored and live tables comparable byte-for-byte.
    """
    rows: list[list[Any]] = []
    for group, results in groups.items():
        values = [v for v in (mean_latency_of(r) for r in results)
                  if v is not None]
        stats = summarize(float(v) for v in values)
        ok = (sum(1 for r in results if ok_of(r)) / len(results)
              if results else 0.0)
        quiescent = (sum(1 for r in results if quiescent_of(r)) / len(results)
                     if results else 0.0)
        rows.append([
            group,
            len(results),
            f"{stats.mean:.3f}" if stats else "-",
            f"{ok:.2f}",
            f"{quiescent:.2f}",
        ])
    return rows


def campaign_groups(store: ResultStore,
                    campaign: str) -> dict[str, list[StoredRow]]:
    """Stored rows of a campaign keyed by group, in first-seen position
    order (cells without a stored result are skipped, like failed items in
    a live :class:`~repro.experiments.batch.SuiteResult`)."""
    manifest = store.campaign_cells(campaign)
    grouped: dict[str, list[StoredRow]] = {}
    for _position, group, cell_key in manifest:
        bucket = grouped.setdefault(group, [])
        row = store.get(cell_key, count=False)
        if row is not None:
            bucket.append(row)
    return grouped


def campaign_table(store: ResultStore, campaign: str,
                   *, notes: str = "") -> ExperimentArtifact:
    """The per-group aggregate table of a stored campaign."""
    info = store.campaign_info(campaign)
    if info is None:
        raise StoreError(f"unknown campaign {campaign!r} in {store.root}")
    rows = format_group_rows(
        campaign_groups(store, campaign),
        mean_latency_of=lambda row: row.mean_latency,
        ok_of=lambda row: row.all_properties_hold,
        quiescent_of=lambda row: row.quiescent,
    )
    return ExperimentArtifact(
        name=f"Campaign {campaign} ({info.done}/{info.total} cells)",
        kind="table",
        headers=list(GROUP_TABLE_HEADERS),
        rows=rows,
        notes=notes,
    )


def campaign_report(store: ResultStore, campaign: str) -> ExperimentResult:
    """A stored campaign packaged as an :class:`ExperimentResult`.

    This is the adapter that lets everything downstream of the experiment
    layer (plain-text rendering, JSON/CSV export via
    :mod:`repro.experiments.export`) consume persisted campaigns without
    re-running anything.
    """
    info = store.campaign_info(campaign)
    if info is None:
        raise StoreError(f"unknown campaign {campaign!r} in {store.root}")
    return ExperimentResult(
        experiment_id=f"campaign:{campaign}",
        title=f"Campaign {campaign!r} (suite {info.suite_name!r})",
        artifacts=[campaign_table(store, campaign)],
        parameters={
            "cells": info.total,
            "done": info.done,
            "store": str(store.root),
        },
    )


def query_table(store: ResultStore, *, limit: Optional[int] = None,
                **filters: Any) -> ExperimentArtifact:
    """Ad-hoc ``store.query`` results as a renderable table."""
    rows = store.query(limit=limit, **filters)
    table_rows = [
        [
            row.cell_key[:12],
            row.algorithm,
            row.n_processes,
            row.n_crashes,
            row.seed,
            f"{row.loss_level:.3g}" if row.loss_level is not None
            else row.loss_kind,
            row.all_hold,
            row.quiescent,
            f"{row.mean_latency:.3f}" if row.mean_latency is not None else "-",
            f"{row.wall_time:.3f}" if row.wall_time is not None else "-",
            row.stop_reason,
        ]
        for row in rows
    ]
    described = ", ".join(f"{k}={v}" for k, v in sorted(filters.items()))
    return ExperimentArtifact(
        name=f"Query [{described}]" if described else "Query [all]",
        kind="table",
        headers=["cell", "algorithm", "n", "crashes", "seed", "loss",
                 "URB ok", "quiescent", "mean latency", "wall s",
                 "stop reason"],
        rows=table_rows,
        notes=f"{len(table_rows)} row(s)",
    )
