"""Canonical content hashing of scenarios — the campaign cache key.

A campaign *cell* is one fully described simulated run: registry component
names, every option field, and the seed.  Because every run in this library
is bit-determined by its scenario, two scenarios with equal canonical forms
produce byte-identical results — so their hash is a safe content address for
a stored result, and "has this cell already been computed?" is a single key
lookup.

Canonicalisation rules (documented in DESIGN.md §10):

* The scenario is first serialised field-by-field through
  :func:`repro.explore.serialize.scenario_to_dict` — the same registry-
  validated round-trip counterexample artifacts use.  Scenarios that cannot
  be serialised faithfully (engine hooks, inline workload objects, custom
  callable-backed loss/delay specs) cannot be cached and raise
  :class:`ValueError`.
* The dict is rendered as minified JSON with **sorted keys** at every
  nesting level, so the hash is independent of field declaration order,
  crash-map insertion order and metadata ordering.
* Floats use ``repr`` (via ``json``), which round-trips exactly — ``0.1``
  and ``0.1000000000000001`` are different cells, as they must be for
  bit-identical caching.
* The hash covers the *explore* fields too: an RNG-driven run and a
  strategy-controlled run of the same configuration are different cells.

``HASH_VERSION`` is folded into the digest: if the canonical form ever
changes (a new scenario field, a serialisation fix), old keys stop matching
and affected cells are recomputed rather than silently reused.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..experiments.config import Scenario
from ..explore.serialize import scenario_from_dict, scenario_to_dict

#: Bump when the canonical form changes (invalidates every cached cell).
HASH_VERSION = 1

#: Scenario fields the simulator treats as floats: an int-specified value
#: (``max_time=60``) compares equal to its float form and must hash equally.
_FLOAT_FIELDS = (
    "tick_interval",
    "max_time",
    "check_interval",
    "drain_grace_period",
    "fd_detection_delay",
    "fd_learn_delay",
    "apstar_detection_delay",
)


def canonical_scenario_dict(scenario: Scenario) -> dict[str, Any]:
    """The scenario's canonical JSON-friendly form (see module docs).

    Raises :class:`ValueError` for scenarios with no stable serialised form
    (hooks, inline workloads, custom loss/delay callables).
    """
    data = scenario_to_dict(scenario)
    for field in _FLOAT_FIELDS:
        if data.get(field) is not None:
            data[field] = float(data[field])
    return data


def canonical_scenario_json(scenario: Scenario) -> str:
    """Minified, key-sorted JSON of the canonical form (the hashed bytes)."""
    try:
        return json.dumps(canonical_scenario_dict(scenario),
                          sort_keys=True, separators=(",", ":"))
    except TypeError as exc:
        # Non-JSON metadata values have no canonical byte form.
        raise ValueError(
            f"scenario {scenario.name!r} has unserialisable metadata and "
            f"cannot be content-addressed: {exc}"
        ) from None


def scenario_cell_key(scenario: Scenario) -> str:
    """Content address of one campaign cell (hex, 32 chars).

    Stable across processes, Python versions and field ordering; changes
    whenever any field that influences the simulation changes.
    """
    payload = f"cell:v{HASH_VERSION}:{canonical_scenario_json(scenario)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def scenario_from_canonical_dict(data: dict[str, Any]) -> Scenario:
    """Rebuild a scenario from its canonical form (registry-validated)."""
    return scenario_from_dict(data)
