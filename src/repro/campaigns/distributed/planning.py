"""Cost planning for distributed campaigns.

``plan_campaign`` answers, before anyone starts workers: *how much wall
time does this suite cost, and how many workers are worth starting?*  The
estimate comes from data the store already has — schema 2 indexes per-cell
``wall_time`` — so a plan gets sharper as more of the parameter space has
ever been executed:

* cells of the suite already stored are free (the campaign machinery skips
  them) and contribute their *measured* wall time to the per-cell estimate;
* for the rest, the estimate falls back to the store-wide mean, then to an
  assumed default, and says which it used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ...experiments.batch import ScenarioSuite, SuiteItem, normalise_suite
from ...experiments.config import Scenario
from ...experiments.report import ExperimentArtifact
from ..hashing import scenario_cell_key
from ..store import ResultStore

#: Per-cell estimate when no timing data exists anywhere (seconds).
DEFAULT_CELL_SECONDS = 0.5

#: Worker counts the suggestion table evaluates.
DEFAULT_WORKER_COUNTS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class CampaignPlan:
    """The wall-cost estimate for one suite against one store."""

    suite_name: str
    total_cells: int
    stored_cells: int
    pending_cells: int
    #: Mean measured seconds per cell, and how many measurements back it.
    mean_cell_seconds: float
    timed_cells: int
    #: Where the per-cell figure came from: ``"suite"`` (timings of these
    #: exact cells), ``"store"`` (store-wide mean) or ``"assumed"``.
    estimate_basis: str
    #: Estimated sequential wall seconds for the pending cells.
    est_sequential_seconds: float
    #: ``(workers, est_wall_seconds)`` suggestions, ascending workers.
    suggestions: tuple[tuple[int, float], ...]
    #: Workers needed to finish within the target (``None`` = already 0s).
    suggested_workers: Optional[int]
    target_seconds: float

    def describe(self) -> str:
        """Multi-line human-readable plan."""
        lines = [
            f"plan for suite {self.suite_name!r}: {self.total_cells} "
            f"cell(s), {self.stored_cells} already stored, "
            f"{self.pending_cells} to execute",
            f"per-cell estimate: {self.mean_cell_seconds:.3f}s "
            f"({self.estimate_basis}, {self.timed_cells} timed cell(s))",
            f"estimated sequential cost: {self.est_sequential_seconds:.1f}s",
        ]
        if self.suggested_workers is not None:
            lines.append(
                f"suggested workers for <= {self.target_seconds:.0f}s wall "
                f"time: {self.suggested_workers}"
            )
        else:
            lines.append("nothing to execute — no workers needed")
        return "\n".join(lines)

    def table(self) -> ExperimentArtifact:
        """The worker-count suggestion table as a renderable artifact."""
        return ExperimentArtifact(
            name=f"Plan for suite {self.suite_name!r}",
            kind="table",
            headers=["workers", "est wall s", "speedup"],
            rows=[
                [
                    workers,
                    f"{seconds:.1f}",
                    f"{self.est_sequential_seconds / seconds:.1f}x"
                    if seconds > 0 else "-",
                ]
                for workers, seconds in self.suggestions
            ],
            notes=(
                f"{self.pending_cells} pending cell(s) at "
                f"{self.mean_cell_seconds:.3f}s/cell "
                f"({self.estimate_basis} basis)"
            ),
        )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def plan_campaign(
    suite: Union[ScenarioSuite, Iterable[Scenario], Sequence[SuiteItem]],
    store: Optional[Union[ResultStore, str, Path]] = None,
    *,
    target_seconds: float = 60.0,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    default_cell_seconds: float = DEFAULT_CELL_SECONDS,
) -> CampaignPlan:
    """Estimate the wall cost of running *suite* against *store*.

    With no store (or an empty one) the plan is built from
    *default_cell_seconds* and labelled ``assumed`` — still useful for
    picking a worker count, honest about its basis.
    """
    if target_seconds <= 0:
        raise ValueError("target_seconds must be positive")
    suite_name, items = normalise_suite(suite)
    keys = [scenario_cell_key(item.scenario) for item in items]
    unique_keys = list(dict.fromkeys(keys))

    if isinstance(store, (str, Path)):
        with ResultStore(store, create=False) as handle:
            return plan_campaign(
                suite, handle,
                target_seconds=target_seconds, worker_counts=worker_counts,
                default_cell_seconds=default_cell_seconds,
            )

    stored = 0
    suite_timings: list[float] = []
    store_timings: list[float] = []
    if store is not None:
        for key in unique_keys:
            row = store.get(key, count=False)
            if row is not None:
                stored += 1
                if row.wall_time is not None:
                    suite_timings.append(row.wall_time)
        store_timings = [
            row.wall_time for row in store.query()
            if row.wall_time is not None
        ]

    if suite_timings:
        mean_seconds, basis, timed = (_mean(suite_timings), "suite",
                                      len(suite_timings))
    elif store_timings:
        mean_seconds, basis, timed = (_mean(store_timings), "store",
                                      len(store_timings))
    else:
        mean_seconds, basis, timed = default_cell_seconds, "assumed", 0

    pending = len(unique_keys) - stored
    est_sequential = pending * mean_seconds
    counts = sorted({max(1, int(count)) for count in worker_counts})
    suggestions = tuple(
        (count, est_sequential / count if pending else 0.0)
        for count in counts
    )
    if pending == 0:
        suggested: Optional[int] = None
    else:
        suggested = max(1, min(pending,
                               math.ceil(est_sequential / target_seconds)))
    return CampaignPlan(
        suite_name=suite_name,
        total_cells=len(unique_keys),
        stored_cells=stored,
        pending_cells=pending,
        mean_cell_seconds=mean_seconds,
        timed_cells=timed,
        estimate_basis=basis,
        est_sequential_seconds=est_sequential,
        suggestions=suggestions,
        suggested_workers=suggested,
        target_seconds=target_seconds,
    )
