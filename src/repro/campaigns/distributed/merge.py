"""Idempotent union of result stores.

``merge_stores`` copies every cell a source store has and the destination
lacks — blob bytes and index row travel verbatim, so ``created_at`` and
``wall_time`` provenance survives the merge.  Because cells are
content-addressed by :func:`~repro.campaigns.hashing.scenario_cell_key`,
re-merging the same source is a no-op by construction, and merging the
partial store of a SIGKILLed worker alongside the store of the worker that
re-executed its cells deduplicates cleanly.

The one thing a merge must never do silently is *pick a winner*: when both
stores hold a cell but the stored payloads differ semantically, either a
run was not deterministic or one store is corrupt.  That raises
:class:`MergeConflictError` naming the cell — fail loudly, merge nothing
further.  "Semantically" means the blob JSON minus the volatile
``created_at`` stamp (two honest executions of one cell differ only there;
``wall_time`` lives in the index, outside the blob, and is never compared).

Campaign manifests merge by name: an unknown campaign is adopted wholesale,
a known one must carry the identical cell list (same rule as resuming).
Counterexample artifacts union by their content-hashed ``artifact_id``.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..store import ResultStore, StoreError


class MergeConflictError(StoreError):
    """Two stores hold semantically different payloads for one cell.

    This is loud on purpose: identical scenarios must produce identical
    results (the determinism invariant every campaign feature leans on), so
    a conflict is evidence of a determinism bug or store corruption — never
    something to paper over by picking a side.
    """

    def __init__(self, cell_key: str, dest_root: str, source_root: str) -> None:
        super().__init__(
            f"merge conflict on cell {cell_key}: {source_root} and "
            f"{dest_root} hold semantically different results for the same "
            "content hash — this indicates a determinism bug or a corrupt "
            "store; refusing to merge"
        )
        self.cell_key = cell_key


@dataclass
class MergeStats:
    """What one :func:`merge_stores` call did."""

    sources: int = 0
    copied: int = 0
    skipped: int = 0
    campaigns_added: int = 0
    artifacts_added: int = 0
    #: Roots of the source stores, in merge order (CLI reporting).
    source_roots: list[str] = field(default_factory=list)

    def describe(self) -> str:
        """One-line summary for the CLI."""
        return (
            f"merged {self.sources} store(s): {self.copied} cell(s) copied, "
            f"{self.skipped} already present, {self.campaigns_added} "
            f"campaign manifest(s) and {self.artifacts_added} "
            f"counterexample(s) adopted"
        )


def _semantic_payload(blob: bytes) -> dict[str, Any]:
    """A blob's JSON with the volatile write stamp removed."""
    payload = json.loads(zlib.decompress(blob).decode("utf-8"))
    payload.pop("created_at", None)
    return payload


def _merge_results(dest: ResultStore, source: ResultStore,
                   stats: MergeStats) -> None:
    for cell_key in source.result_cell_keys():
        if dest.contains(cell_key, count=False):
            src_blob = source.blob_bytes(cell_key)
            dst_blob = dest.blob_bytes(cell_key)
            # Byte-equal compressed blobs are the overwhelmingly common
            # case (same payload, same writer version) — only fall back to
            # the semantic comparison when bytes differ.
            if src_blob != dst_blob and (
                _semantic_payload(src_blob) != _semantic_payload(dst_blob)
            ):
                raise MergeConflictError(cell_key, str(dest.root),
                                         str(source.root))
            stats.skipped += 1
            continue
        row = source.raw_result_row(cell_key)
        if row is None:  # pragma: no cover - races with concurrent gc only
            continue
        dest.insert_raw_result(row, source.blob_bytes(cell_key))
        stats.copied += 1


def _merge_campaigns(dest: ResultStore, source: ResultStore,
                     stats: MergeStats) -> None:
    for info in source.campaigns():
        cells = source.campaign_cells(info.name)
        if dest.campaign_info(info.name) is None:
            dest.register_campaign(info.name, info.suite_name, cells)
            stats.campaigns_added += 1
        else:
            # Same name must mean the same plan; reuse the resume check,
            # which raises StoreError on a manifest mismatch.
            dest.register_campaign(info.name, info.suite_name, cells,
                                   resume=True)


def _merge_artifacts(dest: ResultStore, source: ResultStore,
                     stats: MergeStats) -> None:
    for row in source.raw_artifact_rows():
        if dest.insert_raw_artifact(row):
            stats.artifacts_added += 1


def merge_stores(dest: ResultStore,
                 sources: Sequence[ResultStore]) -> MergeStats:
    """Union every *source* store into *dest*; returns what happened.

    Conflicts raise :class:`MergeConflictError` before any row of the
    offending source's remaining cells is copied; rows copied earlier stay
    (each copy is individually durable, and re-running the merge after
    fixing the cause picks up exactly where it stopped — idempotence again).
    """
    stats = MergeStats()
    for source in sources:
        if source.root.resolve() == dest.root.resolve():
            raise StoreError(
                f"cannot merge {source.root} into itself"
            )
        _merge_results(dest, source, stats)
        _merge_campaigns(dest, source, stats)
        _merge_artifacts(dest, source, stats)
        stats.sources += 1
        stats.source_roots.append(str(source.root))
    return stats


def merge_store_paths(dest_root: str, source_roots: Sequence[str],
                      *, create_dest: bool = True) -> MergeStats:
    """Path-level convenience wrapper used by the CLI and coordinator."""
    with ResultStore(dest_root, create=create_dest) as dest:
        stats = MergeStats()
        for root in source_roots:
            with ResultStore(root, create=False) as source:
                partial = merge_stores(dest, [source])
            stats.sources += partial.sources
            stats.copied += partial.copied
            stats.skipped += partial.skipped
            stats.campaigns_added += partial.campaigns_added
            stats.artifacts_added += partial.artifacts_added
            stats.source_roots.extend(partial.source_roots)
    return stats
