"""The worker side of a distributed campaign.

A :class:`Worker` leases cell ranges from the job's
:class:`~repro.campaigns.distributed.leases.LeaseTable`, executes each cell
with the ordinary :func:`~repro.experiments.runner.run_scenario`, and
persists results into its *own* :class:`~repro.campaigns.store.ResultStore`
— workers never share a store, so there is no write contention; the
coordinator merges the per-worker stores when the job completes.

The worker heartbeats through the same statements that record progress
(every ``record_cell_done`` refreshes the lease), renews explicitly before
each cell, and abandons a range the moment any guarded call reports the
lease lost.  Abandonment is cheap and safe: whatever the worker persisted
is content-addressed, so the eventual merge deduplicates it against the
re-execution by the new lease holder.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from ... import obs
from ...experiments.runner import run_scenario
from ..hashing import scenario_from_canonical_dict
from ..store import ResultStore
from .leases import LeaseError, LeaseTable, RangeGrant, default_worker_id


def _cells_total() -> "obs.Counter":
    return obs.counter("repro_worker_cells_total",
                       "Cells processed by distributed workers, by outcome.",
                       ("outcome",))


def _cell_seconds() -> "obs.Histogram":
    # The same per-cell wall-time data `plan_campaign` estimates from:
    # stores persist wall_time per cell; this is its live histogram form.
    return obs.histogram("repro_worker_cell_seconds",
                         "Wall-clock seconds per executed worker cell.")

#: Called after every processed cell: ``(worker_id, done_in_this_worker)``.
WorkerProgress = Callable[[str, int], None]


@dataclass
class WorkerReport:
    """What one :meth:`Worker.run` invocation did."""

    worker_id: str
    store_root: Path
    ranges_completed: int = 0
    ranges_abandoned: int = 0
    cells_executed: int = 0
    cells_cached: int = 0
    elapsed_seconds: float = 0.0
    errors: list[str] = field(default_factory=list)

    def describe(self) -> str:
        """One-line summary for the CLI."""
        return (
            f"worker {self.worker_id}: {self.cells_executed} cell(s) "
            f"executed, {self.cells_cached} cached, "
            f"{self.ranges_completed} range(s) completed, "
            f"{self.ranges_abandoned} abandoned, {len(self.errors)} "
            f"error(s) ({self.elapsed_seconds:.2f}s)"
        )


class Worker:
    """One lease-driven executor process.

    Parameters
    ----------
    workdir:
        The job directory holding ``leases.sqlite`` (a shared path).
    store_root:
        This worker's private result store (created on demand).  Defaults
        to ``workdir/workers/<worker_id>/store``.
    worker_id:
        Stable identity used in leases; defaults to ``<host>-<pid>``.
    poll_interval:
        Seconds to sleep when nothing is claimable but the job is still
        incomplete (someone else's lease may yet expire).
    worker_plugins:
        Modules imported before executing anything (third-party registry
        registrations), mirroring the batch runner's hook.
    wait_for_job:
        Seconds to wait for the lease table to appear before giving up —
        lets workers be launched alongside (or before) ``campaign serve``.
        ``0`` (the default) requires the job to already exist.
    """

    def __init__(
        self,
        workdir: str | Path,
        *,
        store_root: Optional[str | Path] = None,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.2,
        worker_plugins: Sequence[str] = (),
        wait_for_job: float = 0.0,
    ) -> None:
        self.workdir = Path(workdir)
        self.worker_id = worker_id or default_worker_id()
        self.store_root = Path(
            store_root if store_root is not None
            else self.workdir / "workers" / self.worker_id / "store"
        )
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.poll_interval = poll_interval
        self.worker_plugins = tuple(worker_plugins)
        self.wait_for_job = wait_for_job

    def _open_lease_table(self) -> LeaseTable:
        deadline = time.monotonic() + self.wait_for_job
        while True:
            try:
                return LeaseTable(self.workdir)
            except LeaseError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(min(self.poll_interval, 0.2))

    # ------------------------------------------------------------------ #
    def run(self, *, progress: Optional[WorkerProgress] = None,
            max_ranges: Optional[int] = None) -> WorkerReport:
        """Lease and execute ranges until the job completes.

        ``max_ranges`` bounds how many grants this call processes (testing
        hook); ``None`` runs until every range in the job is done.
        """
        import importlib

        for module_name in self.worker_plugins:
            importlib.import_module(module_name)
        started = time.perf_counter()
        report = WorkerReport(worker_id=self.worker_id,
                              store_root=self.store_root)
        # Connections are opened inside run() so one Worker object can be
        # driven from a fresh thread or process without sharing handles.
        with self._open_lease_table() as table, \
                ResultStore(self.store_root) as store:
            table.register_worker(self.worker_id, self.store_root)
            while max_ranges is None or report.ranges_completed + \
                    report.ranges_abandoned < max_ranges:
                grant = table.claim(self.worker_id)
                if grant is None:
                    if table.status().complete:
                        break
                    time.sleep(self.poll_interval)
                    continue
                self._execute_grant(table, store, grant, report, progress)
        report.elapsed_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------ #
    def _execute_grant(
        self,
        table: LeaseTable,
        store: ResultStore,
        grant: RangeGrant,
        report: WorkerReport,
        progress: Optional[WorkerProgress],
    ) -> None:
        for cell in grant.cells:
            if not table.renew(grant):
                report.ranges_abandoned += 1
                return
            if store.contains(cell.cell_key, count=False):
                # Cached from an earlier lease of this worker (or a shared
                # store) — report progress without re-simulating.
                report.cells_cached += 1
                if obs.enabled():
                    _cells_total().inc(outcome="cached")
            else:
                try:
                    scenario = scenario_from_canonical_dict(cell.scenario)
                    result = run_scenario(scenario)
                except Exception as exc:  # noqa: BLE001 - isolate like batch
                    report.errors.append(
                        f"cell {cell.position} ({cell.group}): {exc!r}"
                    )
                    if obs.enabled():
                        _cells_total().inc(outcome="error")
                    # The cell is not persisted; completing the range would
                    # silently drop it, so abandon and let the lease expire
                    # path retry it elsewhere.
                    report.ranges_abandoned += 1
                    return
                store.put(result, cell_key=cell.cell_key)
                report.cells_executed += 1
                if obs.enabled():
                    _cells_total().inc(outcome="executed")
                    _cell_seconds().observe(result.wall_time)
            if progress is not None:
                progress(self.worker_id,
                         report.cells_executed + report.cells_cached)
            if not table.record_cell_done(grant):
                report.ranges_abandoned += 1
                return
        if table.complete_range(grant):
            report.ranges_completed += 1
        else:
            report.ranges_abandoned += 1


def run_worker(
    workdir: str | Path,
    *,
    store_root: Optional[str | Path] = None,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.2,
    worker_plugins: Sequence[str] = (),
    wait_for_job: float = 0.0,
    progress: Optional[WorkerProgress] = None,
) -> WorkerReport:
    """One-call convenience wrapper mirroring :func:`run_campaign`."""
    return Worker(
        workdir,
        store_root=store_root,
        worker_id=worker_id,
        poll_interval=poll_interval,
        worker_plugins=worker_plugins,
        wait_for_job=wait_for_job,
    ).run(progress=progress)
