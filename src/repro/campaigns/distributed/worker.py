"""The worker side of a distributed campaign.

A :class:`Worker` leases cell ranges from the job's
:class:`~repro.campaigns.distributed.leases.LeaseTable`, executes each cell
with the ordinary :func:`~repro.experiments.runner.run_scenario`, and
persists results into its *own* :class:`~repro.campaigns.store.ResultStore`
— workers never share a store, so there is no write contention; the
coordinator merges the per-worker stores when the job completes.

The worker heartbeats through the same statements that record progress
(every ``record_cell_done`` refreshes the lease), renews explicitly before
each cell, and abandons a range the moment any guarded call reports the
lease lost.  Abandonment is cheap and safe: whatever the worker persisted
is content-addressed, so the eventual merge deduplicates it against the
re-execution by the new lease holder.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from ... import obs
from ...experiments.runner import run_scenario
from ..hashing import scenario_from_canonical_dict
from ..store import ResultStore
from .leases import LeaseError, LeaseTable, RangeGrant, default_worker_id


def _cells_total() -> "obs.Counter":
    return obs.counter("repro_worker_cells_total",
                       "Cells processed by distributed workers, by outcome.",
                       ("outcome",))


def _cell_seconds() -> "obs.Histogram":
    # The same per-cell wall-time data `plan_campaign` estimates from:
    # stores persist wall_time per cell; this is its live histogram form.
    return obs.histogram("repro_worker_cell_seconds",
                         "Wall-clock seconds per executed worker cell.")

#: Called after every processed cell: ``(worker_id, done_in_this_worker)``.
WorkerProgress = Callable[[str, int], None]


@dataclass
class WorkerReport:
    """What one :meth:`Worker.run` invocation did."""

    worker_id: str
    store_root: Path
    ranges_completed: int = 0
    ranges_abandoned: int = 0
    cells_executed: int = 0
    cells_cached: int = 0
    elapsed_seconds: float = 0.0
    errors: list[str] = field(default_factory=list)

    def describe(self) -> str:
        """One-line summary for the CLI."""
        return (
            f"worker {self.worker_id}: {self.cells_executed} cell(s) "
            f"executed, {self.cells_cached} cached, "
            f"{self.ranges_completed} range(s) completed, "
            f"{self.ranges_abandoned} abandoned, {len(self.errors)} "
            f"error(s) ({self.elapsed_seconds:.2f}s)"
        )


class Worker:
    """One lease-driven executor process.

    Parameters
    ----------
    workdir:
        The job directory holding ``leases.sqlite`` (a shared path).
    store_root:
        This worker's private result store (created on demand).  Defaults
        to ``workdir/workers/<worker_id>/store``.
    worker_id:
        Stable identity used in leases; defaults to ``<host>-<pid>``.
    poll_interval:
        Seconds to sleep when nothing is claimable but the job is still
        incomplete (someone else's lease may yet expire).
    worker_plugins:
        Modules imported before executing anything (third-party registry
        registrations), mirroring the batch runner's hook.
    wait_for_job:
        Seconds to wait for the lease table to appear before giving up —
        lets workers be launched alongside (or before) ``campaign serve``.
        ``0`` (the default) requires the job to already exist.
    """

    def __init__(
        self,
        workdir: str | Path,
        *,
        store_root: Optional[str | Path] = None,
        worker_id: Optional[str] = None,
        poll_interval: float = 0.2,
        worker_plugins: Sequence[str] = (),
        wait_for_job: float = 0.0,
    ) -> None:
        self.workdir = Path(workdir)
        self.worker_id = worker_id or default_worker_id()
        self.store_root = Path(
            store_root if store_root is not None
            else self.workdir / "workers" / self.worker_id / "store"
        )
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.poll_interval = poll_interval
        self.worker_plugins = tuple(worker_plugins)
        self.wait_for_job = wait_for_job

    def _open_lease_table(self) -> LeaseTable:
        deadline = time.monotonic() + self.wait_for_job
        while True:
            try:
                return LeaseTable(self.workdir)
            except LeaseError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(min(self.poll_interval, 0.2))

    # ------------------------------------------------------------------ #
    def run(self, *, progress: Optional[WorkerProgress] = None,
            max_ranges: Optional[int] = None) -> WorkerReport:
        """Lease and execute ranges until the job completes.

        ``max_ranges`` bounds how many grants this call processes (testing
        hook); ``None`` runs until every range in the job is done.
        """
        import importlib

        for module_name in self.worker_plugins:
            importlib.import_module(module_name)
        started = time.perf_counter()
        report = WorkerReport(worker_id=self.worker_id,
                              store_root=self.store_root)
        # Connections are opened inside run() so one Worker object can be
        # driven from a fresh thread or process without sharing handles.
        with self._open_lease_table() as table, \
                ResultStore(self.store_root) as store:
            table.register_worker(self.worker_id, self.store_root)
            cleanup = self._setup_observability()
            try:
                worker_cm = obs.span("worker", worker=self.worker_id) \
                    if obs.tracing_active() else nullcontext()
                with worker_cm:
                    while max_ranges is None or report.ranges_completed + \
                            report.ranges_abandoned < max_ranges:
                        grant = table.claim(self.worker_id)
                        if grant is None:
                            if table.status().complete:
                                break
                            time.sleep(self.poll_interval)
                            continue
                        self._execute_grant(table, store, grant, report,
                                            progress)
            finally:
                cleanup()
        report.elapsed_seconds = time.perf_counter() - started
        return report

    # ------------------------------------------------------------------ #
    def _setup_observability(self) -> Callable[[], None]:
        """Join the job's trace/federation; returns an undo callable.

        When obs is enabled the worker adopts the coordinator's persisted
        trace context from ``<workdir>/obs/trace.json`` (if this process
        has none yet), labels its spans with the worker id, installs a
        default span sink at ``<workdir>/obs/<worker_id>/timeline.jsonl``
        when no timeline is active, and starts the periodic metrics
        snapshot flusher the coordinator federates from.  Disabled runs
        skip all of it — no uuid, no clock, no files.
        """
        if not obs.enabled():
            return lambda: None
        obs_dir = self.workdir / "obs"
        previous_name = obs.set_process_name(self.worker_id)
        flusher = obs.SnapshotFlusher(obs_dir, self.worker_id).start()
        previous_context: Optional[obs.TraceContext] = None
        adopted = False
        if obs.current_context() is None:
            context = obs.load_context(obs_dir)
            if context is not None:
                previous_context = obs.set_context(context)
                adopted = True
        own_timeline: Optional[obs.Timeline] = None
        if obs.tracing_active() and not obs.timeline_active():
            own_timeline = obs.Timeline(
                obs_dir / self.worker_id / "timeline.jsonl")
            obs.set_timeline(own_timeline)

        def cleanup() -> None:
            flusher.stop()
            if own_timeline is not None:
                obs.set_timeline(None)
                own_timeline.close()
            if adopted:
                obs.set_context(previous_context)
            obs.set_process_name(previous_name)

        return cleanup

    # ------------------------------------------------------------------ #
    def _execute_grant(
        self,
        table: LeaseTable,
        store: ResultStore,
        grant: RangeGrant,
        report: WorkerReport,
        progress: Optional[WorkerProgress],
    ) -> None:
        traced = obs.tracing_active()
        claim_cm = obs.span(
            "claim", range_id=grant.range_id, start=grant.start,
            count=len(grant.cells), epoch=grant.epoch,
        ) if traced else nullcontext()
        with claim_cm as claim_span:
            completed = self._run_grant_cells(table, store, grant, report,
                                              progress, traced)
            if claim_span is not None:
                claim_span.annotate(
                    outcome="completed" if completed else "abandoned")

    def _run_grant_cells(
        self,
        table: LeaseTable,
        store: ResultStore,
        grant: RangeGrant,
        report: WorkerReport,
        progress: Optional[WorkerProgress],
        traced: bool,
    ) -> bool:
        """Process one grant's cells; ``True`` iff the range completed."""
        for cell in grant.cells:
            if not table.renew(grant):
                report.ranges_abandoned += 1
                return False
            cell_cm = obs.span(
                "cell", cell_key=cell.cell_key, position=cell.position,
                group=cell.group,
            ) if traced else nullcontext()
            with cell_cm as cell_span:
                if store.contains(cell.cell_key, count=False):
                    # Cached from an earlier lease of this worker (or a
                    # shared store) — report progress without re-simulating.
                    report.cells_cached += 1
                    if obs.enabled():
                        _cells_total().inc(outcome="cached")
                    if cell_span is not None:
                        cell_span.annotate(outcome="cached")
                else:
                    try:
                        scenario = scenario_from_canonical_dict(
                            cell.scenario)
                        result = run_scenario(scenario)
                    except Exception as exc:  # noqa: BLE001 - as batch
                        report.errors.append(
                            f"cell {cell.position} ({cell.group}): {exc!r}"
                        )
                        if obs.enabled():
                            _cells_total().inc(outcome="error")
                        if cell_span is not None:
                            cell_span.annotate(outcome="error",
                                               error=repr(exc))
                        # The cell is not persisted; completing the range
                        # would silently drop it, so abandon and let the
                        # lease expire path retry it elsewhere.
                        report.ranges_abandoned += 1
                        return False
                    store.put(result, cell_key=cell.cell_key)
                    report.cells_executed += 1
                    if obs.enabled():
                        _cells_total().inc(outcome="executed")
                        _cell_seconds().observe(result.wall_time)
                    if cell_span is not None:
                        cell_span.annotate(outcome="executed")
            if progress is not None:
                progress(self.worker_id,
                         report.cells_executed + report.cells_cached)
            if not table.record_cell_done(grant):
                report.ranges_abandoned += 1
                return False
        if table.complete_range(grant):
            report.ranges_completed += 1
            return True
        report.ranges_abandoned += 1
        return False


def run_worker(
    workdir: str | Path,
    *,
    store_root: Optional[str | Path] = None,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.2,
    worker_plugins: Sequence[str] = (),
    wait_for_job: float = 0.0,
    progress: Optional[WorkerProgress] = None,
) -> WorkerReport:
    """One-call convenience wrapper mirroring :func:`run_campaign`."""
    return Worker(
        workdir,
        store_root=store_root,
        worker_id=worker_id,
        poll_interval=poll_interval,
        worker_plugins=worker_plugins,
        wait_for_job=wait_for_job,
    ).run(progress=progress)
