"""The lease table: shared SQLite state of one distributed campaign job.

A *job* is one suite expansion shared by a coordinator and any number of
worker processes.  The coordinator writes it once (the cell manifest plus an
initial partition into contiguous *ranges*); workers then lease ranges,
heartbeat while executing them, and mark them done.  All coordination state
lives in a single SQLite database (WAL mode) on a path every participant can
reach — the same protocol works for N processes on one machine or N machines
over a shared filesystem.

Lease protocol
--------------
* ``claim`` runs in one ``BEGIN IMMEDIATE`` transaction: first every
  *expired* lease (``lease_expires < now``, strictly — a heartbeat landing
  exactly at the timeout keeps the lease) is reclaimed back to ``pending``,
  then the first pending range is granted.  Single-writer transactions make
  double-reclaim impossible: two claimants racing for one expired range
  serialise, and the loser is handed a different range (or nothing).
* Every grant increments the range's ``epoch``.  A worker's later calls
  (``renew``, ``record_cell_done``, ``complete_range``) are guarded by
  ``(worker, epoch)`` — a zombie worker whose lease was reclaimed cannot
  renew, complete, or corrupt the progress counters of the new owner.  Its
  already-persisted cells are harmless: stores are content-addressed, so the
  merge step deduplicates them.
* Near the tail, grants shrink: a claim never receives more than
  ``ceil(pending_cells / (2 * active_workers))`` cells (the remainder of the
  range is split off back to ``pending``), so the last ranges spread over
  idle workers instead of sitting in one straggler's lease.  Work stealing
  is exactly lease reclamation plus this shrinking grant — no extra
  machinery.

Failure model
-------------
A killed or hung worker loses only its unexpired lease window: after
``lease_timeout`` the range is reclaimed and re-executed elsewhere, and the
dead worker's partially filled store still merges in (identical cells hash
identically).  Coordinator death loses nothing but the wait loop — the lease
database *is* the job state, so re-running ``campaign serve`` against the
same workdir resumes coordination where it stopped.
"""

from __future__ import annotations

import json
import math
import os
import socket
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence

from ... import obs

#: Bump when the lease-table layout changes incompatibly.
LEASE_SCHEMA_VERSION = 1

#: Default lease duration: a worker must heartbeat within this window.
DEFAULT_LEASE_TIMEOUT = 60.0

#: Default cells per initial range.
DEFAULT_RANGE_SIZE = 8

_DB_NAME = "leases.sqlite"


class LeaseError(RuntimeError):
    """A lease-table invariant was violated (bad path, wrong schema, …)."""


def default_worker_id() -> str:
    """A worker identity unique across hosts and processes."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass(frozen=True)
class JobCell:
    """One cell of the job manifest, as granted to a worker."""

    position: int
    group: str
    cell_key: str
    scenario: dict[str, Any]


@dataclass(frozen=True)
class RangeGrant:
    """One leased range: contiguous manifest positions plus the lease token.

    ``epoch`` is the fencing token — every call the worker makes about this
    range must present it, and it changes whenever the range is re-granted.
    """

    range_id: int
    start: int
    count: int
    epoch: int
    worker: str
    lease_expires: float
    cells: tuple[JobCell, ...]


@dataclass(frozen=True)
class JobStatus:
    """Aggregate progress of a job, in cells and ranges."""

    total_cells: int
    completed_cells: int
    leased_cells: int
    pending_cells: int
    total_ranges: int
    done_ranges: int
    leased_ranges: int
    pending_ranges: int
    active_workers: int
    reclaims: int

    @property
    def complete(self) -> bool:
        """Whether every range has been executed to completion."""
        return self.done_ranges >= self.total_ranges

    def describe(self) -> str:
        """One-line progress summary for the CLI."""
        return (
            f"{self.completed_cells}/{self.total_cells} cells completed, "
            f"{self.leased_cells} leased, {self.pending_cells} pending "
            f"({self.active_workers} active worker(s), "
            f"{self.reclaims} lease reclaim(s))"
        )


class LeaseTable:
    """Handle on one job's lease database (create with ``create=True``).

    Every participant opens its own handle; handles are cheap and safe to
    use from exactly one thread each.  All mutating operations run in
    ``BEGIN IMMEDIATE`` transactions so concurrent handles serialise on the
    SQLite write lock instead of failing.
    """

    def __init__(self, workdir: str | Path, *, create: bool = False) -> None:
        self.workdir = Path(workdir)
        path = self.workdir / _DB_NAME
        if not create and not path.exists():
            raise LeaseError(f"no distributed job at {self.workdir}")
        if create:
            self.workdir.mkdir(parents=True, exist_ok=True)
        # Autocommit connection + explicit BEGIN IMMEDIATE: claim must hold
        # the write lock across its read-reclaim-grant sequence.
        self._db = sqlite3.connect(path, isolation_level=None, timeout=30.0)
        self._db.row_factory = sqlite3.Row
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA busy_timeout=30000")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._init_schema()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _init_schema(self) -> None:
        has_meta = self._db.execute(
            "SELECT 1 FROM sqlite_master WHERE type='table' AND name='meta'"
        ).fetchone() is not None
        if has_meta:
            recorded = self._db.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if recorded is not None and int(recorded["value"]) != \
                    LEASE_SCHEMA_VERSION:
                raise LeaseError(
                    f"lease table at {self.workdir} has schema version "
                    f"{recorded['value']}, this library speaks version "
                    f"{LEASE_SCHEMA_VERSION}"
                )
        self._db.executescript(
            """
            CREATE TABLE IF NOT EXISTS meta (
                key TEXT PRIMARY KEY,
                value TEXT NOT NULL
            );
            CREATE TABLE IF NOT EXISTS cells (
                position INTEGER PRIMARY KEY,
                group_label TEXT NOT NULL,
                cell_key TEXT NOT NULL,
                scenario TEXT NOT NULL
            );
            CREATE TABLE IF NOT EXISTS ranges (
                range_id INTEGER PRIMARY KEY AUTOINCREMENT,
                start INTEGER NOT NULL,
                count INTEGER NOT NULL,
                state TEXT NOT NULL
                    CHECK (state IN ('pending', 'leased', 'done')),
                worker TEXT,
                epoch INTEGER NOT NULL DEFAULT 0,
                lease_expires REAL,
                done_cells INTEGER NOT NULL DEFAULT 0,
                attempts INTEGER NOT NULL DEFAULT 0
            );
            CREATE INDEX IF NOT EXISTS idx_ranges_state
                ON ranges (state, start);
            CREATE TABLE IF NOT EXISTS workers (
                worker TEXT PRIMARY KEY,
                store_path TEXT NOT NULL,
                first_seen REAL NOT NULL,
                last_seen REAL NOT NULL,
                cells_done INTEGER NOT NULL DEFAULT 0
            );
            """
        )
        self._db.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("schema_version", str(LEASE_SCHEMA_VERSION)),
        )

    def close(self) -> None:
        """Close the underlying SQLite handle."""
        self._db.close()

    def __enter__(self) -> "LeaseTable":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # job creation (coordinator side)
    # ------------------------------------------------------------------ #
    def initialise(
        self,
        *,
        name: str,
        suite_name: str,
        cells: Sequence[tuple[int, str, str, dict[str, Any]]],
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        range_size: int = DEFAULT_RANGE_SIZE,
    ) -> None:
        """Write the job manifest: cells plus the initial range partition.

        *cells* rows are ``(position, group, cell_key, canonical_scenario)``.
        Re-initialising an existing job is allowed only with an identical
        manifest (the coordinator resume path); anything else is a loud
        error, because workers may already be executing the recorded cells.
        """
        if lease_timeout <= 0:
            raise LeaseError("lease_timeout must be positive")
        if range_size < 1:
            raise LeaseError("range_size must be at least 1")
        existing = self._db.execute(
            "SELECT value FROM meta WHERE key = 'job_name'"
        ).fetchone()
        if existing is not None:
            recorded = [
                (row["position"], row["group_label"], row["cell_key"])
                for row in self._db.execute(
                    "SELECT position, group_label, cell_key FROM cells "
                    "ORDER BY position"
                ).fetchall()
            ]
            if existing["value"] != name or recorded != [
                (position, group, key)
                for position, group, key, _scenario in cells
            ]:
                raise LeaseError(
                    f"workdir {self.workdir} already holds job "
                    f"{existing['value']!r} with a different manifest; "
                    "use a fresh workdir per job"
                )
            return  # identical manifest: resume coordination as-is
        now = time.time()
        self._db.execute("BEGIN IMMEDIATE")
        try:
            self._db.executemany(
                "INSERT INTO cells (position, group_label, cell_key, "
                "scenario) VALUES (?, ?, ?, ?)",
                [
                    (position, group, key,
                     json.dumps(scenario, sort_keys=True,
                                separators=(",", ":")))
                    for position, group, key, scenario in cells
                ],
            )
            positions = [position for position, _g, _k, _s in cells]
            for start_index in range(0, len(positions), range_size):
                chunk = positions[start_index:start_index + range_size]
                self._db.execute(
                    "INSERT INTO ranges (start, count, state) "
                    "VALUES (?, ?, 'pending')",
                    (chunk[0], len(chunk)),
                )
            self._db.executemany(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                [
                    ("job_name", name),
                    ("suite_name", suite_name),
                    ("lease_timeout", repr(float(lease_timeout))),
                    ("created_at", repr(now)),
                ],
            )
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    def job_meta(self) -> dict[str, str]:
        """The job's meta table as a plain mapping."""
        return {
            row["key"]: row["value"]
            for row in self._db.execute("SELECT key, value FROM meta")
        }

    @property
    def lease_timeout(self) -> float:
        """The job's lease duration in seconds."""
        meta = self.job_meta()
        return float(meta.get("lease_timeout", DEFAULT_LEASE_TIMEOUT))

    def manifest(self) -> list[tuple[int, str, str]]:
        """``(position, group, cell_key)`` rows, in position order."""
        return [
            (row["position"], row["group_label"], row["cell_key"])
            for row in self._db.execute(
                "SELECT position, group_label, cell_key FROM cells "
                "ORDER BY position"
            ).fetchall()
        ]

    # ------------------------------------------------------------------ #
    # worker registration
    # ------------------------------------------------------------------ #
    def register_worker(self, worker: str, store_path: str | Path) -> None:
        """Record a worker and the store it persists into.

        The store path is how the coordinator discovers merge sources —
        including the stores of workers that die mid-job.
        """
        now = time.time()
        self._db.execute("BEGIN IMMEDIATE")
        try:
            self._db.execute(
                "INSERT INTO workers (worker, store_path, first_seen, "
                "last_seen) VALUES (?, ?, ?, ?) "
                "ON CONFLICT(worker) DO UPDATE SET last_seen = excluded."
                "last_seen, store_path = excluded.store_path",
                (worker, str(store_path), now, now),
            )
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise

    def worker_stores(self) -> list[Path]:
        """Every registered worker store path, in first-seen order."""
        return [
            Path(row["store_path"])
            for row in self._db.execute(
                "SELECT store_path FROM workers ORDER BY first_seen, worker"
            ).fetchall()
        ]

    # ------------------------------------------------------------------ #
    # the lease protocol (worker side)
    # ------------------------------------------------------------------ #
    def claim(self, worker: str, *,
              now: Optional[float] = None) -> Optional[RangeGrant]:
        """Reclaim expired leases, then lease one range to *worker*.

        Returns ``None`` when nothing is claimable (all ranges done or
        validly leased elsewhere).  See the module docs for the shrinking-
        grant rule.
        """
        now = time.time() if now is None else now
        timeout = self.lease_timeout
        self._db.execute("BEGIN IMMEDIATE")
        try:
            # 1. Reclamation: strictly-expired leases return to pending.
            #    A lease whose expiry equals `now` is still honoured — the
            #    heartbeat landed exactly at the timeout.
            reclaimed = self._db.execute(
                "UPDATE ranges SET state = 'pending', worker = NULL, "
                "lease_expires = NULL, done_cells = 0 "
                "WHERE state = 'leased' AND lease_expires < ?",
                (now,),
            ).rowcount
            row = self._db.execute(
                "SELECT * FROM ranges WHERE state = 'pending' "
                "ORDER BY start LIMIT 1"
            ).fetchone()
            if row is None:
                self._db.execute("COMMIT")
                return None
            # 2. Shrinking grant: near the tail, split the range so idle
            #    workers share the remainder instead of waiting on one
            #    straggler's lease.
            pending = int(self._db.execute(
                "SELECT COALESCE(SUM(count), 0) AS c FROM ranges "
                "WHERE state = 'pending'"
            ).fetchone()["c"])
            active = int(self._db.execute(
                "SELECT COUNT(*) AS c FROM workers WHERE last_seen >= ?",
                (now - timeout,),
            ).fetchone()["c"])
            cap = max(1, math.ceil(pending / (2 * max(active, 1))))
            granted = min(int(row["count"]), cap)
            if granted < int(row["count"]):
                self._db.execute(
                    "INSERT INTO ranges (start, count, state) "
                    "VALUES (?, ?, 'pending')",
                    (int(row["start"]) + granted,
                     int(row["count"]) - granted),
                )
                self._db.execute(
                    "UPDATE ranges SET count = ? WHERE range_id = ?",
                    (granted, row["range_id"]),
                )
            epoch = int(row["epoch"]) + 1
            expires = now + timeout
            self._db.execute(
                "UPDATE ranges SET state = 'leased', worker = ?, epoch = ?, "
                "lease_expires = ?, done_cells = 0, attempts = attempts + 1 "
                "WHERE range_id = ?",
                (worker, epoch, expires, row["range_id"]),
            )
            self._db.execute(
                "UPDATE workers SET last_seen = ? WHERE worker = ?",
                (now, worker),
            )
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise
        self._record_claim(worker, reclaimed,
                           range_id=int(row["range_id"]),
                           start=int(row["start"]), count=granted)
        cells = tuple(
            JobCell(
                position=cell["position"],
                group=cell["group_label"],
                cell_key=cell["cell_key"],
                scenario=json.loads(cell["scenario"]),
            )
            for cell in self._db.execute(
                "SELECT * FROM cells WHERE position >= ? AND position < ? "
                "ORDER BY position",
                (int(row["start"]), int(row["start"]) + granted),
            ).fetchall()
        )
        return RangeGrant(
            range_id=int(row["range_id"]),
            start=int(row["start"]),
            count=granted,
            epoch=epoch,
            worker=worker,
            lease_expires=expires,
            cells=cells,
        )

    def _record_claim(self, worker: str, reclaimed: int, *, range_id: int,
                      start: int, count: int) -> None:
        """Registry + timeline effects of one successful claim."""
        if obs.enabled():
            obs.counter("repro_lease_claims_total",
                        "Range leases granted to workers.").inc()
            if reclaimed:
                obs.counter(
                    "repro_lease_reclaims_total",
                    "Expired leases reclaimed back to pending.",
                ).inc(reclaimed)
        if obs.timeline_active():
            if reclaimed:
                obs.emit("lease.reclaim", worker=worker, reclaimed=reclaimed)
            obs.emit("lease.claim", worker=worker, range_id=range_id,
                     start=start, count=count)

    def _guarded_update(self, sql: str, params: Sequence[Any]) -> bool:
        self._db.execute("BEGIN IMMEDIATE")
        try:
            changed = self._db.execute(sql, params).rowcount
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise
        return changed > 0

    def renew(self, grant: RangeGrant, *,
              now: Optional[float] = None) -> bool:
        """Heartbeat: extend the lease.  ``False`` means the lease was lost
        (reclaimed and possibly re-granted) — the worker must abandon the
        range without touching its counters."""
        now = time.time() if now is None else now
        renewed = self._guarded_update(
            "UPDATE ranges SET lease_expires = ? WHERE range_id = ? AND "
            "state = 'leased' AND worker = ? AND epoch = ?",
            (now + self.lease_timeout, grant.range_id, grant.worker,
             grant.epoch),
        )
        if renewed:
            self._db.execute(
                "UPDATE workers SET last_seen = ? WHERE worker = ?",
                (now, grant.worker),
            )
        if obs.enabled():
            obs.counter("repro_lease_renewals_total",
                        "Lease heartbeats, by outcome.",
                        ("outcome",)).inc(
                outcome="renewed" if renewed else "lost")
        if obs.timeline_active():
            obs.emit("lease.renew", worker=grant.worker,
                     range_id=grant.range_id, renewed=renewed)
        return renewed

    def record_cell_done(self, grant: RangeGrant, *,
                         now: Optional[float] = None) -> bool:
        """Record one completed cell and refresh the lease in one step.

        Returns ``False`` (recording nothing) when the lease was lost.
        """
        now = time.time() if now is None else now
        recorded = self._guarded_update(
            "UPDATE ranges SET done_cells = done_cells + 1, "
            "lease_expires = ? WHERE range_id = ? AND state = 'leased' AND "
            "worker = ? AND epoch = ?",
            (now + self.lease_timeout, grant.range_id, grant.worker,
             grant.epoch),
        )
        if recorded:
            self._db.execute(
                "UPDATE workers SET last_seen = ?, cells_done = "
                "cells_done + 1 WHERE worker = ?",
                (now, grant.worker),
            )
        return recorded

    def complete_range(self, grant: RangeGrant) -> bool:
        """Mark a leased range done.  ``False`` means the lease was lost —
        another worker owns (or will own) the range now; the zombie's
        persisted cells remain harmlessly in its own store."""
        return self._guarded_update(
            "UPDATE ranges SET state = 'done', lease_expires = NULL "
            "WHERE range_id = ? AND state = 'leased' AND worker = ? AND "
            "epoch = ?",
            (grant.range_id, grant.worker, grant.epoch),
        )

    # ------------------------------------------------------------------ #
    # status
    # ------------------------------------------------------------------ #
    def lease_observations(
            self, *, now: Optional[float] = None) -> list[dict[str, Any]]:
        """Worker-clock samples visible in the table (trace skew anchors).

        Every live lease row carries ``lease_expires = worker_now +
        lease_timeout`` and every worker row a ``last_seen`` heartbeat —
        both written with the *worker's* clock and provably before this
        read.  Each sample pairs that worker timestamp with the reader's
        clock (``observed_unix``); :func:`repro.obs.tracing.skew_offsets`
        turns the pairs into per-worker clock corrections.  Read-only.
        """
        now = time.time() if now is None else now
        timeout = self.lease_timeout
        observations: list[dict[str, Any]] = []
        for row in self._db.execute(
            "SELECT worker, range_id, epoch, lease_expires FROM ranges "
            "WHERE state = 'leased' AND worker IS NOT NULL "
            "AND lease_expires IS NOT NULL"
        ).fetchall():
            observations.append({
                "worker": str(row["worker"]),
                "range_id": int(row["range_id"]),
                "epoch": int(row["epoch"]),
                "worker_unix": float(row["lease_expires"]) - timeout,
                "observed_unix": now,
            })
        for row in self._db.execute(
            "SELECT worker, last_seen FROM workers"
        ).fetchall():
            observations.append({
                "worker": str(row["worker"]),
                "worker_unix": float(row["last_seen"]),
                "observed_unix": now,
            })
        return observations

    def status(self, *, now: Optional[float] = None) -> JobStatus:
        """Aggregate job progress (does not mutate lease state)."""
        now = time.time() if now is None else now
        timeout = self.lease_timeout
        rows = self._db.execute(
            "SELECT state, COUNT(*) AS ranges, COALESCE(SUM(count), 0) AS "
            "cells, COALESCE(SUM(done_cells), 0) AS done_cells FROM ranges "
            "GROUP BY state"
        ).fetchall()
        by_state = {row["state"]: row for row in rows}

        def cells(state: str) -> int:
            return int(by_state[state]["cells"]) if state in by_state else 0

        def ranges(state: str) -> int:
            return int(by_state[state]["ranges"]) if state in by_state else 0

        leased_done = (int(by_state["leased"]["done_cells"])
                       if "leased" in by_state else 0)
        active = int(self._db.execute(
            "SELECT COUNT(*) AS c FROM workers WHERE last_seen >= ?",
            (now - timeout,),
        ).fetchone()["c"])
        # attempts counts grants; every grant beyond the first on a range
        # followed a reclamation (or a zombie losing its lease).
        reclaims = int(self._db.execute(
            "SELECT COALESCE(SUM(attempts - 1), 0) AS c FROM ranges "
            "WHERE attempts > 1"
        ).fetchone()["c"])
        total_cells = cells("pending") + cells("leased") + cells("done")
        return JobStatus(
            total_cells=total_cells,
            completed_cells=cells("done") + leased_done,
            leased_cells=cells("leased") - leased_done,
            pending_cells=cells("pending"),
            total_ranges=ranges("pending") + ranges("leased") + ranges("done"),
            done_ranges=ranges("done"),
            leased_ranges=ranges("leased"),
            pending_ranges=ranges("pending"),
            active_workers=active,
            reclaims=reclaims,
        )
