"""The coordinator side of a distributed campaign.

A :class:`Coordinator` owns the job lifecycle:

1. **prepare** — expand the :class:`~repro.experiments.batch.ScenarioSuite`
   into content-addressed cells and write the lease table (manifest plus
   initial range partition) into the job workdir;
2. **wait** — poll the lease table until every range is done, reporting
   progress (the workers are separate processes; the coordinator never
   executes cells itself);
3. **finalize** — merge every registered worker store into the destination
   store and register the campaign manifest there, so ``campaign report``
   renders the distributed run exactly like a single-shot one.

The coordinator is stateless beyond the lease database: killing it and
re-running ``campaign serve`` against the same workdir resumes coordination
without losing any completed work (``initialise`` is idempotent on an
identical manifest, the merge is idempotent by content hash).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

from ... import obs
from ...obs import tracing as obs_tracing
from ...experiments.batch import ScenarioSuite, SuiteItem, normalise_suite
from ...experiments.config import Scenario
from ..hashing import canonical_scenario_dict, scenario_cell_key
from ..store import ResultStore
from .leases import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_RANGE_SIZE,
    JobStatus,
    LeaseError,
    LeaseTable,
)
from .merge import MergeStats, merge_stores

#: Called on every poll with the current aggregate job status.
StatusCallback = Callable[[JobStatus], None]


@dataclass(frozen=True)
class CoordinatorReport:
    """Outcome of one :meth:`Coordinator.serve` lifecycle."""

    name: str
    workdir: Path
    store_root: Path
    status: JobStatus
    merge: MergeStats
    worker_stores: tuple[Path, ...]
    elapsed_seconds: float

    def describe(self) -> str:
        """One-line summary for the CLI."""
        return (
            f"job {self.name!r}: {self.status.describe()}; "
            f"{self.merge.describe()} ({self.elapsed_seconds:.2f}s)"
        )


class Coordinator:
    """Drives one distributed campaign job from a suite to a merged store.

    Parameters
    ----------
    workdir:
        Job directory shared with the workers (holds ``leases.sqlite`` and,
        by default, the per-worker stores).
    suite:
        Anything :func:`normalise_suite` accepts — a
        :class:`ScenarioSuite`, scenarios, or pre-built items.
    name:
        Campaign name registered in the destination store at finalize time
        (defaults to the suite name).
    lease_timeout / range_size:
        Lease protocol knobs, recorded in the lease table at prepare time.
    """

    def __init__(
        self,
        workdir: str | Path,
        suite: Union[ScenarioSuite, Iterable[Scenario], Sequence[SuiteItem]],
        *,
        name: Optional[str] = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        range_size: int = DEFAULT_RANGE_SIZE,
    ) -> None:
        self.workdir = Path(workdir)
        self.suite_name, self.items = normalise_suite(suite)
        self.name = name or self.suite_name
        self.lease_timeout = lease_timeout
        self.range_size = range_size
        self._keys = tuple(scenario_cell_key(item.scenario)
                           for item in self.items)
        # Tracing/federation state, populated by prepare() when obs is on.
        self._trace_context: Optional[obs.TraceContext] = None
        self._trace_minted_unix: Optional[float] = None
        self._own_timeline: Optional[obs.Timeline] = None
        self._anchor_seen: set[tuple[str, float]] = set()

    # ------------------------------------------------------------------ #
    def manifest_rows(self) -> list[tuple[int, str, str]]:
        """``(position, group, cell_key)`` of every cell, in suite order."""
        return [(item.index, item.group, key)
                for item, key in zip(self.items, self._keys)]

    def _setup_observability(self) -> None:
        """Mint/adopt the job's trace context and install federation.

        Called from :meth:`prepare`; a no-op unless obs is enabled, so
        disabled runs never touch :mod:`uuid` or the filesystem.  The
        context is persisted as ``<workdir>/obs/trace.json`` for workers
        to inherit; resuming a job adopts the existing file so the
        original trace keeps growing.
        """
        if not obs.enabled():
            return
        obs_dir = self.workdir / "obs"
        obs.set_process_name("coordinator")
        if not obs.timeline_active():
            self._own_timeline = obs.Timeline(
                obs_dir / "coordinator" / "timeline.jsonl")
            obs.set_timeline(self._own_timeline)
        context = obs.current_context()
        if context is None:
            context = obs.load_context(obs_dir) or obs.mint_context()
            obs.set_context(context)
        self._trace_context = context
        meta = obs_tracing.load_context_meta(obs_dir)
        if meta.get("trace_id") != context.trace_id:
            obs.save_context(obs_dir, context, job=self.name)
            meta = obs_tracing.load_context_meta(obs_dir)
        self._trace_minted_unix = float(
            meta.get("minted_unix") or time.time())
        obs.set_federation(obs.Federation(obs_dir))

    def prepare(self) -> None:
        """Write the lease table (idempotent on an identical manifest)."""
        self._setup_observability()
        with obs.phase("shard", job=self.name, cells=len(self.items)):
            with LeaseTable(self.workdir, create=True) as table:
                table.initialise(
                    name=self.name,
                    suite_name=self.suite_name,
                    cells=[
                        (item.index, item.group, key,
                         canonical_scenario_dict(item.scenario))
                        for item, key in zip(self.items, self._keys)
                    ],
                    lease_timeout=self.lease_timeout,
                    range_size=self.range_size,
                )

    def wait(
        self,
        *,
        poll_interval: float = 0.5,
        timeout: Optional[float] = None,
        on_status: Optional[StatusCallback] = None,
    ) -> JobStatus:
        """Poll the lease table until every range completes.

        *timeout* bounds the wait in seconds (``None`` waits forever);
        expiry raises :class:`LeaseError` carrying the last status, since a
        stuck distributed job is an operational failure the caller must see.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with LeaseTable(self.workdir) as table:
            while True:
                status = table.status()
                self._record_status(status)
                self._record_anchors(table)
                if on_status is not None:
                    on_status(status)
                if status.complete:
                    return status
                if deadline is not None and time.monotonic() >= deadline:
                    raise LeaseError(
                        f"job {self.name!r} did not complete within "
                        f"{timeout:.1f}s: {status.describe()}"
                    )
                time.sleep(poll_interval)

    def _record_status(self, status: JobStatus) -> None:
        """Mirror one lease-table poll into the metrics registry, so a
        live scrape of the coordinator shows job progress."""
        if not obs.enabled():
            return
        obs.counter("repro_coordinator_polls_total",
                    "Lease-table status polls by the coordinator.").inc()
        cells = obs.gauge("repro_lease_cells",
                          "Job cells by lease state.", ("state",))
        cells.set(status.completed_cells, state="completed")
        cells.set(status.leased_cells, state="leased")
        cells.set(status.pending_cells, state="pending")
        ranges = obs.gauge("repro_lease_ranges",
                           "Job ranges by lease state.", ("state",))
        ranges.set(status.done_ranges, state="done")
        ranges.set(status.leased_ranges, state="leased")
        ranges.set(status.pending_ranges, state="pending")
        obs.gauge("repro_lease_workers_active",
                  "Workers seen within one lease timeout.").set(
            status.active_workers)
        # The table's reclaim total is authoritative across processes; the
        # coordinator mirrors it as a gauge (the counter lives in whichever
        # worker performed the reclaim).
        obs.gauge("repro_lease_reclaims",
                  "Lease reclaims recorded in the lease table.").set(
            status.reclaims)

    def _record_anchors(self, table: LeaseTable) -> None:
        """Emit cross-process clock anchors observed in the lease table.

        Each new ``(worker, worker_unix)`` pair becomes one ``anchor``
        timeline record — the raw material ``trace view`` uses for
        wall-clock skew normalisation.  Only runs when this job is
        traced, so untraced timelines stay exactly as before.
        """
        if self._trace_context is None or not obs.timeline_active():
            return
        for sample in table.lease_observations():
            key = (sample["worker"], sample["worker_unix"])
            if key in self._anchor_seen:
                continue
            self._anchor_seen.add(key)
            obs.emit("anchor", **sample)

    def finalize(self, store: ResultStore) -> MergeStats:
        """Merge every registered worker store into *store* and register
        the campaign manifest there.

        Idempotent: cells already merged are skipped by content hash, and
        re-registering the identical manifest is the resume path.
        """
        with LeaseTable(self.workdir) as table:
            worker_roots = table.worker_stores()
        sources = [ResultStore(root, create=False) for root in worker_roots]
        try:
            with obs.phase("merge", job=self.name,
                           sources=len(sources)):
                stats = merge_stores(store, sources)
        finally:
            for source in sources:
                source.close()
        if obs.enabled():
            obs.counter("repro_coordinator_merged_cells_total",
                        "Result rows copied by coordinator merges.").inc(
                stats.copied)
        resume = store.campaign_info(self.name) is not None
        store.register_campaign(self.name, self.suite_name,
                                self.manifest_rows(), resume=resume)
        self._finish_trace()
        return stats

    def _finish_trace(self) -> None:
        """Close out the job trace: emit the root span, release the sink.

        The root span is written last (its ids were minted at prepare
        time) so worker spans are never orphans in the merged tree; the
        coordinator's own timeline file is only closed if prepare()
        installed it — an externally installed sink stays untouched.
        """
        if self._trace_context is not None and obs.timeline_active():
            obs_tracing.emit_root_span(
                self._trace_context, "job",
                start_unix=self._trace_minted_unix or time.time(),
                job=self.name, cells=len(self.items))
        self._trace_context = None
        if self._own_timeline is not None:
            obs.set_timeline(None)
            self._own_timeline.close()
            self._own_timeline = None

    # ------------------------------------------------------------------ #
    def serve(
        self,
        store: Union[ResultStore, str, Path],
        *,
        poll_interval: float = 0.5,
        timeout: Optional[float] = None,
        on_status: Optional[StatusCallback] = None,
    ) -> CoordinatorReport:
        """The full lifecycle: prepare, wait for workers, merge, register."""
        started = time.perf_counter()
        self.prepare()
        status = self.wait(poll_interval=poll_interval, timeout=timeout,
                           on_status=on_status)
        if isinstance(store, (str, Path)):
            with ResultStore(store) as handle:
                merge = self.finalize(handle)
                store_root = handle.root
        else:
            merge = self.finalize(store)
            store_root = store.root
        with LeaseTable(self.workdir) as table:
            worker_roots = tuple(table.worker_stores())
        return CoordinatorReport(
            name=self.name,
            workdir=self.workdir,
            store_root=store_root,
            status=status,
            merge=merge,
            worker_stores=worker_roots,
            elapsed_seconds=time.perf_counter() - started,
        )
