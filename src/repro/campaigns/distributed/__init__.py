"""Distributed campaign execution: coordinator/worker sharding over a
shared lease table, with idempotent store merge.

See :mod:`~repro.campaigns.distributed.leases` for the lease protocol and
failure model, :mod:`~repro.campaigns.distributed.merge` for the merge
semantics, and DESIGN.md §11 for the full design discussion.
"""

from .coordinator import Coordinator, CoordinatorReport, StatusCallback
from .leases import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_RANGE_SIZE,
    JobCell,
    JobStatus,
    LEASE_SCHEMA_VERSION,
    LeaseError,
    LeaseTable,
    RangeGrant,
    default_worker_id,
)
from .merge import MergeConflictError, MergeStats, merge_store_paths, merge_stores
from .planning import (
    DEFAULT_CELL_SECONDS,
    DEFAULT_WORKER_COUNTS,
    CampaignPlan,
    plan_campaign,
)
from .worker import Worker, WorkerReport, run_worker

__all__ = [
    "Coordinator",
    "CoordinatorReport",
    "StatusCallback",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_RANGE_SIZE",
    "LEASE_SCHEMA_VERSION",
    "JobCell",
    "JobStatus",
    "LeaseError",
    "LeaseTable",
    "RangeGrant",
    "default_worker_id",
    "MergeConflictError",
    "MergeStats",
    "merge_store_paths",
    "merge_stores",
    "DEFAULT_CELL_SECONDS",
    "DEFAULT_WORKER_COUNTS",
    "CampaignPlan",
    "plan_campaign",
    "Worker",
    "WorkerReport",
    "run_worker",
]
