"""Persistent campaigns: content-addressed result store, resumable sharded
sweeps, and the query/report layer over stored data.

The subsystem turns the in-memory suite runner into a durable, incremental
experiment pipeline::

    from repro.campaigns import Campaign, ResultStore
    from repro.experiments.batch import ScenarioSuite

    suite = ScenarioSuite("loss-sweep").add_sweep(base, "loss", specs).with_seeds(5)
    with ResultStore("results/") as store:
        report = Campaign(store, suite, name="loss-sweep", parallel=4).run()
        # kill it, re-run — completed cells are never simulated again:
        report = Campaign(store, suite, name="loss-sweep").run(resume=True)
        assert report.executed == 0  # when the first run completed

See DESIGN.md §10 for the hash canonicalisation rules, the store schema and
the resume semantics; the CLI surface is ``repro-urb campaign
run/status/query/export/gc``.
"""

from .campaign import Campaign, CampaignReport, run_campaign
from .distributed import (
    CampaignPlan,
    Coordinator,
    CoordinatorReport,
    LeaseError,
    LeaseTable,
    MergeConflictError,
    MergeStats,
    Worker,
    WorkerReport,
    merge_store_paths,
    merge_stores,
    plan_campaign,
    run_worker,
)
from .hashing import (
    HASH_VERSION,
    canonical_scenario_dict,
    canonical_scenario_json,
    scenario_cell_key,
)
from .reporting import (
    campaign_groups,
    campaign_report,
    campaign_table,
    format_group_rows,
    query_table,
)
from .store import (
    SCHEMA_VERSION,
    CampaignInfo,
    CounterexampleRow,
    GcStats,
    ResultStore,
    SchemaMismatchError,
    StoreError,
    StoredRow,
)

__all__ = [
    "Campaign",
    "CampaignInfo",
    "CampaignPlan",
    "CampaignReport",
    "Coordinator",
    "CoordinatorReport",
    "CounterexampleRow",
    "GcStats",
    "HASH_VERSION",
    "LeaseError",
    "LeaseTable",
    "MergeConflictError",
    "MergeStats",
    "ResultStore",
    "SCHEMA_VERSION",
    "SchemaMismatchError",
    "StoreError",
    "StoredRow",
    "Worker",
    "WorkerReport",
    "campaign_groups",
    "campaign_report",
    "campaign_table",
    "canonical_scenario_dict",
    "canonical_scenario_json",
    "format_group_rows",
    "merge_store_paths",
    "merge_stores",
    "plan_campaign",
    "query_table",
    "run_campaign",
    "scenario_cell_key",
]
