"""Resumable, sharded campaign execution over a persistent result store.

A :class:`Campaign` binds a declarative
:class:`~repro.experiments.batch.ScenarioSuite` to a
:class:`~repro.campaigns.store.ResultStore`:

* the suite is expanded into *cells*, each content-addressed by
  :func:`~repro.campaigns.hashing.scenario_cell_key`;
* cells already in the store are **skipped** (a store hit — never
  recomputed, whether they came from a previous run of this campaign, a
  killed run, or an entirely different campaign that happened to cover the
  same configuration);
* the remainder is sharded over
  :class:`~repro.experiments.batch.BatchRunner` (``parallel=N`` fans shards
  over the process pool) and completed results are persisted through a
  small flush buffer (:data:`_PERSIST_FLUSH_EVERY` cells batched into one
  :meth:`~repro.campaigns.store.ResultStore.put_many` transaction), so a
  SIGKILL loses at most the simulations in flight plus one buffer's worth
  of finished ones;
* re-running the same campaign resumes exactly where it stopped: the cells
  persisted before the kill are hits, and only the missing ones execute.

Because runs are bit-determined by their scenario, aggregates queried from
the store are bit-identical to a single-shot in-memory sweep of the same
suite — the test suite asserts this float-for-float.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

from .. import obs
from ..experiments.batch import (
    BatchFailure,
    BatchRunner,
    ScenarioSuite,
    SuiteItem,
    normalise_suite,
)
from ..experiments.config import Scenario
from ..experiments.runner import ScenarioResult
from .hashing import scenario_cell_key
from .store import ResultStore, StoredRow

#: ``progress(done, total, item)`` over the *pending* (not cached) cells.
ProgressCallback = Callable[[int, int, SuiteItem], None]

#: Completed results buffered before a :meth:`ResultStore.put_many` flush.
#: Small on purpose: a SIGKILL loses at most the simulations in flight
#: plus this many already-finished ones, while the batch write amortises
#: the per-cell index commit (one transaction instead of eight).
_PERSIST_FLUSH_EVERY = 8


@dataclass(frozen=True)
class CampaignReport:
    """Outcome of one :meth:`Campaign.run` invocation.

    The counters are the resume guarantee made measurable: ``cached`` cells
    were answered by the store without simulating, ``executed`` cells ran;
    running a complete campaign again must report ``executed == 0``.
    """

    name: str
    store_root: Path
    items: tuple[SuiteItem, ...]
    cell_keys: tuple[str, ...]
    cached: int
    executed: int
    duplicates: int
    failures: tuple[BatchFailure, ...]
    parallel: int
    elapsed_seconds: float

    @property
    def total(self) -> int:
        """Number of scheduled cells (suite positions)."""
        return len(self.items)

    @property
    def complete(self) -> bool:
        """Whether every cell now has a stored result."""
        return not self.failures

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        return (
            f"campaign {self.name!r}: {self.total} cell(s) — "
            f"{self.cached} cached, {self.executed} executed, "
            f"{self.duplicates} duplicate(s), {len(self.failures)} failed "
            f"({self.elapsed_seconds:.2f}s, parallel={self.parallel})"
        )


class Campaign:
    """One named, resumable sweep over a result store.

    Parameters
    ----------
    store:
        The persistent store results are read from / written to.
    suite:
        A :class:`ScenarioSuite`, pre-built :class:`SuiteItem` sequence, or
        iterable of scenarios (each its own group).
    name:
        Campaign name recorded in the store (defaults to the suite name).
        Reusing a name requires ``resume=True`` on :meth:`run` and an
        identical suite expansion.
    parallel:
        Worker processes per shard (see :class:`BatchRunner`).
    shard_size:
        Cells per checkpointed shard.  Results are flushed to the store in
        small :meth:`~repro.campaigns.store.ResultStore.put_many` batches
        either way (and always at the shard boundary); the shard boundary
        additionally bounds how much of a :class:`SuiteResult` is held in
        memory at once.  Defaults to ``max(4 * parallel, 16)``.
    worker_plugins:
        Modules each worker imports first (third-party registrations).
    """

    def __init__(
        self,
        store: ResultStore,
        suite: Union[ScenarioSuite, Iterable[Scenario], Sequence[SuiteItem]],
        *,
        name: Optional[str] = None,
        parallel: int = 1,
        shard_size: Optional[int] = None,
        worker_plugins: Sequence[str] = (),
    ) -> None:
        self.store = store
        self.suite_name, self.items = normalise_suite(suite)
        self.name = name or self.suite_name
        if parallel < 1:
            raise ValueError("parallel must be at least 1")
        self.parallel = parallel
        self.shard_size = shard_size or max(4 * parallel, 16)
        if self.shard_size < 1:
            raise ValueError("shard_size must be positive")
        self.worker_plugins = tuple(worker_plugins)

    # ------------------------------------------------------------------ #
    def cell_keys(self) -> tuple[str, ...]:
        """Content address of every scheduled cell, in suite order."""
        return tuple(scenario_cell_key(item.scenario) for item in self.items)

    def run(
        self,
        *,
        resume: bool = False,
        recompute: bool = False,
        progress: Optional[ProgressCallback] = None,
    ) -> CampaignReport:
        """Execute (or resume) the campaign; see the module docs.

        ``recompute=True`` ignores and overwrites stored cells — the escape
        hatch after a code change that deliberately alters results without
        changing scenarios (the hash cannot see code).  When a trace
        context is active, the whole run becomes one ``campaign`` span and
        the expand/execute/persist phases nest under it.
        """
        run_cm = obs.span("campaign", campaign=self.name,
                          cells=len(self.items)) \
            if obs.tracing_active() else nullcontext()
        with run_cm:
            return self._run(resume=resume, recompute=recompute,
                             progress=progress)

    def _run(
        self,
        *,
        resume: bool,
        recompute: bool,
        progress: Optional[ProgressCallback],
    ) -> CampaignReport:
        started = time.perf_counter()
        with obs.phase("expand", campaign=self.name,
                       cells=len(self.items)):
            keys = self.cell_keys()
            self.store.register_campaign(
                self.name,
                self.suite_name,
                [(item.index, item.group, key)
                 for item, key in zip(self.items, keys)],
                resume=resume or recompute,
            )

            pending: list[SuiteItem] = []
            pending_keys: dict[int, str] = {}
            seen: set[str] = set()
            cached = 0
            duplicates = 0
            for item, key in zip(self.items, keys):
                # Duplicate positions are classified first so the counters
                # are stable across runs: a cell scheduled twice is always
                # 1 cached-or-executed + 1 duplicate, whether or not it was
                # already stored.
                if key in seen:
                    duplicates += 1
                    continue
                seen.add(key)
                if not recompute and self.store.contains(key):
                    cached += 1
                    continue
                pending.append(item)
                pending_keys[item.index] = key

        failures: list[BatchFailure] = []
        done = 0
        buffered: list[tuple[str, ScenarioResult]] = []

        def flush_buffered() -> None:
            if not buffered:
                return
            keys_, results_ = zip(*buffered)
            with obs.phase("persist", campaign=self.name,
                           cells=len(buffered)):
                self.store.put_many(results_, cell_keys=keys_)
            buffered.clear()

        def persist(item: SuiteItem, result: ScenarioResult) -> None:
            buffered.append((pending_keys[item.index], result))
            if len(buffered) >= _PERSIST_FLUSH_EVERY:
                flush_buffered()

        for shard_start in range(0, len(pending), self.shard_size):
            shard = pending[shard_start:shard_start + self.shard_size]

            def shard_progress(shard_done: int, _shard_total: int,
                               item: SuiteItem,
                               *, base: int = done) -> None:
                if progress is not None:
                    progress(base + shard_done, len(pending), item)

            runner = BatchRunner(
                parallel=self.parallel,
                progress=shard_progress,
                on_result=persist,
                worker_plugins=self.worker_plugins,
            )
            try:
                with obs.phase("execute", campaign=self.name,
                               shard_start=shard_start, cells=len(shard)):
                    outcome = runner.run(shard)
            finally:
                # Results buffered when the shard ends (or dies) must land
                # before anything else happens — the completion counters
                # and the resume guarantee both read straight off the store.
                flush_buffered()
            done += len(shard)
            for failure in outcome.failures:
                # Batch positions are shard-relative; report suite positions.
                failures.append(BatchFailure(
                    index=shard[failure.index].index,
                    group=failure.group,
                    scenario=failure.scenario,
                    error=failure.error,
                    details=failure.details,
                ))

        if obs.enabled():
            cells = obs.counter("repro_campaign_cells_total",
                                "Campaign cells by classification.",
                                ("outcome",))
            cells.inc(cached, outcome="cached")
            cells.inc(len(pending) - len(failures), outcome="executed")
            cells.inc(duplicates, outcome="duplicate")
            cells.inc(len(failures), outcome="failed")
        return CampaignReport(
            name=self.name,
            store_root=self.store.root,
            items=self.items,
            cell_keys=keys,
            cached=cached,
            executed=len(pending) - len(failures),
            duplicates=duplicates,
            failures=tuple(failures),
            parallel=self.parallel,
            elapsed_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    def rows(self) -> list[Optional[StoredRow]]:
        """Stored rows for every scheduled cell (suite order; ``None`` for
        cells not yet computed)."""
        return [self.store.get(key, count=False) for key in self.cell_keys()]


def run_campaign(
    store: Union[ResultStore, str, Path],
    suite: Union[ScenarioSuite, Iterable[Scenario], Sequence[SuiteItem]],
    *,
    name: Optional[str] = None,
    parallel: int = 1,
    resume: bool = False,
    recompute: bool = False,
    shard_size: Optional[int] = None,
    worker_plugins: Sequence[str] = (),
    progress: Optional[ProgressCallback] = None,
) -> CampaignReport:
    """One-call convenience wrapper: open/create the store and run.

    When *store* is a path, the store handle is closed before returning.
    """
    if isinstance(store, (str, Path)):
        with ResultStore(store) as handle:
            return Campaign(
                handle, suite, name=name, parallel=parallel,
                shard_size=shard_size, worker_plugins=worker_plugins,
            ).run(resume=resume, recompute=recompute, progress=progress)
    return Campaign(
        store, suite, name=name, parallel=parallel, shard_size=shard_size,
        worker_plugins=worker_plugins,
    ).run(resume=resume, recompute=recompute, progress=progress)
