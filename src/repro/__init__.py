"""repro — Uniform Reliable Broadcast in anonymous distributed systems with
fair lossy channels.

A faithful, simulation-based reproduction of Tang, Larrea, Arévalo & Jiménez
(2015): the non-quiescent majority URB algorithm (Algorithm 1), the quiescent
URB algorithm using the anonymous failure detectors AΘ and AP\\*
(Algorithm 2), the impossibility construction, baselines, and a full
experiment harness.

Quickstart::

    from repro import Scenario, run_scenario
    from repro.network import LossSpec

    result = run_scenario(
        Scenario(algorithm="algorithm2", n_processes=5,
                 loss=LossSpec.bernoulli(0.3), crashes={4: 10.0},
                 stop_when_quiescent=True)
    )
    print(result.describe())
"""

from .core import (
    BestEffortBroadcastProcess,
    BroadcastProtocol,
    EagerReliableBroadcastProcess,
    IdentifiedMajorityUrbProcess,
    MajorityUrbProcess,
    QuiescentUrbProcess,
    TaggedMessage,
)
from .experiments import (
    BatchRunner,
    Scenario,
    ScenarioResult,
    ScenarioSuite,
    SuiteResult,
    build_engine,
    default_scenario,
    replicate,
    run_scenario,
    run_scenarios,
)
from .campaigns import (
    Campaign,
    CampaignReport,
    ResultStore,
    run_campaign,
    scenario_cell_key,
)
from .explore import ExplorationReport, Explorer, explore
from .registry import (
    register_algorithm,
    register_channel,
    register_detector_setup,
    register_strategy,
    register_workload,
)
from .simulation import (
    BroadcastCommand,
    CrashSchedule,
    SimulationConfig,
    SimulationEngine,
    SimulationResult,
)

__version__ = "1.0.0"

__all__ = [
    "BatchRunner",
    "BestEffortBroadcastProcess",
    "Campaign",
    "CampaignReport",
    "ResultStore",
    "BroadcastCommand",
    "BroadcastProtocol",
    "CrashSchedule",
    "EagerReliableBroadcastProcess",
    "IdentifiedMajorityUrbProcess",
    "MajorityUrbProcess",
    "QuiescentUrbProcess",
    "Scenario",
    "ScenarioResult",
    "ScenarioSuite",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "SuiteResult",
    "TaggedMessage",
    "ExplorationReport",
    "Explorer",
    "build_engine",
    "default_scenario",
    "explore",
    "register_algorithm",
    "register_channel",
    "register_detector_setup",
    "register_strategy",
    "register_workload",
    "replicate",
    "run_campaign",
    "run_scenario",
    "run_scenarios",
    "scenario_cell_key",
    "__version__",
]
