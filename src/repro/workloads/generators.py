"""Workload generators.

Ready-made broadcast patterns used by the experiments and examples:

* :class:`SingleBroadcast` — one sender, one message (the minimal pattern the
  paper's proofs reason about).
* :class:`AllToAll` — every process broadcasts one message (stress on ACK
  traffic: n² acknowledgement streams per message).
* :class:`UniformStream` — one or more senders broadcast at a fixed rate.
* :class:`PoissonStream` — memoryless arrivals, random senders.
* :class:`BurstWorkload` — a burst of back-to-back broadcasts.

Contents are strings of the form ``"m<k>"`` by default (hashable, readable in
traces); a custom content factory can be supplied.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

from ..simulation.events import BroadcastCommand
from .base import Workload

#: Builds the application content of the ``k``-th broadcast.
ContentFactory = Callable[[int], object]


def default_content_factory(index: int) -> str:
    """Default content: ``"m0"``, ``"m1"``, …"""
    return f"m{index}"


class SingleBroadcast(Workload):
    """One process broadcasts one message at a given time."""

    def __init__(self, sender: int = 0, time: float = 0.0,
                 content: object = "m0") -> None:
        self._commands = (BroadcastCommand(time=time, sender=sender, content=content),)

    def commands(self) -> Sequence[BroadcastCommand]:
        return self._commands

    def describe(self) -> str:
        command = self._commands[0]
        return f"single(p{command.sender}@{command.time:g})"


class AllToAll(Workload):
    """Every process broadcasts one message.

    Parameters
    ----------
    n_processes:
        Number of processes.
    start, spacing:
        Broadcast ``k`` is issued by process ``k`` at ``start + k * spacing``.
    content_factory:
        Builds the content of each broadcast.
    """

    def __init__(
        self,
        n_processes: int,
        *,
        start: float = 0.0,
        spacing: float = 0.0,
        content_factory: ContentFactory = default_content_factory,
    ) -> None:
        if n_processes < 1:
            raise ValueError("n_processes must be positive")
        if spacing < 0:
            raise ValueError("spacing must be non-negative")
        self._commands = tuple(
            BroadcastCommand(
                time=start + sender * spacing,
                sender=sender,
                content=content_factory(sender),
            )
            for sender in range(n_processes)
        )

    def commands(self) -> Sequence[BroadcastCommand]:
        return self._commands

    def describe(self) -> str:
        return f"all-to-all({len(self._commands)} senders)"


class UniformStream(Workload):
    """Fixed-rate stream of broadcasts from a rotating set of senders."""

    def __init__(
        self,
        n_messages: int,
        *,
        senders: Sequence[int] = (0,),
        start: float = 0.0,
        interval: float = 5.0,
        content_factory: ContentFactory = default_content_factory,
    ) -> None:
        if n_messages < 1:
            raise ValueError("n_messages must be positive")
        if not senders:
            raise ValueError("senders must be non-empty")
        if interval < 0:
            raise ValueError("interval must be non-negative")
        self._commands = tuple(
            BroadcastCommand(
                time=start + k * interval,
                sender=senders[k % len(senders)],
                content=content_factory(k),
            )
            for k in range(n_messages)
        )

    def commands(self) -> Sequence[BroadcastCommand]:
        return self._commands

    def describe(self) -> str:
        return f"uniform-stream({len(self._commands)} msgs)"


class PoissonStream(Workload):
    """Poisson arrivals with uniformly random senders.

    Parameters
    ----------
    n_messages:
        Number of broadcasts.
    n_processes:
        Sender indices are drawn uniformly from ``[0, n_processes)``.
    rate:
        Mean arrivals per unit of simulated time.
    rng:
        Random substream (pass one derived from the run seed for
        reproducibility).
    start:
        Time of the first possible arrival.
    content_factory:
        Builds the content of each broadcast.
    """

    def __init__(
        self,
        n_messages: int,
        n_processes: int,
        rate: float,
        rng: random.Random,
        *,
        start: float = 0.0,
        content_factory: ContentFactory = default_content_factory,
    ) -> None:
        if n_messages < 1:
            raise ValueError("n_messages must be positive")
        if n_processes < 1:
            raise ValueError("n_processes must be positive")
        if rate <= 0:
            raise ValueError("rate must be positive")
        commands = []
        t = start
        for k in range(n_messages):
            t += rng.expovariate(rate)
            commands.append(
                BroadcastCommand(
                    time=t,
                    sender=rng.randrange(n_processes),
                    content=content_factory(k),
                )
            )
        self._commands = tuple(commands)

    def commands(self) -> Sequence[BroadcastCommand]:
        return self._commands

    def describe(self) -> str:
        return f"poisson-stream({len(self._commands)} msgs)"


class BurstWorkload(Workload):
    """A burst of simultaneous broadcasts from one sender (or several).

    All broadcasts happen at the same instant, which maximises the number of
    concurrently in-flight protocol instances — the worst case for ACK
    bookkeeping structures.
    """

    def __init__(
        self,
        n_messages: int,
        *,
        sender: Optional[int] = 0,
        senders: Optional[Sequence[int]] = None,
        time: float = 0.0,
        content_factory: ContentFactory = default_content_factory,
    ) -> None:
        if n_messages < 1:
            raise ValueError("n_messages must be positive")
        if senders is None:
            if sender is None:
                raise ValueError("either sender or senders must be given")
            senders = [sender]
        self._commands = tuple(
            BroadcastCommand(
                time=time,
                sender=senders[k % len(senders)],
                content=content_factory(k),
            )
            for k in range(n_messages)
        )

    def commands(self) -> Sequence[BroadcastCommand]:
        return self._commands

    def describe(self) -> str:
        return f"burst({len(self._commands)} msgs)"
