"""Workload generators: application-level broadcast patterns."""

from .base import ExplicitWorkload, Workload
from .generators import (
    AllToAll,
    BurstWorkload,
    ContentFactory,
    PoissonStream,
    SingleBroadcast,
    UniformStream,
    default_content_factory,
)

__all__ = [
    "AllToAll",
    "BurstWorkload",
    "ContentFactory",
    "ExplicitWorkload",
    "PoissonStream",
    "SingleBroadcast",
    "UniformStream",
    "Workload",
    "default_content_factory",
]
