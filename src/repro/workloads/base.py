"""Workload abstractions.

A *workload* is the application-level traffic injected into a run: a finite
schedule of :class:`~repro.simulation.events.BroadcastCommand` (who
URB-broadcasts what, and when).  Workloads are deterministic given their
parameters and random substream, so a scenario (workload + configuration +
seed) fully determines a run.
"""

from __future__ import annotations

import abc
from typing import Iterator, Sequence

from ..simulation.events import BroadcastCommand


class Workload(abc.ABC):
    """A finite schedule of application broadcasts."""

    @abc.abstractmethod
    def commands(self) -> Sequence[BroadcastCommand]:
        """The broadcast commands, sorted by time."""

    def __iter__(self) -> Iterator[BroadcastCommand]:
        return iter(self.commands())

    def __len__(self) -> int:
        return len(self.commands())

    def contents(self) -> list:
        """The distinct application contents the workload injects."""
        seen = []
        for command in self.commands():
            if command.content not in seen:
                seen.append(command.content)
        return seen

    def senders(self) -> set[int]:
        """The set of processes that broadcast at least once."""
        return {command.sender for command in self.commands()}

    def last_broadcast_time(self) -> float:
        """Time of the last scheduled broadcast (0.0 for an empty workload)."""
        commands = self.commands()
        return max((c.time for c in commands), default=0.0)

    def describe(self) -> str:
        """Human-readable description used in reports."""
        return f"{type(self).__name__}({len(self)} broadcasts)"


class ExplicitWorkload(Workload):
    """A workload given as an explicit list of commands."""

    def __init__(self, commands: Sequence[BroadcastCommand]) -> None:
        self._commands = tuple(sorted(commands, key=lambda c: (c.time, c.sender)))

    def commands(self) -> Sequence[BroadcastCommand]:
        return self._commands

    def describe(self) -> str:
        return f"explicit({len(self._commands)} broadcasts)"
