"""Real-time (asyncio) execution of the broadcast protocols.

The protocol classes in :mod:`repro.core` only talk to the
:class:`~repro.core.interfaces.EnvironmentAPI`, so the same unmodified code
that runs inside the discrete-event simulator can run against a *real-time*
in-process transport: every process is an asyncio task, channels are queues
with genuine (wall-clock) delays and optional random loss, and the Task 1
retransmission loop is driven by real timers.

This module is the "real transport behind the same interface" extension
promised in DESIGN.md §6.  It deliberately stays in-process (no sockets): the
goal is to demonstrate transport-independence of the protocol layer and to
provide a second, timing-realistic harness for smoke tests — not to be a
deployment vehicle.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..core.interfaces import BroadcastProtocol
from ..core.messages import TaggedMessage, payload_kind
from ..failure_detectors.base import FailureDetector, FailureDetectorView
from ..simulation.rng import RandomSource

#: Factory building the protocol process for index ``i`` given its
#: environment (same shape as the simulator's factory).
RealTimeProcessFactory = Callable[[int, "RealTimeEnvironment"], BroadcastProtocol]


@dataclass(frozen=True)
class RealTimeBroadcast:
    """One application broadcast injected into a real-time run."""

    delay: float
    sender: int
    content: Any

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if self.sender < 0:
            raise ValueError("sender must be a valid index")


@dataclass
class RealTimeReport:
    """Outcome of a real-time run."""

    duration: float
    deliveries: dict[int, list[Any]]
    delivery_times: list[tuple[float, int, Any]]
    sends_by_kind: dict[str, int] = field(default_factory=dict)
    total_sends: int = 0
    drops: int = 0
    last_send_elapsed: Optional[float] = None

    def delivered_everywhere(self, contents: Sequence[Any],
                             indices: Sequence[int]) -> bool:
        """Whether every process in *indices* delivered every content."""
        return all(
            set(contents) <= set(self.deliveries.get(index, []))
            for index in indices
        )

    def describe(self) -> str:
        """One-line human readable summary."""
        per_process = ", ".join(
            f"p{index}:{len(items)}" for index, items in sorted(self.deliveries.items())
        )
        return (
            f"realtime-run({self.duration:.2f}s, sends={self.total_sends}, "
            f"drops={self.drops}, deliveries=[{per_process}])"
        )


class RealTimeEnvironment:
    """EnvironmentAPI implementation backed by a :class:`RealTimeCluster`."""

    def __init__(self, index: int, cluster: "RealTimeCluster") -> None:
        self._index = index
        self._cluster = cluster
        self._random = cluster.random_source.for_process(index)

    def broadcast(self, payload: Any) -> None:
        self._cluster.broadcast_from(self._index, payload)

    @property
    def random(self) -> random.Random:
        return self._random

    def atheta(self) -> FailureDetectorView:
        return self._cluster.detector_view(self._cluster.atheta, self._index)

    def apstar(self) -> FailureDetectorView:
        return self._cluster.detector_view(self._cluster.apstar, self._index)

    def notify_delivery(self, message: TaggedMessage) -> None:
        self._cluster.on_delivery(self._index, message)

    def notify_retire(self, message: TaggedMessage) -> None:
        # Retirements are interesting for quiescence analysis in the
        # simulator; in the real-time harness they need no bookkeeping.
        return None


class RealTimeCluster:
    """Runs ``n`` protocol instances over an in-process asyncio transport.

    Parameters
    ----------
    n_processes:
        Number of processes.
    process_factory:
        Builds each protocol instance, e.g.
        ``lambda i, env: QuiescentUrbProcess(env)``.
    loss_probability:
        Independent per-copy drop probability of the in-memory channels.
    delay_range:
        Uniform per-copy transfer delay bounds, in (wall-clock) seconds.
    tick_interval:
        Real-time period of the Task 1 retransmission loop, in seconds.
    seed:
        Master seed for tags, loss and delays.
    atheta / apstar:
        Optional failure-detector oracles; they are queried with the elapsed
        wall-clock time since the run started.
    crash_after:
        Optional mapping ``index -> seconds`` after which the process is
        crash-stopped (it stops receiving, ticking and sending).
    """

    def __init__(
        self,
        n_processes: int,
        process_factory: RealTimeProcessFactory,
        *,
        loss_probability: float = 0.0,
        delay_range: tuple[float, float] = (0.001, 0.005),
        tick_interval: float = 0.02,
        seed: int = 0,
        atheta: Optional[FailureDetector] = None,
        apstar: Optional[FailureDetector] = None,
        crash_after: Optional[dict[int, float]] = None,
    ) -> None:
        if n_processes < 1:
            raise ValueError("n_processes must be positive")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if delay_range[0] <= 0 or delay_range[1] < delay_range[0]:
            raise ValueError("delay_range must be positive and ordered")
        if tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        self.n_processes = n_processes
        self.loss_probability = loss_probability
        self.delay_range = delay_range
        self.tick_interval = tick_interval
        self.random_source = RandomSource(seed)
        self.atheta = atheta
        self.apstar = apstar
        self.crash_after = dict(crash_after or {})

        self._loss_rng = self.random_source.stream("rt-loss")
        self._delay_rng = self.random_source.stream("rt-delay")
        self._queues: dict[int, asyncio.Queue] = {}
        self._crashed: set[int] = set()
        self._start_monotonic: float = 0.0
        self._loop: Optional[asyncio.AbstractEventLoop] = None

        self.environments = {
            index: RealTimeEnvironment(index, self) for index in range(n_processes)
        }
        self.processes: dict[int, BroadcastProtocol] = {
            index: process_factory(index, env)
            for index, env in self.environments.items()
        }

        # Metrics.
        self._total_sends = 0
        self._drops = 0
        self._sends_by_kind: dict[str, int] = {}
        self._last_send_elapsed: Optional[float] = None
        self._delivery_times: list[tuple[float, int, Any]] = []

    # ------------------------------------------------------------------ #
    # services used by RealTimeEnvironment
    # ------------------------------------------------------------------ #
    @property
    def elapsed(self) -> float:
        """Seconds since the run started (0 before the run starts)."""
        if self._start_monotonic == 0.0:
            return 0.0
        return time.monotonic() - self._start_monotonic

    def detector_view(self, detector: Optional[FailureDetector],
                      index: int) -> FailureDetectorView:
        """Failure-detector view at *index*, using elapsed wall-clock time."""
        if detector is None:
            return FailureDetectorView.empty()
        return detector.view(index, self.elapsed)

    def broadcast_from(self, src: int, payload: Any) -> None:
        """Anonymous broadcast: one copy per process, with loss and delay."""
        if src in self._crashed or self._loop is None:
            return
        kind = payload_kind(payload)
        for dst in range(self.n_processes):
            self._total_sends += 1
            self._sends_by_kind[kind] = self._sends_by_kind.get(kind, 0) + 1
            self._last_send_elapsed = self.elapsed
            if self.loss_probability and self._loss_rng.random() < self.loss_probability:
                self._drops += 1
                continue
            delay = self._delay_rng.uniform(*self.delay_range)
            self._loop.call_later(delay, self._deliver_copy, dst, payload)

    def on_delivery(self, index: int, message: TaggedMessage) -> None:
        """Record a URB-delivery with its wall-clock timestamp."""
        self._delivery_times.append((self.elapsed, index, message.content))

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _deliver_copy(self, dst: int, payload: Any) -> None:
        if dst in self._crashed:
            return
        queue = self._queues.get(dst)
        if queue is not None:
            queue.put_nowait(payload)

    async def _receiver(self, index: int) -> None:
        queue = self._queues[index]
        while True:
            payload = await queue.get()
            if index in self._crashed:
                continue
            self.processes[index].on_receive(payload)

    async def _ticker(self, index: int) -> None:
        while True:
            await asyncio.sleep(self.tick_interval)
            if index not in self._crashed:
                self.processes[index].on_tick()

    async def _crasher(self, index: int, after: float) -> None:
        await asyncio.sleep(after)
        self._crashed.add(index)

    async def _injector(self, command: RealTimeBroadcast) -> None:
        await asyncio.sleep(command.delay)
        if command.sender not in self._crashed:
            self.processes[command.sender].urb_broadcast(command.content)

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #
    async def run(self, workload: Sequence[RealTimeBroadcast],
                  duration: float) -> RealTimeReport:
        """Run the cluster for *duration* seconds of wall-clock time."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        for command in workload:
            if not (0 <= command.sender < self.n_processes):
                raise ValueError("workload sender out of range")
        self._loop = asyncio.get_running_loop()
        self._queues = {index: asyncio.Queue() for index in range(self.n_processes)}
        self._start_monotonic = time.monotonic()
        tasks: list[asyncio.Task] = []
        try:
            for index in range(self.n_processes):
                tasks.append(asyncio.create_task(self._receiver(index)))
                tasks.append(asyncio.create_task(self._ticker(index)))
            for index, after in self.crash_after.items():
                tasks.append(asyncio.create_task(self._crasher(index, after)))
            for command in workload:
                tasks.append(asyncio.create_task(self._injector(command)))
            await asyncio.sleep(duration)
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
        return RealTimeReport(
            duration=duration,
            deliveries={
                index: process.delivered_contents()
                for index, process in self.processes.items()
            },
            delivery_times=list(self._delivery_times),
            sends_by_kind=dict(self._sends_by_kind),
            total_sends=self._total_sends,
            drops=self._drops,
            last_send_elapsed=self._last_send_elapsed,
        )

    def run_sync(self, workload: Sequence[RealTimeBroadcast],
                 duration: float) -> RealTimeReport:
        """Blocking wrapper around :meth:`run` (creates its own event loop)."""
        return asyncio.run(self.run(workload, duration))
