"""Real-time (asyncio) execution of the broadcast protocols — the same
protocol classes as the simulator, driven by wall-clock timers and an
in-process lossy transport."""

from .cluster import (
    RealTimeBroadcast,
    RealTimeCluster,
    RealTimeEnvironment,
    RealTimeProcessFactory,
    RealTimeReport,
)

__all__ = [
    "RealTimeBroadcast",
    "RealTimeCluster",
    "RealTimeEnvironment",
    "RealTimeProcessFactory",
    "RealTimeReport",
]
