"""Experiment result containers and plain-text rendering.

Every experiment produces an :class:`ExperimentResult` made of one or more
:class:`ExperimentArtifact` (a *table* or a *figure* — a figure being a data
series rendered as a two-or-more-column table, since the library has no
plotting dependency).  The same objects back the CLI output, the benchmark
harness and ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..analysis.tables import render_table


@dataclass
class ExperimentArtifact:
    """One table or figure of an experiment."""

    name: str
    kind: str  # "table" | "figure"
    headers: Sequence[str]
    rows: list[Sequence[Any]]
    notes: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("table", "figure"):
            raise ValueError("artifact kind must be 'table' or 'figure'")

    def render(self) -> str:
        """Render the artifact as aligned monospace text."""
        text = render_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += f"\nNote: {self.notes}"
        return text

    def column(self, header: str) -> list[Any]:
        """Extract one column by header name (used by tests)."""
        try:
            index = list(self.headers).index(header)
        except ValueError:
            raise KeyError(f"no column named {header!r}") from None
        return [row[index] for row in self.rows]


@dataclass
class ExperimentResult:
    """The complete output of one experiment run."""

    experiment_id: str
    title: str
    artifacts: list[ExperimentArtifact] = field(default_factory=list)
    notes: str = ""
    parameters: dict[str, Any] = field(default_factory=dict)

    def artifact(self, name: str) -> ExperimentArtifact:
        """Look up an artifact by name."""
        for artifact in self.artifacts:
            if artifact.name == name:
                return artifact
        raise KeyError(f"experiment {self.experiment_id} has no artifact {name!r}")

    def render(self) -> str:
        """Render the whole experiment as monospace text."""
        header = f"{self.experiment_id} — {self.title}"
        parts = [header, "=" * len(header)]
        if self.parameters:
            params = ", ".join(f"{k}={v}" for k, v in sorted(self.parameters.items()))
            parts.append(f"parameters: {params}")
        if self.notes:
            parts.append(self.notes)
        for artifact in self.artifacts:
            parts.append("")
            parts.append(artifact.render())
        return "\n".join(parts)

    def summary_row(self) -> list[Any]:
        """Row used by the `repro-urb list` CLI command."""
        return [self.experiment_id, self.title, len(self.artifacts)]
