"""High-level scenario configuration.

A :class:`Scenario` is the user-facing description of one simulated run:
which algorithm, how many processes, which crashes, what kind of channels,
which failure-detector parameterisation, what workload, and for how long.
The :mod:`repro.experiments.runner` module turns a scenario into a wired-up
:class:`~repro.simulation.engine.SimulationEngine` and runs it.

Scenarios are plain frozen dataclasses: cheap to construct, easy to sweep
over (``dataclasses.replace``), and fully determined by their fields plus the
seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Sequence, Union

from ..network.delay import DelaySpec
from ..network.fair_lossy import DEFAULT_FAIRNESS_BOUND
from ..network.loss import LossSpec
from ..failure_detectors.policies import DisseminationPolicy
from ..registry import (
    algorithms,
    channels,
    detector_setups,
    engines,
    strategies,
    workloads,
)
from ..simulation.hooks import EngineHook
from ..workloads.base import Workload


def __getattr__(name: str):
    """Legacy aliases: live views of the component registries.

    ``ALGORITHMS`` and ``CHANNEL_TYPES`` used to be hardcoded tuples; they now
    reflect whatever is registered in :mod:`repro.registry` at access time, so
    code iterating over them keeps working and additionally sees third-party
    registrations.
    """
    if name == "ALGORITHMS":
        return algorithms.names()
    if name == "CHANNEL_TYPES":
        return channels.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class Scenario:
    """One fully described simulated run (minus the seed-dependent draws).

    Attributes
    ----------
    name:
        Free-form scenario name used in reports.
    algorithm:
        Name of a registered algorithm (see :mod:`repro.registry`).
    n_processes:
        Number of anonymous processes.
    seed:
        Master seed of the run.
    crashes:
        Failure pattern: mapping from process index to crash time.
    loss, delay, fairness_bound, channel_type:
        Channel model (see :mod:`repro.network`).
    tick_interval:
        Task 1 retransmission period.
    max_time:
        Simulation horizon.
    check_interval:
        Engine self-check period for early-stop predicates.
    stop_when_all_correct_delivered, stop_when_quiescent, drain_grace_period:
        Early-stop behaviour.
    detector_setup:
        Name of a registered failure-detector setup (only consulted for
        algorithms whose spec sets ``uses_failure_detectors``).
    fd_policy, fd_detection_delay, fd_learn_delay, apstar_detection_delay:
        Failure-detector parameterisation (Algorithm 2 only).
    strict_equality, retire_enabled, eager_first_broadcast, majority_threshold:
        Algorithm options.
    workload:
        The application broadcast schedule: a :class:`Workload` instance, the
        name of a registered workload preset, or ``None`` (a single broadcast
        by process 0 at time 0).
    trace_enabled, trace_ticks:
        Trace recording switches (disable for very large benchmark runs).
    hooks:
        Engine hooks (e.g. the impossibility adversary).
    explore_strategy, explore_index:
        Schedule exploration (see :mod:`repro.explore`): the name of a
        registered exploration strategy driving the run's nondeterminism,
        and which schedule of that strategy's space to execute.  ``None``
        (the default) runs the ordinary RNG-driven schedule.
    metadata:
        Free-form metadata propagated to results and reports.
    """

    name: str = "scenario"
    algorithm: str = "algorithm2"
    n_processes: int = 5
    seed: int = 0

    crashes: Mapping[int, float] = field(default_factory=dict)

    loss: LossSpec = field(default_factory=LossSpec.none)
    delay: DelaySpec = field(default_factory=lambda: DelaySpec.uniform(0.05, 0.5))
    fairness_bound: Optional[int] = DEFAULT_FAIRNESS_BOUND
    channel_type: str = "fair_lossy"

    tick_interval: float = 1.0
    max_time: float = 300.0
    check_interval: float = 1.0
    stop_when_all_correct_delivered: bool = False
    stop_when_quiescent: bool = False
    drain_grace_period: float = 0.0

    detector_setup: str = "oracle"
    fd_policy: DisseminationPolicy | str = DisseminationPolicy.CORRECT_ONLY
    fd_detection_delay: float = 2.0
    fd_learn_delay: float = 0.0
    apstar_detection_delay: Optional[float] = None

    strict_equality: bool = False
    retire_enabled: bool = True
    eager_first_broadcast: bool = True
    majority_threshold: Optional[int] = None

    workload: Optional[Union[Workload, str]] = None

    trace_enabled: bool = True
    trace_ticks: bool = False
    hooks: Sequence[EngineHook] = ()

    explore_strategy: Optional[str] = None
    explore_index: int = 0

    #: Simulation-engine backend (``repro.registry.engines``).  Backends are
    #: bit-identical by contract, so this is a speed knob, not a semantic one.
    engine: str = "reference"

    metadata: Mapping[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        # Validate component names against the *live* registries so that
        # third-party registrations are accepted exactly like built-ins.
        algorithms.validate(self.algorithm)
        channels.validate(self.channel_type)
        detector_setups.validate(self.detector_setup)
        if isinstance(self.workload, str):
            workloads.validate(self.workload)
        if self.explore_strategy is not None:
            strategies.validate(self.explore_strategy)
        if self.explore_index < 0:
            raise ValueError("explore_index must be non-negative")
        engines.validate(self.engine)
        if self.n_processes < 1:
            raise ValueError("n_processes must be positive")
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if self.max_time <= 0:
            raise ValueError("max_time must be positive")
        for index, time in dict(self.crashes).items():
            if not (0 <= int(index) < self.n_processes):
                raise ValueError(
                    f"crash index {index} out of range for n={self.n_processes}"
                )
            if time < 0:
                raise ValueError("crash times must be non-negative")
        if len(self.crashes) >= self.n_processes:
            raise ValueError("at least one process must remain correct")
        # Normalise the policy eagerly so typos fail at construction time.
        object.__setattr__(
            self, "fd_policy", DisseminationPolicy.from_string(self.fd_policy)
        )

    # ------------------------------------------------------------------ #
    # derived quantities and sweeping helpers
    # ------------------------------------------------------------------ #
    @property
    def n_crashes(self) -> int:
        """Number of faulty processes in the scenario."""
        return len(self.crashes)

    @property
    def has_correct_majority(self) -> bool:
        """Whether a majority of processes stay correct."""
        return self.n_crashes < self.n_processes / 2

    @property
    def effective_apstar_delay(self) -> float:
        """AP\\* detection delay (defaults to the AΘ detection delay)."""
        if self.apstar_detection_delay is None:
            return self.fd_detection_delay
        return self.apstar_detection_delay

    def with_seed(self, seed: int) -> "Scenario":
        """Copy of the scenario with a different seed."""
        return replace(self, seed=seed)

    def with_(self, **changes: Any) -> "Scenario":
        """Copy of the scenario with arbitrary field changes."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"{self.name}: {self.algorithm}, n={self.n_processes}, "
            f"crashes={self.n_crashes}, loss={self.loss.describe()}, "
            f"seed={self.seed}"
        )
