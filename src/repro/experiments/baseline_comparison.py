"""E9 — Baseline comparison: why Uniform Reliable Broadcast (Table 4).

The paper's introduction motivates URB by the inconsistencies weaker
broadcast abstractions allow when senders crash or channels lose messages.
This experiment runs every protocol in the library on the same adversarial
scenario — a sender that crashes shortly after broadcasting over lossy
channels — and reports how many correct processes end up with the message
and whether (uniform) agreement survives.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.properties import check_correct_agreement
from ..network.loss import LossSpec
from .common import delivered_fraction, seeds_for, single_broadcast_workload
from .config import Scenario
from .report import ExperimentArtifact, ExperimentResult
from .runner import run_scenario

EXPERIMENT_ID = "E9"
TITLE = "Baseline comparison under a crashing sender and lossy channels"

N_PROCESSES = 6
LOSS_P = 0.55
#: The sender crashes shortly after its (single) broadcast attempt.
SENDER_CRASH_TIME = 0.6

PROTOCOLS = ("best_effort", "eager_rb", "algorithm1", "identified_urb", "algorithm2")


def _scenario(algorithm: str, seed: int) -> Scenario:
    return Scenario(
        name=f"E9-{algorithm}",
        algorithm=algorithm,
        n_processes=N_PROCESSES,
        seed=seed,
        crashes={0: SENDER_CRASH_TIME},
        loss=LossSpec.bernoulli(LOSS_P),
        # The adversarial point is that a *single* transmission can be lost;
        # the fairness guard only matters for the retransmitting protocols.
        workload=single_broadcast_workload(),
        max_time=120.0,
        stop_when_all_correct_delivered=(algorithm != "algorithm2"),
        stop_when_quiescent=(algorithm == "algorithm2"),
        drain_grace_period=3.0,
    )


def run(seeds: Optional[int] = None, quick: bool = False) -> ExperimentResult:
    """Run E9 and return its table."""
    n_seeds = seeds_for(quick, seeds)
    rows = []
    for algorithm in PROTOCOLS:
        delivered_fracs = []
        uniform_ok = 0
        correct_only_ok = 0
        any_delivered = 0
        for seed in range(n_seeds):
            result = run_scenario(_scenario(algorithm, seed))
            delivered_fracs.append(delivered_fraction(result))
            uniform_ok += int(result.verdict.uniform_agreement.holds)
            correct_only_ok += int(
                check_correct_agreement(result.simulation).holds
            )
            any_delivered += int(result.metrics.deliveries > 0)
        rows.append(
            [
                algorithm,
                n_seeds,
                any_delivered,
                sum(delivered_fracs) / len(delivered_fracs),
                uniform_ok,
                correct_only_ok,
            ]
        )
    table = ExperimentArtifact(
        name="Table 4 — delivery coverage and agreement per protocol",
        kind="table",
        headers=["protocol", "runs", "runs w/ any delivery",
                 "mean fraction of correct processes fully delivered",
                 "uniform agreement ok", "agreement among correct ok"],
        rows=rows,
        notes=(
            "best_effort transmits once: lost copies are never recovered, so "
            "coverage is partial and agreement is typically violated.  "
            "eager_rb relays once: better coverage, still no tolerance of "
            "loss.  The URB protocols (algorithm1, identified_urb, "
            "algorithm2) must reach full coverage and preserve both "
            "agreement columns in every run."
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        artifacts=[table],
        parameters={"seeds": n_seeds, "n": N_PROCESSES, "loss": LOSS_P,
                    "sender_crash": SENDER_CRASH_TIME, "quick": quick},
        notes="Motivational comparison from the paper's introduction (§I).",
    )
