"""Engine-backend parity: fingerprints and the scenario battery.

The ``engines`` registry promises that every backend is *bit-identical* to
``reference`` — a backend is a dispatch strategy, never a semantics change.
This module is the executable form of that contract:

* :func:`fingerprint` reduces a finished run to every observable the
  promise covers: the trace digest, the full metrics summary, the ordered
  per-process delivery logs, per-kind event statistics, per-channel
  transmission statistics, final time and stop reason.
* :func:`parity_cases` is the scenario battery, chosen so that every
  dispatch path of the vectorized backend is exercised: the homogeneous
  Bernoulli/uniform rows of its vector sampler, the generic per-channel
  fallback (exponential and block-sampled models), the fairness guard
  (heavy loss), degenerate all-drop rows, reliable and quasi-reliable
  channel families, crashes on both paths, and both merge loops (sliced
  for bounded delays, per-entry for unbounded ones).
* :func:`compare_engines` runs one scenario under several backends and
  reports exactly which fingerprint components disagree.

Used by ``tests/unit/test_engine_backends.py`` and by the CI gate
``scripts/engine_parity.py`` (which uploads the mismatch reports as a
digest-diff artifact when the gate fails).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..network.delay import DelaySpec
from ..network.loss import LossSpec
from ..simulation.engine import SimulationResult
from ..simulation.metrics import MetricsCollector, MetricsLevel
from ..simulation.tracing import TraceLevel, TraceRecorder
from .config import Scenario
from .runner import build_engine

#: Engines every parity run compares.  The reference engine is always
#: first: it defines the expected fingerprint.
DEFAULT_ENGINES: tuple[str, ...] = ("reference", "vectorized")


def fingerprint(result: SimulationResult) -> dict[str, Any]:
    """Every observable of *result* that backends must reproduce exactly.

    The values are plain JSON-friendly structures so mismatch reports can
    be serialised as CI artifacts.
    """
    deliveries = {
        str(index): [
            (repr(record.message.tag), repr(record.message.content))
            for record in log
        ]
        for index, log in sorted(result.delivery_logs.items())
    }
    return {
        "trace_digest": result.trace.digest(),
        "metrics": result.metrics.summary().as_dict(),
        "deliveries": deliveries,
        "event_stats": {str(k): v for k, v in result.event_stats.as_dict().items()},
        "final_time": result.final_time,
        "stop_reason": result.stop_reason,
    }


@dataclass(frozen=True)
class EngineRun:
    """One engine's run of a parity scenario."""

    engine: str
    #: Which dispatch path the backend took (``None`` for backends that do
    #: not report one, e.g. ``reference``).
    dispatch_mode: Optional[str]
    fingerprint: dict[str, Any]
    #: How the batched path consumed deliveries (``"batched"`` = unboxed
    #: struct-of-arrays consumption through BatchConsumers, ``"boxed"`` =
    #: per-entry boxing through ``on_receive``); ``None`` for backends /
    #: paths that do not report one.
    consume_mode: Optional[str] = None


@dataclass(frozen=True)
class ParityReport:
    """Outcome of comparing one scenario across engine backends."""

    name: str
    runs: tuple[EngineRun, ...]
    #: Fingerprint keys on which some backend disagrees with the first
    #: (reference) run.  Empty means bit-identical.
    mismatched: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """Whether every backend reproduced the reference fingerprint."""
        return not self.mismatched

    def diff(self) -> dict[str, Any]:
        """JSON-friendly digest-diff of the mismatching components."""
        return {
            "scenario": self.name,
            "mismatched": list(self.mismatched),
            "runs": [
                {
                    "engine": run.engine,
                    "dispatch_mode": run.dispatch_mode,
                    "consume_mode": run.consume_mode,
                    **{key: run.fingerprint[key] for key in self.mismatched},
                }
                for run in self.runs
            ],
        }


def run_fingerprint(
    scenario: Scenario,
    engine: str,
    *,
    trace_level: TraceLevel = TraceLevel.DELIVERIES,
    metrics_level: MetricsLevel = MetricsLevel.FULL,
) -> EngineRun:
    """Run *scenario* under *engine* and fingerprint the result.

    The trace level defaults to ``DELIVERIES`` (protocol observables only):
    a FULL trace forces batching backends onto their per-event path, which
    would make the comparison vacuous — per-copy parity is covered by the
    dedicated FULL-trace cases instead, which *expect* the fallback.
    Metrics stay FULL either way; batching backends must reproduce the
    entire summary including latency percentiles.
    """
    built = build_engine(scenario.with_(engine=engine))
    built.trace = TraceRecorder(enabled=scenario.trace_enabled,
                                level=trace_level)
    built.metrics = MetricsCollector(level=metrics_level)
    result = built.run()
    fp = fingerprint(result)
    # Channel statistics live on the network (not the result); batching
    # backends defer their per-channel counter updates and must land on
    # exactly the per-transmit totals.
    fp["channel_stats"] = {
        f"{src}->{dst}": {
            "attempts": channel.stats.attempts,
            "delivered": channel.stats.delivered,
            "dropped": channel.stats.dropped,
            "forced_deliveries": channel.stats.forced_deliveries,
        }
        for (src, dst), channel in sorted(built.network.channels.items())
    }
    return EngineRun(
        engine=engine,
        dispatch_mode=getattr(built, "dispatch_mode", None),
        fingerprint=fp,
        consume_mode=getattr(built, "consume_mode", None),
    )


def compare_engines(
    scenario: Scenario,
    engines: Sequence[str] = DEFAULT_ENGINES,
    *,
    trace_level: TraceLevel = TraceLevel.DELIVERIES,
    metrics_level: MetricsLevel = MetricsLevel.FULL,
) -> ParityReport:
    """Run *scenario* under every backend in *engines* and compare."""
    runs = tuple(
        run_fingerprint(scenario, engine,
                        trace_level=trace_level, metrics_level=metrics_level)
        for engine in engines
    )
    expected = runs[0].fingerprint
    mismatched = tuple(
        key for key in expected
        if any(run.fingerprint[key] != expected[key] for run in runs[1:])
    )
    return ParityReport(name=scenario.name, runs=runs, mismatched=mismatched)


# --------------------------------------------------------------------------- #
# the scenario battery
# --------------------------------------------------------------------------- #
def parity_cases() -> tuple[Scenario, ...]:
    """Scenarios covering every dispatch path of the vectorized backend.

    Kept deliberately small (seconds each): CI runs the battery under every
    backend on every supported Python / NumPy combination.
    """
    base = Scenario(
        name="base",
        algorithm="algorithm2",
        n_processes=6,
        seed=20150525,
        loss=LossSpec.bernoulli(0.25),
        delay=DelaySpec.uniform(0.05, 0.5),
        workload="burst",
        metadata={"burst_size": 4},
        max_time=80.0,
        stop_when_quiescent=True,
        drain_grace_period=2.0,
    )
    return (
        # Vector sampler + sliced merge (the headline fast path).
        base.with_(name="bernoulli-uniform"),
        # p == 0 rows: no loss uniforms may be drawn.
        base.with_(name="noloss-uniform", loss=LossSpec.none()),
        # Equal delays: the chunk-internal no-sort fast path.
        base.with_(name="bernoulli-fixed", delay=DelaySpec.fixed(0.3)),
        # Unbounded-below delays: generic sampler + per-entry merge.
        base.with_(name="bernoulli-exponential",
                   delay=DelaySpec.exponential(mean=0.3, cap=2.0)),
        # Block-sampled models: generic sampler + sliced merge.
        base.with_(name="batched-models",
                   loss=LossSpec.bernoulli(0.2, batch=64),
                   delay=DelaySpec.uniform(0.05, 0.5, batch=64)),
        # Heavy loss: the fairness guard forces deliveries.
        base.with_(name="heavy-loss-guard",
                   loss=LossSpec.bernoulli(0.7), fairness_bound=2,
                   max_time=60.0),
        # Degenerate all-drop rows (guard-only traffic, vector mode must
        # refuse them).
        base.with_(name="all-drop", loss=LossSpec.bernoulli(1.0),
                   fairness_bound=3, max_time=40.0,
                   metadata={"burst_size": 2}),
        # Crashes interleaved with the fast path.
        base.with_(name="crashes-mid-run", crashes={4: 3.0, 5: 9.0}),
        # Staggered label learning: ACKs of one message carry different
        # label sets while AΘ converges, driving the batched receiver's
        # view segmentation and its per-message debatch escape hatch.
        base.with_(name="staggered-learning", fd_learn_delay=6.0,
                   crashes={5: 4.0}),
        # Algorithm 1 (no failure detectors, no labels).
        base.with_(name="algorithm1", algorithm="algorithm1",
                   stop_when_quiescent=False,
                   stop_when_all_correct_delivered=True),
        # Reliable / quasi-reliable channel families (generic sampler,
        # sliced merge via their delay models).
        base.with_(name="reliable", channel_type="reliable",
                   loss=LossSpec.none()),
        base.with_(name="quasi-reliable", channel_type="quasi_reliable",
                   loss=LossSpec.none(), crashes={1: 5.0}),
    )


def check_parity(
    scenarios: Optional[Sequence[Scenario]] = None,
    engines: Sequence[str] = DEFAULT_ENGINES,
) -> list[ParityReport]:
    """Run the whole battery; returns one report per scenario."""
    if scenarios is None:
        scenarios = parity_cases()
    return [compare_engines(scenario, engines) for scenario in scenarios]
