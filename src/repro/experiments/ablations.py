"""E10 — Ablations of the design choices (Table 5).

Each ablation flips one design decision called out in DESIGN.md and measures
what breaks (or does not):

* **a) FD dissemination policy** — the prescient ``CORRECT_ONLY`` oracle vs
  the detection-based ``ALL_PROCESSES`` oracle in a *minority-correct* run.
  The detection-based oracle does not satisfy AΘ-accuracy without a correct
  majority; the ablation reports delivery, quiescence and property verdicts
  under both.
* **b) Retirement disabled** — Algorithm 2 with ``retire_enabled=False`` is
  functionally identical but never quiesces (it degenerates to Algorithm 1's
  sending behaviour).
* **c) Strict equality** — the paper's literal ``counter == number`` check vs
  the robust ``>=`` form, under a converging detector (learning delays), to
  show both deliver but the strict form is more brittle to label churn.
* **d) Fairness guard** — high-loss channels with and without the fairness
  guard; without the guard liveness within the horizon becomes probabilistic.
* **e) Eager first broadcast** — latency optimisation on/off.
"""

from __future__ import annotations

from typing import Optional

from ..failure_detectors.policies import DisseminationPolicy
from ..network.loss import LossSpec
from .common import (
    algorithm2_scenario,
    all_correct_delivered,
    crash_last,
    is_quiescent,
    mean_latency,
    properties_hold,
    seeds_for,
)
from .report import ExperimentArtifact, ExperimentResult
from .runner import replicate

EXPERIMENT_ID = "E10"
TITLE = "Ablations: failure-detector policy, retirement, equality, fairness"

N_PROCESSES = 6


def _row(label: str, scenario, n_seeds: int) -> list:
    results = replicate(scenario, n_seeds)
    return [
        label,
        len(results),
        sum(1 for r in results if all_correct_delivered(r)),
        sum(1 for r in results if is_quiescent(r)),
        sum(1 for r in results if properties_hold(r)),
        _mean(results, mean_latency),
    ]


def _mean(results, fn):
    values = [fn(r) for r in results if fn(r) is not None]
    return sum(values) / len(values) if values else None


def run(seeds: Optional[int] = None, quick: bool = False) -> ExperimentResult:
    """Run E10 and return its table."""
    n_seeds = seeds_for(quick, seeds)
    rows = []

    # a) dissemination policy under a minority of correct processes.
    minority_base = algorithm2_scenario(
        name="E10-policy",
        n_processes=N_PROCESSES,
        crashes=crash_last(N_PROCESSES, 4, time=1.5),   # only 2 correct
        loss=LossSpec.bernoulli(0.2),
        max_time=200.0,
    )
    rows.append(_row(
        "a) prescient AΘ/AP* (CORRECT_ONLY), minority correct",
        minority_base.with_(fd_policy=DisseminationPolicy.CORRECT_ONLY),
        n_seeds,
    ))
    rows.append(_row(
        "a) detection-based AΘ/AP* (ALL_PROCESSES), minority correct",
        minority_base.with_(fd_policy=DisseminationPolicy.ALL_PROCESSES,
                            fd_detection_delay=3.0),
        n_seeds,
    ))

    # b) retirement disabled (non-quiescent variant).
    base = algorithm2_scenario(
        name="E10-retire",
        n_processes=N_PROCESSES,
        loss=LossSpec.bernoulli(0.2),
        stop_when_quiescent=False,
        max_time=60.0,
    )
    rows.append(_row("b) retirement enabled", base.with_(retire_enabled=True),
                     n_seeds))
    rows.append(_row("b) retirement disabled", base.with_(retire_enabled=False),
                     n_seeds))

    # c) strict equality vs robust comparison under a converging detector.
    converge_base = algorithm2_scenario(
        name="E10-strict",
        n_processes=N_PROCESSES,
        crashes={N_PROCESSES - 1: 2.0},
        loss=LossSpec.bernoulli(0.1),
        fd_policy=DisseminationPolicy.ALL_PROCESSES,
        fd_detection_delay=2.0,
        fd_learn_delay=3.0,
        max_time=200.0,
    )
    rows.append(_row("c) robust comparison (>=)",
                     converge_base.with_(strict_equality=False), n_seeds))
    rows.append(_row("c) strict equality (==)",
                     converge_base.with_(strict_equality=True), n_seeds))

    # d) fairness guard under heavy loss.
    lossy_base = algorithm2_scenario(
        name="E10-fairness",
        n_processes=N_PROCESSES,
        loss=LossSpec.bernoulli(0.7),
        max_time=250.0,
    )
    rows.append(_row("d) fairness guard on (bound 25)",
                     lossy_base.with_(fairness_bound=25), n_seeds))
    rows.append(_row("d) fairness guard off",
                     lossy_base.with_(fairness_bound=None), n_seeds))

    # e) eager first broadcast.
    eager_base = algorithm2_scenario(
        name="E10-eager",
        n_processes=N_PROCESSES,
        loss=LossSpec.bernoulli(0.1),
    )
    rows.append(_row("e) eager first broadcast",
                     eager_base.with_(eager_first_broadcast=True), n_seeds))
    rows.append(_row("e) first broadcast at next tick",
                     eager_base.with_(eager_first_broadcast=False), n_seeds))

    table = ExperimentArtifact(
        name="Table 5 — ablation outcomes",
        kind="table",
        headers=["ablation", "runs", "runs fully delivered", "quiescent runs",
                 "runs w/ URB properties", "mean latency"],
        rows=rows,
        notes=(
            "The prescient oracle is the configuration the paper's Theorem 3 "
            "assumes; the detection-based oracle is only sound with a correct "
            "majority, and without one it may fail to deliver, fail to "
            "quiesce, or (in adversarial schedules) violate agreement."
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        artifacts=[table],
        parameters={"seeds": n_seeds, "n": N_PROCESSES, "quick": quick},
    )
