"""Shared helpers for the experiment modules E1–E10."""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads.generators import SingleBroadcast, UniformStream
from .config import Scenario
from .runner import ScenarioResult

#: Default number of replications per experiment point.
DEFAULT_SEEDS = 3
#: Reduced replication count used by ``quick=True`` (benchmarks, smoke runs).
QUICK_SEEDS = 1


def seeds_for(quick: bool, seeds: Optional[int]) -> int:
    """Resolve the replication count for an experiment invocation."""
    if seeds is not None:
        if seeds < 1:
            raise ValueError("seeds must be positive")
        return seeds
    return QUICK_SEEDS if quick else DEFAULT_SEEDS


def crash_last(n_processes: int, n_crashes: int, time: float = 0.0) -> dict[int, float]:
    """Crash the *last* ``n_crashes`` process indices at *time*.

    Crashing the highest indices keeps process 0 (the default broadcaster)
    correct, so Validity stays checkable across the whole sweep.
    """
    if n_crashes < 0:
        raise ValueError("n_crashes must be non-negative")
    if n_crashes >= n_processes:
        raise ValueError("at least one process must remain correct")
    return {n_processes - 1 - i: time for i in range(n_crashes)}


def mean_latency(result: ScenarioResult) -> Optional[float]:
    """Mean URB-delivery latency of a run (``None`` when nothing delivered)."""
    return result.metrics.mean_latency


def max_latency(result: ScenarioResult) -> Optional[float]:
    """Maximum URB-delivery latency of a run."""
    return result.metrics.max_latency


def total_sends(result: ScenarioResult) -> float:
    """Total channel sends of a run."""
    return float(result.metrics.total_sends)


def last_send_time(result: ScenarioResult) -> Optional[float]:
    """Time of the last channel send (the quiescence point, if it quiesces)."""
    return result.quiescence.last_send_time


def delivered_fraction(result: ScenarioResult) -> float:
    """Fraction of correct processes that delivered *every* expected content."""
    expected = set(result.simulation.expected_contents)
    correct = result.simulation.correct_indices()
    if not expected or not correct:
        return 0.0
    complete = 0
    for index in correct:
        delivered = result.simulation.delivery_logs[index].content_set()
        if expected <= delivered:
            complete += 1
    return complete / len(correct)


def all_correct_delivered(result: ScenarioResult) -> bool:
    """Whether every correct process delivered every expected content."""
    return delivered_fraction(result) == 1.0


def properties_hold(result: ScenarioResult) -> bool:
    """Whether all three URB properties hold on the run."""
    return result.all_properties_hold


def is_quiescent(result: ScenarioResult) -> bool:
    """Whether the run's quiescence report declared it quiescent."""
    return result.quiescence.quiescent


def multi_sender_workload(n_messages: int = 2, senders: Sequence[int] = (0, 1),
                          interval: float = 1.0) -> UniformStream:
    """Small multi-sender workload used by the correctness matrix."""
    return UniformStream(n_messages, senders=tuple(senders), interval=interval)


def single_broadcast_workload() -> SingleBroadcast:
    """One broadcast by process 0 at time 0 (the canonical latency workload)."""
    return SingleBroadcast(sender=0, time=0.0)


def algorithm1_scenario(**overrides) -> Scenario:
    """Base scenario for Algorithm 1 experiments (early-stops on delivery)."""
    base = Scenario(
        name="algorithm1",
        algorithm="algorithm1",
        n_processes=6,
        max_time=150.0,
        stop_when_all_correct_delivered=True,
        drain_grace_period=0.0,
        workload=single_broadcast_workload(),
    )
    return base.with_(**overrides) if overrides else base


def algorithm2_scenario(**overrides) -> Scenario:
    """Base scenario for Algorithm 2 experiments (early-stops on quiescence)."""
    base = Scenario(
        name="algorithm2",
        algorithm="algorithm2",
        n_processes=6,
        max_time=150.0,
        stop_when_quiescent=True,
        drain_grace_period=3.0,
        workload=single_broadcast_workload(),
    )
    return base.with_(**overrides) if overrides else base
