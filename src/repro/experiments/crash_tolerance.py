"""E8 — Crash tolerance (Table 3).

Algorithm 1 requires a majority of correct processes: with ``t ≥ n/2``
initial crashes it can never collect a majority of acknowledgements and
blocks (it stays safe but delivers nothing).  Algorithm 2, armed with AΘ and
AP\\*, delivers with **any** number of crashes (up to ``n−1``).  This
experiment crashes ``k`` processes at time zero for ``k = 0 … n−1`` and
reports which algorithm still delivers.
"""

from __future__ import annotations

from typing import Optional

from ..network.loss import LossSpec
from .common import (
    algorithm1_scenario,
    algorithm2_scenario,
    all_correct_delivered,
    crash_last,
    seeds_for,
)
from .report import ExperimentArtifact, ExperimentResult
from .runner import replicate

EXPERIMENT_ID = "E8"
TITLE = "Crash tolerance: delivery with k initial crashes"

N_PROCESSES = 8
LOSS_P = 0.2


def run(seeds: Optional[int] = None, quick: bool = False) -> ExperimentResult:
    """Run E8 and return its table."""
    n_seeds = seeds_for(quick, seeds)
    crash_counts = (0, 3, 4, 7) if quick else tuple(range(N_PROCESSES))
    rows = []
    for k in crash_counts:
        crashes = crash_last(N_PROCESSES, k, time=0.0)
        for algorithm, base in (
            ("algorithm1", algorithm1_scenario(max_time=60.0)),
            ("algorithm2", algorithm2_scenario(max_time=120.0)),
        ):
            scenario = base.with_(
                name=f"E8-{algorithm}-k{k}",
                n_processes=N_PROCESSES,
                crashes=crashes,
                loss=LossSpec.bernoulli(LOSS_P),
            )
            results = replicate(scenario, n_seeds)
            rows.append(
                [
                    algorithm,
                    k,
                    k < N_PROCESSES / 2,
                    len(results),
                    sum(1 for r in results if all_correct_delivered(r)),
                    sum(1 for r in results if r.verdict.validity.holds),
                    sum(1 for r in results if r.verdict.uniform_agreement.holds),
                    sum(1 for r in results if r.verdict.uniform_integrity.holds),
                ]
            )
    table = ExperimentArtifact(
        name="Table 3 — delivery vs number of initial crashes",
        kind="table",
        headers=["algorithm", "initial crashes k", "correct majority?",
                 "runs", "runs fully delivered", "validity ok",
                 "agreement ok", "integrity ok"],
        rows=rows,
        notes=(
            "Algorithm 1 only delivers while a correct majority remains "
            "(k < n/2); beyond that it blocks: the safety properties "
            "(Uniform Agreement, Uniform Integrity) still hold but the "
            "liveness property Validity is violated — the correct broadcaster "
            "never manages to deliver its own message.  Algorithm 2 delivers "
            "and satisfies all three properties for every k up to n-1."
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        artifacts=[table],
        parameters={"seeds": n_seeds, "n": N_PROCESSES, "loss": LOSS_P,
                    "quick": quick},
        notes="Quantifies the availability gap the failure detectors close.",
    )
