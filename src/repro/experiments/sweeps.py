"""Parameter sweeps over scenarios.

Experiments vary one or two scenario fields over a grid and replicate each
point over several seeds.  The helpers here keep that boilerplate (and its
aggregation) in one tested place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from ..analysis.stats import mean_confidence_interval
from .batch import ScenarioSuite
from .config import Scenario
from .runner import ScenarioResult


@dataclass
class SweepPoint:
    """All replications of one point of a sweep."""

    value: Any
    scenario: Scenario
    results: list[ScenarioResult]

    def metric(self, fn: Callable[[ScenarioResult], float | None]) -> list[float]:
        """Apply *fn* to every replication, dropping ``None`` outcomes."""
        values = []
        for result in self.results:
            value = fn(result)
            if value is not None:
                values.append(float(value))
        return values

    def mean_metric(self, fn: Callable[[ScenarioResult], float | None]) -> float | None:
        """Mean of *fn* over the replications (``None`` if no data)."""
        values = self.metric(fn)
        if not values:
            return None
        return sum(values) / len(values)

    def metric_ci(
        self, fn: Callable[[ScenarioResult], float | None], confidence: float = 0.95
    ) -> tuple[float, float, float] | None:
        """Mean and confidence interval of *fn* over the replications."""
        values = self.metric(fn)
        if not values:
            return None
        return mean_confidence_interval(values, confidence)

    def fraction(self, predicate: Callable[[ScenarioResult], bool]) -> float:
        """Fraction of replications satisfying *predicate*."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if predicate(r)) / len(self.results)


def _run_point_batch(
    scenarios: Sequence[Scenario],
    seeds: Sequence[int] | int,
    parallel: int,
    worker_plugins: Sequence[str],
    name: str,
) -> list[list[ScenarioResult]]:
    """Run all points × seeds as ONE batch, returning results per point.

    A single suite (and hence a single process pool) covers the whole sweep,
    so ``parallel=N`` parallelises across points *and* seeds instead of
    paying a pool startup per point.
    """
    if isinstance(seeds, int) and seeds < 1:
        raise ValueError("the number of replications must be positive")
    suite = ScenarioSuite(name)
    for position, scenario in enumerate(scenarios):
        suite.add(scenario, group=str(position))
    suite.with_seeds(seeds)
    result = suite.run(parallel=parallel, fail_fast=True,
                       worker_plugins=worker_plugins)
    grouped = result.groups()
    return [list(grouped.get(str(position), []))
            for position in range(len(scenarios))]


def sweep(
    base: Scenario,
    field_name: str,
    values: Iterable[Any],
    *,
    seeds: Sequence[int] | int = 3,
    scenario_builder: Callable[[Scenario, Any], Scenario] | None = None,
    parallel: int = 1,
    worker_plugins: Sequence[str] = (),
) -> list[SweepPoint]:
    """Vary one scenario field over *values*, replicating each point.

    Parameters
    ----------
    base:
        The scenario every point starts from.
    field_name:
        Name of the :class:`Scenario` field to vary (ignored when a custom
        *scenario_builder* is supplied — it is then only used in reports).
    values:
        The grid of values.
    seeds:
        Number of replications (or the explicit seed list) per point.
    scenario_builder:
        Optional custom ``(base, value) -> Scenario`` builder for sweeps that
        touch more than one field (e.g. "number of crashes" needs both the
        crash map and possibly the workload).
    parallel:
        Worker processes shared by the whole sweep (``1`` = sequential, the
        historic behaviour; results are identical either way).
    worker_plugins:
        Modules each worker imports first (third-party registrations).
    """
    values = list(values)
    scenarios = [
        scenario_builder(base, value) if scenario_builder is not None
        else base.with_(**{field_name: value})
        for value in values
    ]
    per_point = _run_point_batch(scenarios, seeds, parallel, worker_plugins,
                                 name=f"sweep-{field_name}")
    return [
        SweepPoint(value=value, scenario=scenario, results=results)
        for value, scenario, results in zip(values, scenarios, per_point)
    ]


def grid(
    base: Scenario,
    builders: dict[str, Callable[[Scenario, Any], Scenario]],
    grid_values: dict[str, Iterable[Any]],
    *,
    seeds: Sequence[int] | int = 3,
    parallel: int = 1,
    worker_plugins: Sequence[str] = (),
) -> list[tuple[dict[str, Any], list[ScenarioResult]]]:
    """Cartesian-product sweep over several named dimensions.

    Returns a list of ``(assignment, replications)`` pairs where
    ``assignment`` maps each dimension name to the value used.  The whole
    grid (all assignments × seeds) runs as one batch, so ``parallel=N``
    shares a single process pool across every configuration.
    """
    names = list(grid_values)
    assignments: list[dict[str, Any]] = []
    scenarios: list[Scenario] = []

    def expand(index: int, scenario: Scenario, assignment: dict[str, Any]) -> None:
        if index == len(names):
            assignments.append(dict(assignment))
            scenarios.append(scenario)
            return
        name = names[index]
        for value in grid_values[name]:
            assignment[name] = value
            expand(index + 1, builders[name](scenario, value), assignment)
        del assignment[name]

    expand(0, base, {})
    per_point = _run_point_batch(scenarios, seeds, parallel, worker_plugins,
                                 name="grid")
    return list(zip(assignments, per_point))
