"""E7 — Impact of the failure detectors' detection delay (Figure 5).

The anonymous detectors are oracles, but realistic implementations converge
only some time after crashes occur.  Using the detection-based
(``ALL_PROCESSES``) oracle in a majority-correct setting, this experiment
sweeps the detection delay and measures its effect on delivery latency and on
quiescence time.  Safety must be unaffected (the properties hold for every
delay); only liveness speed degrades.
"""

from __future__ import annotations

from typing import Optional

from ..failure_detectors.policies import DisseminationPolicy
from ..network.loss import LossSpec
from .common import (
    algorithm2_scenario,
    is_quiescent,
    last_send_time,
    mean_latency,
    properties_hold,
    seeds_for,
)
from .report import ExperimentArtifact, ExperimentResult
from .sweeps import sweep

EXPERIMENT_ID = "E7"
TITLE = "Failure-detector detection delay vs. latency and quiescence"

N_PROCESSES = 6
#: Two early crashes so that delivery genuinely has to wait for detection.
CRASH_TIMES = {4: 0.5, 5: 1.0}


def run(seeds: Optional[int] = None, quick: bool = False) -> ExperimentResult:
    """Run E7 and return its figure."""
    n_seeds = seeds_for(quick, seeds)
    delays = (0.0, 5.0) if quick else (0.0, 1.0, 2.0, 5.0, 10.0, 20.0)
    base = algorithm2_scenario(
        name="E7",
        n_processes=N_PROCESSES,
        crashes=dict(CRASH_TIMES),
        loss=LossSpec.bernoulli(0.1),
        fd_policy=DisseminationPolicy.ALL_PROCESSES,
        drain_grace_period=5.0,
        max_time=200.0,
    )
    points = sweep(
        base,
        "fd_detection_delay",
        delays,
        seeds=n_seeds,
        scenario_builder=lambda scenario, d: scenario.with_(
            fd_detection_delay=d, apstar_detection_delay=d
        ),
    )
    rows = []
    for point in points:
        rows.append(
            [
                point.value,
                point.mean_metric(mean_latency),
                point.mean_metric(last_send_time),
                point.fraction(is_quiescent),
                point.fraction(properties_hold),
            ]
        )
    figure = ExperimentArtifact(
        name="Figure 5 — detection delay vs latency / quiescence time",
        kind="figure",
        headers=["detection delay", "mean delivery latency",
                 "mean last send time", "quiescent fraction",
                 "URB properties hold fraction"],
        rows=rows,
        notes=(
            "With the detection-based oracle the delivery condition cannot be "
            "met before undetected crashes are accounted for, so latency and "
            "quiescence time track the detection delay roughly linearly; the "
            "property-hold fraction must stay at 1.0 (safety is unaffected)."
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        artifacts=[figure],
        parameters={
            "seeds": n_seeds, "n": N_PROCESSES,
            "crashes": dict(CRASH_TIMES), "quick": quick,
        },
    )
