"""E4 — Quiescence time of Algorithm 2 (Figure 3).

Measures when Algorithm 2 actually falls silent (time of the last channel
send) as a function of (a) the channel loss probability and (b) the AP\\*
detection delay when a crash occurs.  Higher loss means more retransmission
rounds before every correct process has acknowledged; a larger detection
delay postpones the removal of the crashed process's pair from AP\\*, which
postpones retirement of messages and therefore quiescence.
"""

from __future__ import annotations

from typing import Optional

from ..failure_detectors.policies import DisseminationPolicy
from ..network.loss import LossSpec
from .common import algorithm2_scenario, is_quiescent, last_send_time, seeds_for
from .report import ExperimentArtifact, ExperimentResult
from .sweeps import sweep

EXPERIMENT_ID = "E4"
TITLE = "Quiescence time vs. loss probability and detection delay"

N_PROCESSES = 6


def run(seeds: Optional[int] = None, quick: bool = False) -> ExperimentResult:
    """Run E4 and return its two figures."""
    n_seeds = seeds_for(quick, seeds)
    losses = (0.0, 0.3) if quick else (0.0, 0.2, 0.4, 0.6)
    delays = (0.0, 5.0) if quick else (0.0, 2.0, 5.0, 10.0)

    # (a) quiescence time vs loss probability, failure-free.
    base_loss = algorithm2_scenario(
        n_processes=N_PROCESSES, name="E4-loss", drain_grace_period=5.0
    )
    loss_points = sweep(
        base_loss,
        "loss",
        losses,
        seeds=n_seeds,
        scenario_builder=lambda scenario, p: scenario.with_(
            loss=LossSpec.bernoulli(p) if p else LossSpec.none()
        ),
    )
    loss_rows = [
        [point.value,
         point.mean_metric(last_send_time),
         point.fraction(is_quiescent)]
        for point in loss_points
    ]

    # (b) quiescence time vs AP* detection delay, one crash, realistic
    # (detection-based) oracle so the delay actually matters.
    base_delay = algorithm2_scenario(
        n_processes=N_PROCESSES,
        name="E4-delay",
        crashes={N_PROCESSES - 1: 1.0},
        loss=LossSpec.bernoulli(0.2),
        fd_policy=DisseminationPolicy.ALL_PROCESSES,
        drain_grace_period=5.0,
    )
    delay_points = sweep(
        base_delay,
        "fd_detection_delay",
        delays,
        seeds=n_seeds,
        scenario_builder=lambda scenario, d: scenario.with_(
            fd_detection_delay=d, apstar_detection_delay=d
        ),
    )
    delay_rows = [
        [point.value,
         point.mean_metric(last_send_time),
         point.fraction(is_quiescent)]
        for point in delay_points
    ]

    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        artifacts=[
            ExperimentArtifact(
                name="Figure 3a — quiescence time vs loss probability",
                kind="figure",
                headers=["loss p", "mean last send time", "quiescent fraction"],
                rows=loss_rows,
            ),
            ExperimentArtifact(
                name="Figure 3b — quiescence time vs detection delay (1 crash)",
                kind="figure",
                headers=["detection delay", "mean last send time",
                         "quiescent fraction"],
                rows=delay_rows,
                notes=(
                    "Uses the detection-based (ALL_PROCESSES) oracle with a "
                    "correct majority so the detection delay is the quantity "
                    "that gates retirement."
                ),
            ),
        ],
        parameters={"seeds": n_seeds, "n": N_PROCESSES, "quick": quick},
        notes=(
            "Quiescence time grows with both the loss rate and the failure "
            "detector's detection delay; every run must still end quiescent."
        ),
    )
