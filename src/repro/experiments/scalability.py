"""E5 — Scalability with the number of processes (Figure 4).

One URB-broadcast costs Θ(n²) MSG copies per retransmission round plus Θ(n²)
ACK copies per received MSG copy (every reception triggers an n-way ACK
broadcast), so the total traffic to deliver a single message grows roughly
cubically with n while the delivery latency stays roughly flat (all ACK
streams progress in parallel).  This experiment measures mean delivery
latency and total sends-to-delivery as n grows, for both algorithms.
"""

from __future__ import annotations

from typing import Optional

from ..network.loss import LossSpec
from .common import (
    algorithm1_scenario,
    algorithm2_scenario,
    mean_latency,
    seeds_for,
    total_sends,
)
from .report import ExperimentArtifact, ExperimentResult
from .sweeps import sweep

EXPERIMENT_ID = "E5"
TITLE = "Scalability: latency and traffic vs. number of processes"

LOSS_P = 0.1


def run(seeds: Optional[int] = None, quick: bool = False) -> ExperimentResult:
    """Run E5 and return its figure."""
    n_seeds = seeds_for(quick, seeds)
    sizes = (3, 6, 10) if quick else (3, 5, 7, 10, 15, 20)
    rows_combined = []
    artifacts = []
    for algorithm, base in (
        ("algorithm1", algorithm1_scenario()),
        ("algorithm2", algorithm2_scenario(drain_grace_period=0.0,
                                           stop_when_quiescent=False,
                                           stop_when_all_correct_delivered=True)),
    ):
        base = base.with_(name=f"E5-{algorithm}", loss=LossSpec.bernoulli(LOSS_P))
        points = sweep(
            base,
            "n_processes",
            sizes,
            seeds=n_seeds,
            scenario_builder=lambda scenario, n: scenario.with_(n_processes=n),
        )
        rows = []
        for point in points:
            latency = point.mean_metric(mean_latency)
            sends = point.mean_metric(total_sends)
            per_delivery = (
                sends / point.value if sends is not None else None
            )
            rows.append([point.value, latency, sends, per_delivery])
            rows_combined.append([algorithm, point.value, latency, sends])
        artifacts.append(
            ExperimentArtifact(
                name=f"Figure 4{'a' if algorithm == 'algorithm1' else 'b'} — "
                     f"{algorithm} scalability",
                kind="figure",
                headers=["n", "mean latency", "mean sends to delivery",
                         "sends per process"],
                rows=rows,
            )
        )
    artifacts.append(
        ExperimentArtifact(
            name="Figure 4 — combined series",
            kind="figure",
            headers=["algorithm", "n", "mean latency", "mean sends to delivery"],
            rows=rows_combined,
            notes=(
                "Both algorithms stop as soon as every correct process has "
                "delivered, so 'sends to delivery' compares like with like."
            ),
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        artifacts=artifacts,
        parameters={"seeds": n_seeds, "loss": LOSS_P, "quick": quick},
        notes=(
            "Expected shape: latency roughly flat in n; traffic grows "
            "super-linearly (≈ n² per retransmission round, ≈ n³ in total)."
        ),
    )
