"""E2 — Delivery latency vs. channel loss probability (Figure 1).

The fair lossy channel model makes retransmission (Task 1) the only liveness
mechanism; as the per-copy loss probability grows, more retransmission rounds
are needed before a majority (Algorithm 1) or the whole correct set
(Algorithm 2) acknowledges, so mean delivery latency grows.  This experiment
produces the latency-vs-p curve for both algorithms.
"""

from __future__ import annotations

from typing import Optional

from ..network.loss import LossSpec
from .common import (
    algorithm1_scenario,
    algorithm2_scenario,
    max_latency,
    mean_latency,
    seeds_for,
)
from .report import ExperimentArtifact, ExperimentResult
from .sweeps import sweep

EXPERIMENT_ID = "E2"
TITLE = "Delivery latency vs. loss probability"

#: Process count used for the curve.
N_PROCESSES = 7


def run(seeds: Optional[int] = None, quick: bool = False) -> ExperimentResult:
    """Run E2 and return its figure (one series per algorithm)."""
    n_seeds = seeds_for(quick, seeds)
    probabilities = (0.0, 0.2, 0.4) if quick else (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6)
    artifacts = []
    rows_combined = []
    for algorithm, base in (
        ("algorithm1", algorithm1_scenario(n_processes=N_PROCESSES)),
        ("algorithm2", algorithm2_scenario(n_processes=N_PROCESSES)),
    ):
        points = sweep(
            base.with_(name=f"E2-{algorithm}"),
            "loss",
            probabilities,
            seeds=n_seeds,
            scenario_builder=lambda scenario, p: scenario.with_(
                loss=LossSpec.bernoulli(p) if p else LossSpec.none()
            ),
        )
        rows = []
        for point in points:
            mean = point.mean_metric(mean_latency)
            worst = point.mean_metric(max_latency)
            rows.append([point.value, mean, worst])
            rows_combined.append([algorithm, point.value, mean, worst])
        artifacts.append(
            ExperimentArtifact(
                name=f"Figure 1{'a' if algorithm == 'algorithm1' else 'b'} — "
                     f"{algorithm} latency vs loss",
                kind="figure",
                headers=["loss p", "mean latency", "mean max latency"],
                rows=rows,
            )
        )
    artifacts.append(
        ExperimentArtifact(
            name="Figure 1 — combined series",
            kind="figure",
            headers=["algorithm", "loss p", "mean latency", "mean max latency"],
            rows=rows_combined,
            notes="Latency is measured from URB_broadcast to each URB_deliver.",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        artifacts=artifacts,
        parameters={"seeds": n_seeds, "n": N_PROCESSES, "quick": quick},
        notes=(
            "Expected shape: latency grows with p for both algorithms; "
            "Algorithm 1 delivers slightly earlier (majority of ACKs) than "
            "Algorithm 2 (ACKs covering an AΘ pair, i.e. all correct "
            "processes under the default prescient oracle)."
        ),
    )
