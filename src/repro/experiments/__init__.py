"""Experiment harness: scenario configuration, runners, sweeps and the
registry of the paper-style experiments E1–E10."""

from .config import ALGORITHMS, CHANNEL_TYPES, Scenario
from .export import (
    scenario_result_to_dict,
    write_artifact_csv,
    write_experiment_csvs,
    write_experiment_json,
    write_scenario_json,
)
from .report import ExperimentArtifact, ExperimentResult
from .runner import (
    ScenarioResult,
    build_engine,
    default_scenario,
    replicate,
    run_scenario,
    run_scenarios,
)
from .sweeps import SweepPoint, grid, sweep

__all__ = [
    "ALGORITHMS",
    "CHANNEL_TYPES",
    "ExperimentArtifact",
    "ExperimentResult",
    "Scenario",
    "ScenarioResult",
    "SweepPoint",
    "build_engine",
    "default_scenario",
    "grid",
    "replicate",
    "run_scenario",
    "run_scenarios",
    "scenario_result_to_dict",
    "sweep",
    "write_artifact_csv",
    "write_experiment_csvs",
    "write_experiment_json",
    "write_scenario_json",
]
