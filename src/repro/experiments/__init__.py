"""Experiment harness: scenario configuration, runners, suites/batching and
the registry of the paper-style experiments E1–E10."""

from .batch import (
    BatchExecutionError,
    BatchFailure,
    BatchRunner,
    ScenarioSuite,
    SuiteItem,
    SuiteResult,
)
from .config import Scenario
from .export import (
    scenario_result_to_dict,
    write_artifact_csv,
    write_experiment_csvs,
    write_experiment_json,
    write_scenario_json,
)
from .report import ExperimentArtifact, ExperimentResult
from .runner import (
    ScenarioResult,
    build_engine,
    build_workload,
    default_scenario,
    replicate,
    run_scenario,
    run_scenarios,
)
from .sweeps import SweepPoint, grid, sweep

__all__ = [
    "ALGORITHMS",
    "BatchExecutionError",
    "BatchFailure",
    "BatchRunner",
    "CHANNEL_TYPES",
    "ExperimentArtifact",
    "ExperimentResult",
    "Scenario",
    "ScenarioResult",
    "ScenarioSuite",
    "SuiteItem",
    "SuiteResult",
    "SweepPoint",
    "build_engine",
    "build_workload",
    "default_scenario",
    "grid",
    "replicate",
    "run_scenario",
    "run_scenarios",
    "scenario_result_to_dict",
    "sweep",
    "write_artifact_csv",
    "write_experiment_csvs",
    "write_experiment_json",
    "write_scenario_json",
]


def __getattr__(name: str):
    """Forward the legacy ``ALGORITHMS`` / ``CHANNEL_TYPES`` tuples.

    These are live views of the component registries (see
    :mod:`repro.experiments.config`), kept as module attributes for
    backwards compatibility.
    """
    if name in ("ALGORITHMS", "CHANNEL_TYPES"):
        from . import config

        return getattr(config, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
