"""Exporting experiment and scenario results to JSON / CSV.

The plain-text tables are what the CLI and ``EXPERIMENTS.md`` show; this
module provides machine-readable exports so results can be post-processed or
plotted with external tooling (pandas, gnuplot, spreadsheets) without adding
any plotting dependency to the library itself.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Iterable

from ..simulation.engine import ScheduleProvenance
from .report import ExperimentArtifact, ExperimentResult
from .runner import ScenarioResult


def artifact_to_dict(artifact: ExperimentArtifact) -> dict[str, Any]:
    """Plain-dict view of one artifact (JSON friendly)."""
    return {
        "name": artifact.name,
        "kind": artifact.kind,
        "headers": list(artifact.headers),
        "rows": [list(row) for row in artifact.rows],
        "notes": artifact.notes,
    }


def experiment_result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Plain-dict view of an experiment result (JSON friendly)."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "notes": result.notes,
        "parameters": dict(result.parameters),
        "artifacts": [artifact_to_dict(a) for a in result.artifacts],
    }


def provenance_to_dict(
    provenance: ScheduleProvenance | None,
) -> dict[str, Any] | None:
    """JSON-friendly view of a run's schedule provenance, decisions included.

    Unlike :meth:`ScheduleProvenance.as_dict` (a summary for reports), this
    form carries the decision trace too, so an export round-trips through
    :func:`provenance_from_dict` equal to its source.
    """
    if provenance is None:
        return None
    data = provenance.as_dict()
    data["decisions"] = [list(decision) for decision in provenance.decisions]
    return data


def provenance_from_dict(
    data: dict[str, Any] | None,
) -> ScheduleProvenance | None:
    """Rebuild a :class:`ScheduleProvenance` written by
    :func:`provenance_to_dict` (``None`` passes through)."""
    if data is None:
        return None
    return ScheduleProvenance(
        strategy=data["strategy"],
        seed=data["seed"],
        schedule_index=data["schedule_index"],
        decision_count=data["decision_count"],
        schedule_hash=data["schedule_hash"],
        decisions=tuple(tuple(decision) for decision in data["decisions"]),
    )


def scenario_result_to_dict(result: ScenarioResult) -> dict[str, Any]:
    """Plain-dict summary of a single scenario run (JSON friendly)."""
    scenario = result.scenario
    return {
        "scenario": {
            "name": scenario.name,
            "algorithm": scenario.algorithm,
            "n_processes": scenario.n_processes,
            "seed": scenario.seed,
            "crashes": {str(k): v for k, v in dict(scenario.crashes).items()},
            "loss": scenario.loss.describe(),
            "delay": scenario.delay.describe(),
            "channel_type": scenario.channel_type,
            "detector_setup": scenario.detector_setup,
            "workload": (scenario.workload if isinstance(scenario.workload, str)
                         else scenario.workload.describe()
                         if scenario.workload is not None else None),
            "fd_policy": scenario.fd_policy.value,
        },
        "verdict": {
            "validity": result.verdict.validity.holds,
            "uniform_agreement": result.verdict.uniform_agreement.holds,
            "uniform_integrity": result.verdict.uniform_integrity.holds,
            "violations": result.verdict.violations(),
        },
        "quiescence": {
            "quiescent": result.quiescence.quiescent,
            "last_send_time": result.quiescence.last_send_time,
            "idle_tail": result.quiescence.idle_tail,
        },
        "anonymity_passed": result.anonymity.passed,
        "metrics": result.metrics.as_dict(),
        "stop_reason": result.simulation.stop_reason,
        "final_time": result.simulation.final_time,
        "schedule": provenance_to_dict(result.simulation.schedule),
        "deliveries": {
            str(index): log.contents()
            for index, log in result.simulation.delivery_logs.items()
        },
    }


# --------------------------------------------------------------------------- #
# file writers
# --------------------------------------------------------------------------- #
def write_experiment_json(result: ExperimentResult, path: str | Path) -> Path:
    """Write one experiment result as a JSON file; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(experiment_result_to_dict(result), indent=2, default=str),
        encoding="utf-8",
    )
    return path


def write_scenario_json(result: ScenarioResult, path: str | Path) -> Path:
    """Write one scenario result summary as a JSON file; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(scenario_result_to_dict(result), indent=2, default=str),
        encoding="utf-8",
    )
    return path


def write_artifact_csv(artifact: ExperimentArtifact, path: str | Path) -> Path:
    """Write one table/figure as a CSV file; returns the path."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(artifact.headers))
        for row in artifact.rows:
            writer.writerow(list(row))
    return path


def write_experiment_csvs(result: ExperimentResult,
                          directory: str | Path) -> list[Path]:
    """Write every artifact of an experiment as CSV files in *directory*.

    File names are derived from the experiment id and the artifact index so
    they stay filesystem-safe regardless of the artifact titles.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, artifact in enumerate(result.artifacts):
        path = directory / f"{result.experiment_id.lower()}_artifact{index}.csv"
        paths.append(write_artifact_csv(artifact, path))
    return paths


def load_experiment_json(path: str | Path) -> dict[str, Any]:
    """Load a JSON file written by :func:`write_experiment_json`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def load_scenario_json(path: str | Path) -> dict[str, Any]:
    """Load a JSON file written by :func:`write_scenario_json`.

    The mapping mirrors the file, with ``schedule`` rebuilt into a live
    :class:`~repro.simulation.engine.ScheduleProvenance` (``None`` when the
    export predates provenance tracking).
    """
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    data["schedule"] = provenance_from_dict(data.get("schedule"))
    return data


def rows_from_csv(path: str | Path) -> tuple[list[str], list[list[str]]]:
    """Read back a CSV written by :func:`write_artifact_csv`.

    Returns ``(headers, rows)`` with every cell as a string (CSV is untyped);
    numeric post-processing is left to the caller.
    """
    with Path(path).open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows: Iterable[list[str]] = list(reader)
    rows = list(rows)
    if not rows:
        return [], []
    return rows[0], rows[1:]
