"""Scenario runner: turn a :class:`~repro.experiments.config.Scenario` into a
wired-up engine, run it, and package the outcome for analysis.

This module is the main high-level entry point of the library::

    from repro import Scenario, run_scenario
    from repro.network import LossSpec

    result = run_scenario(Scenario(algorithm="algorithm2",
                                   n_processes=5,
                                   loss=LossSpec.bernoulli(0.3),
                                   crashes={4: 10.0}))
    print(result.verdict.describe())
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..analysis.anonymity import AnonymityAudit, audit_anonymity
from ..analysis.properties import UrbVerdict, check_urb_properties
from ..analysis.quiescence import QuiescenceReport, analyze_quiescence
from ..core.interfaces import BroadcastProtocol
from ..network.network import Network
from ..registry import (
    algorithms,
    channels,
    detector_setups,
    engines,
    strategies,
    workloads,
)
from ..simulation.config import SimulationConfig, StopConditions
from ..simulation.engine import SimulationEngine, SimulationResult
from ..simulation.environment import ProcessEnvironment
from ..simulation.faults import CrashSchedule
from ..simulation.rng import RandomSource
from ..simulation.tracing import TraceRecorder
from ..workloads.base import Workload
from .config import Scenario


@dataclass
class ScenarioResult:
    """A finished scenario together with its standard analyses."""

    scenario: Scenario
    simulation: SimulationResult
    verdict: UrbVerdict
    quiescence: QuiescenceReport
    anonymity: AnonymityAudit
    #: Wall-clock seconds spent building and running this scenario (measured
    #: by :func:`run_scenario`; ``None`` for results assembled by hand).
    #: Deliberately *not* part of the deterministic result content — the
    #: campaign store indexes it for cost estimation but keeps it out of the
    #: content-addressed blob.
    wall_time: float | None = None

    @property
    def all_properties_hold(self) -> bool:
        """Whether the three URB properties hold on this run."""
        return self.verdict.all_hold

    @property
    def metrics(self):
        """Shortcut to the aggregate metrics summary."""
        return self.simulation.metrics_summary()

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            self.scenario.describe(),
            self.simulation.describe(),
            self.verdict.describe(),
            self.quiescence.describe(),
            self.anonymity.describe(),
        ]
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# engine construction
# --------------------------------------------------------------------------- #
def build_crash_schedule(scenario: Scenario) -> CrashSchedule:
    """The scenario's failure pattern as a :class:`CrashSchedule`."""
    return CrashSchedule.crash_at(scenario.n_processes, dict(scenario.crashes))


def build_network(scenario: Scenario, random_source: RandomSource,
                  crash_schedule: CrashSchedule) -> Network:
    """Build the network described by the scenario.

    The channel family is resolved through the :data:`repro.registry.channels`
    registry, so custom families registered with
    :func:`~repro.registry.register_channel` are built exactly like the
    built-in ones.
    """
    spec = channels.get(scenario.channel_type)
    factory = spec.factory(scenario, crash_schedule)
    return Network(scenario.n_processes, factory, random_source)


def build_detectors(scenario: Scenario, crash_schedule: CrashSchedule,
                    random_source: RandomSource):
    """Build the AΘ and AP\\* oracles for the scenario (or ``(None, None)``).

    Whether oracles are needed at all is decided by the algorithm spec's
    ``uses_failure_detectors`` flag; *which* oracles are built is decided by
    the scenario's ``detector_setup`` registry entry.
    """
    if not algorithms.get(scenario.algorithm).uses_failure_detectors:
        return None, None
    setup = detector_setups.get(scenario.detector_setup)
    return setup.factory(scenario, crash_schedule, random_source)


def build_process_factory(
    scenario: Scenario,
) -> Callable[[int, ProcessEnvironment], BroadcastProtocol]:
    """Factory building each process's protocol instance.

    Thin curry over the registered :class:`~repro.registry.AlgorithmSpec`:
    the spec's factory receives ``(scenario, index, env)`` and the engine
    keeps its ``(index, env)`` calling convention.
    """
    spec = algorithms.get(scenario.algorithm)

    def factory(index: int, env: ProcessEnvironment) -> BroadcastProtocol:
        return spec.factory(scenario, index, env)

    return factory


def build_workload(scenario: Scenario, random_source: RandomSource) -> Workload:
    """Resolve the scenario's workload.

    ``None`` means the registered ``"single"`` preset; a string is looked up
    in the :data:`repro.registry.workloads` registry; a :class:`Workload`
    instance is used as-is.  Presets draw randomness from the dedicated
    ``"workload"`` substream of the run's master seed.
    """
    workload = scenario.workload
    if workload is None:
        workload = "single"
    if isinstance(workload, str):
        spec = workloads.get(workload)
        return spec.factory(scenario, random_source.stream("workload"))
    return workload


def build_controller(scenario: Scenario):
    """The scenario's schedule controller, or ``None`` for RNG-driven runs.

    Resolved through the :data:`repro.registry.strategies` registry; the
    strategy factory receives the scenario plus its ``explore_index`` (which
    schedule of the strategy's space to execute).
    """
    if scenario.explore_strategy is None:
        return None
    spec = strategies.get(scenario.explore_strategy)
    return spec.factory(scenario, scenario.explore_index)


def build_engine(scenario: Scenario, *, controller=None) -> SimulationEngine:
    """Assemble the :class:`SimulationEngine` described by *scenario*.

    *controller* overrides the scenario's own ``explore_strategy`` wiring —
    the replay path hands a pre-built
    :class:`~repro.explore.controller.ReplayController` in directly.

    The engine class itself comes from the ``engines`` registry
    (``scenario.engine``); batching backends detect an attached controller
    themselves and fall back to per-event dispatch, so explore/replay runs
    stay exact whatever backend the scenario names.
    """
    if controller is None:
        controller = build_controller(scenario)
    engine_factory = engines.get(scenario.engine).factory
    random_source = RandomSource(scenario.seed)
    crash_schedule = build_crash_schedule(scenario)
    network = build_network(scenario, random_source, crash_schedule)
    atheta, apstar = build_detectors(scenario, crash_schedule, random_source)
    workload = build_workload(scenario, random_source)
    config = SimulationConfig(
        n_processes=scenario.n_processes,
        tick_interval=scenario.tick_interval,
        max_time=scenario.max_time,
        seed=scenario.seed,
        check_interval=scenario.check_interval,
        stop=StopConditions(
            stop_when_all_correct_delivered=scenario.stop_when_all_correct_delivered,
            stop_when_quiescent=scenario.stop_when_quiescent,
            drain_grace_period=scenario.drain_grace_period,
        ),
        metadata=dict(scenario.metadata),
    )
    return engine_factory(
        config=config,
        network=network,
        process_factory=build_process_factory(scenario),
        crash_schedule=crash_schedule,
        workload=tuple(workload),
        atheta=atheta,
        apstar=apstar,
        trace=TraceRecorder(enabled=scenario.trace_enabled),
        hooks=tuple(scenario.hooks),
        trace_ticks=scenario.trace_ticks,
        controller=controller,
    )


# --------------------------------------------------------------------------- #
# running
# --------------------------------------------------------------------------- #
def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Run one scenario and attach the standard analyses to the result."""
    started = time.perf_counter()
    engine = build_engine(scenario)
    simulation = engine.run()
    verdict = check_urb_properties(simulation)
    quiescence = analyze_quiescence(simulation)
    anonymity = audit_anonymity(
        simulation,
        allow_identified=not algorithms.get(scenario.algorithm).anonymous,
    )
    return ScenarioResult(
        scenario=scenario,
        simulation=simulation,
        verdict=verdict,
        quiescence=quiescence,
        anonymity=anonymity,
        wall_time=time.perf_counter() - started,
    )


def run_scenarios(scenarios: Iterable[Scenario], *,
                  parallel: int = 1,
                  worker_plugins: Sequence[str] = ()) -> list[ScenarioResult]:
    """Run several scenarios (thin shim over the batch runner).

    ``parallel=1`` (the default) runs in-process, exactly like the historic
    sequential implementation — exceptions propagate unmodified; with
    ``parallel=N`` the scenarios fan out over a process pool with
    deterministic result ordering and a failure raises
    :class:`~repro.experiments.batch.BatchExecutionError` carrying the
    worker traceback.  *worker_plugins* names modules each worker imports
    first (required for third-party registry components on platforms that
    spawn rather than fork workers).
    """
    from .batch import ScenarioSuite

    suite = ScenarioSuite("run_scenarios").add_many(scenarios)
    return list(suite.run(parallel=parallel, fail_fast=True,
                          worker_plugins=worker_plugins).results)


def replicate(
    scenario: Scenario,
    seeds: Sequence[int] | int,
    *,
    parallel: int = 1,
    worker_plugins: Sequence[str] = (),
) -> list[ScenarioResult]:
    """Run the same scenario under several seeds.

    Parameters
    ----------
    scenario:
        The scenario to replicate.
    seeds:
        Either an explicit sequence of seeds, or an integer ``k`` meaning
        seeds ``0 .. k-1`` offset by the scenario's own seed.
    parallel:
        Number of worker processes (``1`` = in-process, sequential).
    worker_plugins:
        Modules each worker imports first (third-party registrations).
    """
    from .batch import ScenarioSuite

    suite = ScenarioSuite("replicate").add(scenario).with_seeds(seeds)
    return list(suite.run(parallel=parallel, fail_fast=True,
                          worker_plugins=worker_plugins).results)


def default_scenario(algorithm: str = "algorithm2", **overrides) -> Scenario:
    """A small, fast scenario with sensible defaults (used by examples)."""
    base = Scenario(
        name=f"default-{algorithm}",
        algorithm=algorithm,
        n_processes=5,
        max_time=120.0,
        stop_when_all_correct_delivered=(algorithm != "algorithm2"),
        stop_when_quiescent=(algorithm == "algorithm2"),
        drain_grace_period=5.0,
    )
    return base.with_(**overrides) if overrides else base
