"""Scenario runner: turn a :class:`~repro.experiments.config.Scenario` into a
wired-up engine, run it, and package the outcome for analysis.

This module is the main high-level entry point of the library::

    from repro import Scenario, run_scenario
    from repro.network import LossSpec

    result = run_scenario(Scenario(algorithm="algorithm2",
                                   n_processes=5,
                                   loss=LossSpec.bernoulli(0.3),
                                   crashes={4: 10.0}))
    print(result.verdict.describe())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..analysis.anonymity import AnonymityAudit, audit_anonymity
from ..analysis.properties import UrbVerdict, check_urb_properties
from ..analysis.quiescence import QuiescenceReport, analyze_quiescence
from ..core.algorithm1 import MajorityUrbProcess
from ..core.algorithm2 import QuiescentUrbProcess
from ..core.baselines import (
    BestEffortBroadcastProcess,
    EagerReliableBroadcastProcess,
    IdentifiedMajorityUrbProcess,
)
from ..core.interfaces import BroadcastProtocol
from ..failure_detectors.apstar import APStarOracle
from ..failure_detectors.atheta import AThetaOracle
from ..failure_detectors.oracle import GroundTruthOracle
from ..network.fair_lossy import FairLossyChannelFactory
from ..network.network import Network
from ..network.reliable import QuasiReliableChannelFactory, ReliableChannelFactory
from ..simulation.config import SimulationConfig, StopConditions
from ..simulation.engine import SimulationEngine, SimulationResult
from ..simulation.environment import ProcessEnvironment
from ..simulation.faults import CrashSchedule
from ..simulation.rng import RandomSource
from ..simulation.tracing import TraceRecorder
from ..workloads.generators import SingleBroadcast
from .config import Scenario


@dataclass
class ScenarioResult:
    """A finished scenario together with its standard analyses."""

    scenario: Scenario
    simulation: SimulationResult
    verdict: UrbVerdict
    quiescence: QuiescenceReport
    anonymity: AnonymityAudit

    @property
    def all_properties_hold(self) -> bool:
        """Whether the three URB properties hold on this run."""
        return self.verdict.all_hold

    @property
    def metrics(self):
        """Shortcut to the aggregate metrics summary."""
        return self.simulation.metrics_summary()

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            self.scenario.describe(),
            self.simulation.describe(),
            self.verdict.describe(),
            self.quiescence.describe(),
            self.anonymity.describe(),
        ]
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# engine construction
# --------------------------------------------------------------------------- #
def build_crash_schedule(scenario: Scenario) -> CrashSchedule:
    """The scenario's failure pattern as a :class:`CrashSchedule`."""
    return CrashSchedule.crash_at(scenario.n_processes, dict(scenario.crashes))


def build_network(scenario: Scenario, random_source: RandomSource,
                  crash_schedule: CrashSchedule) -> Network:
    """Build the network described by the scenario."""
    if scenario.channel_type == "reliable":
        factory = ReliableChannelFactory(delay_spec=scenario.delay)
    elif scenario.channel_type == "quasi_reliable":
        factory = QuasiReliableChannelFactory(
            sender_crash_time=crash_schedule.crash_time,
            delay_spec=scenario.delay,
        )
    else:
        factory = FairLossyChannelFactory(
            loss_spec=scenario.loss,
            delay_spec=scenario.delay,
            fairness_bound=scenario.fairness_bound,
        )
    return Network(scenario.n_processes, factory, random_source)


def build_detectors(scenario: Scenario, crash_schedule: CrashSchedule,
                    random_source: RandomSource):
    """Build the AΘ and AP\\* oracles for the scenario (or ``(None, None)``)."""
    if scenario.algorithm != "algorithm2":
        return None, None
    ground_truth = GroundTruthOracle(
        crash_schedule, rng=random_source.stream("labels")
    )
    atheta = AThetaOracle(
        ground_truth,
        policy=scenario.fd_policy,
        detection_delay=scenario.fd_detection_delay,
        learn_delay=scenario.fd_learn_delay,
        rng=random_source.stream("atheta-learn"),
    )
    apstar = APStarOracle(
        ground_truth,
        policy=scenario.fd_policy,
        detection_delay=scenario.effective_apstar_delay,
        learn_delay=scenario.fd_learn_delay,
        rng=random_source.stream("apstar-learn"),
    )
    return atheta, apstar


def build_process_factory(
    scenario: Scenario,
) -> Callable[[int, ProcessEnvironment], BroadcastProtocol]:
    """Factory building each process's protocol instance."""
    algorithm = scenario.algorithm

    def factory(index: int, env: ProcessEnvironment) -> BroadcastProtocol:
        if algorithm == "algorithm1":
            return MajorityUrbProcess(
                env,
                scenario.n_processes,
                majority_threshold=scenario.majority_threshold,
                eager_first_broadcast=scenario.eager_first_broadcast,
            )
        if algorithm == "algorithm2":
            return QuiescentUrbProcess(
                env,
                strict_equality=scenario.strict_equality,
                retire_enabled=scenario.retire_enabled,
                eager_first_broadcast=scenario.eager_first_broadcast,
            )
        if algorithm == "best_effort":
            return BestEffortBroadcastProcess(env)
        if algorithm == "eager_rb":
            return EagerReliableBroadcastProcess(env)
        if algorithm == "identified_urb":
            return IdentifiedMajorityUrbProcess(
                env,
                scenario.n_processes,
                identity=index,
                majority_threshold=scenario.majority_threshold,
                eager_first_broadcast=scenario.eager_first_broadcast,
            )
        raise ValueError(f"unknown algorithm {algorithm!r}")  # pragma: no cover

    return factory


def build_engine(scenario: Scenario) -> SimulationEngine:
    """Assemble the :class:`SimulationEngine` described by *scenario*."""
    random_source = RandomSource(scenario.seed)
    crash_schedule = build_crash_schedule(scenario)
    network = build_network(scenario, random_source, crash_schedule)
    atheta, apstar = build_detectors(scenario, crash_schedule, random_source)
    workload = scenario.workload or SingleBroadcast(sender=0, time=0.0)
    config = SimulationConfig(
        n_processes=scenario.n_processes,
        tick_interval=scenario.tick_interval,
        max_time=scenario.max_time,
        seed=scenario.seed,
        check_interval=scenario.check_interval,
        stop=StopConditions(
            stop_when_all_correct_delivered=scenario.stop_when_all_correct_delivered,
            stop_when_quiescent=scenario.stop_when_quiescent,
            drain_grace_period=scenario.drain_grace_period,
        ),
        metadata=dict(scenario.metadata),
    )
    return SimulationEngine(
        config=config,
        network=network,
        process_factory=build_process_factory(scenario),
        crash_schedule=crash_schedule,
        workload=tuple(workload),
        atheta=atheta,
        apstar=apstar,
        trace=TraceRecorder(enabled=scenario.trace_enabled),
        hooks=tuple(scenario.hooks),
        trace_ticks=scenario.trace_ticks,
    )


# --------------------------------------------------------------------------- #
# running
# --------------------------------------------------------------------------- #
def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Run one scenario and attach the standard analyses to the result."""
    engine = build_engine(scenario)
    simulation = engine.run()
    verdict = check_urb_properties(simulation)
    quiescence = analyze_quiescence(simulation)
    anonymity = audit_anonymity(
        simulation, allow_identified=scenario.algorithm == "identified_urb"
    )
    return ScenarioResult(
        scenario=scenario,
        simulation=simulation,
        verdict=verdict,
        quiescence=quiescence,
        anonymity=anonymity,
    )


def run_scenarios(scenarios: Iterable[Scenario]) -> list[ScenarioResult]:
    """Run several scenarios sequentially."""
    return [run_scenario(scenario) for scenario in scenarios]


def replicate(
    scenario: Scenario,
    seeds: Sequence[int] | int,
) -> list[ScenarioResult]:
    """Run the same scenario under several seeds.

    Parameters
    ----------
    scenario:
        The scenario to replicate.
    seeds:
        Either an explicit sequence of seeds, or an integer ``k`` meaning
        seeds ``0 .. k-1`` offset by the scenario's own seed.
    """
    if isinstance(seeds, int):
        if seeds < 1:
            raise ValueError("the number of replications must be positive")
        seeds = [scenario.seed + i for i in range(seeds)]
    return [run_scenario(scenario.with_seed(seed)) for seed in seeds]


def default_scenario(algorithm: str = "algorithm2", **overrides) -> Scenario:
    """A small, fast scenario with sensible defaults (used by examples)."""
    base = Scenario(
        name=f"default-{algorithm}",
        algorithm=algorithm,
        n_processes=5,
        max_time=120.0,
        stop_when_all_correct_delivered=(algorithm != "algorithm2"),
        stop_when_quiescent=(algorithm == "algorithm2"),
        drain_grace_period=5.0,
    )
    return base.with_(**overrides) if overrides else base
