"""E1 — Correctness matrix (Table 1).

Exercises Theorems 1 and 3: both algorithms satisfy Validity, Uniform
Agreement and Uniform Integrity across process counts, crash counts and loss
rates — Algorithm 1 within its ``t < n/2`` envelope, Algorithm 2 with any
number of crashes.  Every cell of the matrix is replicated over several seeds
and reports the fraction of runs on which each property held.
"""

from __future__ import annotations

from typing import Optional

from ..network.loss import LossSpec
from .common import (
    algorithm1_scenario,
    algorithm2_scenario,
    all_correct_delivered,
    crash_last,
    multi_sender_workload,
    seeds_for,
)
from .report import ExperimentArtifact, ExperimentResult
from .runner import replicate

EXPERIMENT_ID = "E1"
TITLE = "Correctness matrix: URB properties across n, crashes and loss"


def _configurations(quick: bool):
    """The (algorithm, n, crashes, loss) grid of the matrix."""
    if quick:
        ns = (5,)
        losses = (0.2,)
    else:
        ns = (4, 5, 7)
        losses = (0.0, 0.3)
    for n in ns:
        for loss in losses:
            # Algorithm 1: crash counts within the majority envelope.
            for crashes in {0, (n - 1) // 2}:
                yield ("algorithm1", n, crashes, loss)
            # Algorithm 2: up to n-1 crashes (no majority needed).
            for crashes in {0, n // 2, n - 2 if n > 2 else 0, n - 1}:
                yield ("algorithm2", n, crashes, loss)


def run(seeds: Optional[int] = None, quick: bool = False) -> ExperimentResult:
    """Run E1 and return its table."""
    n_seeds = seeds_for(quick, seeds)
    rows = []
    for algorithm, n, crashes, loss in _configurations(quick):
        base = algorithm1_scenario() if algorithm == "algorithm1" else algorithm2_scenario()
        scenario = base.with_(
            name=f"E1-{algorithm}-n{n}-c{crashes}-p{loss}",
            n_processes=n,
            crashes=crash_last(n, crashes, time=2.0),
            loss=LossSpec.bernoulli(loss) if loss else LossSpec.none(),
            workload=multi_sender_workload(),
        )
        results = replicate(scenario, n_seeds)
        rows.append(
            [
                algorithm,
                n,
                crashes,
                loss,
                len(results),
                sum(1 for r in results if r.verdict.validity.holds),
                sum(1 for r in results if r.verdict.uniform_agreement.holds),
                sum(1 for r in results if r.verdict.uniform_integrity.holds),
                sum(1 for r in results if all_correct_delivered(r)),
            ]
        )
    table = ExperimentArtifact(
        name="Table 1 — URB property verdicts",
        kind="table",
        headers=[
            "algorithm", "n", "crashes", "loss p", "runs",
            "validity ok", "agreement ok", "integrity ok", "all delivered",
        ],
        rows=rows,
        notes=(
            "Each property column counts the runs (out of 'runs') on which the "
            "property held; 'all delivered' counts runs where every correct "
            "process delivered every broadcast message by the end of the run."
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        artifacts=[table],
        parameters={"seeds": n_seeds, "quick": quick},
        notes=(
            "Reproduces the paper's Theorems 1 and 3 empirically: all runs in "
            "every configuration must satisfy the three URB properties."
        ),
    )
