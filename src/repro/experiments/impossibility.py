"""E6 — Impossibility of URB without a correct majority (Table 2).

Theorem 2 of the paper: no algorithm solves URB in the bare model
(``AAS_F[∅]``) when ``t ≥ n/2``.  The proof builds two indistinguishable
runs; run ``R2`` is the damning one:

* the system splits into ``S1`` (⌈n/2⌉ processes) and ``S2`` (⌊n/2⌋),
* every message from ``S1`` to ``S2`` is lost,
* the ``S1`` processes behave as if ``S2`` had crashed, URB-deliver ``m``,
  and then crash,
* no process of ``S2`` ever receives anything → Uniform Agreement is
  violated.

The experiment *constructs* run ``R2`` against a sub-majority variant of
Algorithm 1 (acknowledgement threshold lowered to ``⌈n/2⌉`` — the largest
threshold an algorithm could wait for if it is to make progress with only
``⌈n/2⌉`` correct-looking processes) and verifies the violation occurs.  A
control row keeps the proper majority threshold and shows the algorithm then
*blocks* instead of violating agreement — which is exactly the trade-off the
impossibility captures.
"""

from __future__ import annotations

from typing import Optional

from ..network.loss import LossSpec
from ..simulation.hooks import CrashOnDeliveryHook
from ..workloads.generators import SingleBroadcast
from .common import seeds_for
from .config import Scenario
from .report import ExperimentArtifact, ExperimentResult
from .runner import run_scenario

EXPERIMENT_ID = "E6"
TITLE = "Impossibility of URB with t >= n/2 and no failure detector"

N_PROCESSES = 4
HORIZON = 60.0


def build_partition_scenario(
    *,
    majority_threshold: int,
    seed: int = 0,
    n_processes: int = N_PROCESSES,
) -> tuple[Scenario, CrashOnDeliveryHook]:
    """Build the run-``R2`` scenario of the proof for a given ACK threshold.

    Returns the scenario and the adversarial hook (so callers can inspect
    which processes were crashed on delivery).
    """
    group_s1 = frozenset(range((n_processes + 1) // 2))          # ⌈n/2⌉
    group_s2 = frozenset(range((n_processes + 1) // 2, n_processes))
    hook = CrashOnDeliveryHook(targets=group_s1)
    scenario = Scenario(
        name=f"E6-threshold{majority_threshold}",
        algorithm="algorithm1",
        n_processes=n_processes,
        seed=seed,
        # The partition loses every message crossing from S1 to S2 (and back,
        # which only strengthens the indistinguishability); the fairness
        # guard must be off — the adversary controls the channel.
        loss=LossSpec.partition(set(group_s1), set(group_s2)),
        fairness_bound=None,
        majority_threshold=majority_threshold,
        workload=SingleBroadcast(sender=0, time=0.0),
        max_time=HORIZON,
        hooks=(hook,),
    )
    return scenario, hook


def run(seeds: Optional[int] = None, quick: bool = False) -> ExperimentResult:
    """Run E6 and return its table."""
    n_seeds = seeds_for(quick, seeds)
    sub_majority = (N_PROCESSES + 1) // 2          # n/2 acknowledgements
    proper_majority = N_PROCESSES // 2 + 1         # > n/2 acknowledgements
    rows = []
    for label, threshold in (
        ("sub-majority (t >= n/2 tolerated)", sub_majority),
        ("proper majority (t < n/2 required)", proper_majority),
    ):
        agreement_violations = 0
        any_delivered = 0
        blocked = 0
        for seed in range(n_seeds):
            scenario, hook = build_partition_scenario(
                majority_threshold=threshold, seed=seed
            )
            result = run_scenario(scenario)
            delivered_any = result.metrics.deliveries > 0
            any_delivered += int(delivered_any)
            if not result.verdict.uniform_agreement.holds:
                agreement_violations += 1
            if not delivered_any:
                blocked += 1
        rows.append(
            [label, threshold, n_seeds, any_delivered, agreement_violations, blocked]
        )
    table = ExperimentArtifact(
        name="Table 2 — partition adversary (run R2 of Theorem 2)",
        kind="table",
        headers=["configuration", "ACK threshold", "runs", "runs w/ delivery",
                 "uniform agreement violations", "runs blocked (no delivery)"],
        rows=rows,
        notes=(
            "With the sub-majority threshold the S1 side delivers and then "
            "crashes while S2 never hears anything: Uniform Agreement is "
            "violated in every run.  With the proper majority threshold the "
            "algorithm cannot gather enough acknowledgements inside S1 and "
            "blocks — safe, but not live — which is why a failure detector "
            "(AΘ) is needed to go below a correct majority."
        ),
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        artifacts=[table],
        parameters={"seeds": n_seeds, "n": N_PROCESSES, "quick": quick},
        notes="Constructive demonstration of the paper's Theorem 2.",
    )
