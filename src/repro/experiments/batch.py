"""Declarative scenario suites and the parallel batch runner.

The historic entry points (:func:`~repro.experiments.runner.run_scenarios`,
:func:`~repro.experiments.runner.replicate`) execute strictly sequentially.
This module adds the suite layer on top of :func:`run_scenario`:

* :class:`ScenarioSuite` — declarative construction of a batch: explicit
  scenarios, one-field sweeps, cross-product grids, and seed fan-out, each
  tagged with a *group* label for aggregation.
* :class:`BatchRunner` — executes a suite in-process (``parallel=1``) or on a
  ``concurrent.futures.ProcessPoolExecutor`` (``parallel=N``) with
  deterministic result ordering, progress callbacks and failure isolation:
  one crashed scenario (or worker process) records a :class:`BatchFailure`
  instead of sinking the whole suite.
* :class:`SuiteResult` — the ordered outcomes plus per-group aggregation
  reusing :mod:`repro.analysis.stats`.

Because every simulated run is fully determined by its scenario (fields +
seed), the parallel path produces results identical to the sequential one —
a property the test suite asserts byte-for-byte.

Custom components and worker processes
--------------------------------------
Scenarios referring to third-party registry entries (see
:mod:`repro.registry`) run fine with ``parallel=1``.  With ``parallel=N`` the
worker *processes* must perform the same registrations; pass the module names
that register them as ``worker_plugins`` — each worker imports them once at
startup::

    suite.run(parallel=4, worker_plugins=("myproject.protocols",))
"""

from __future__ import annotations

import itertools
import importlib
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Union

from .. import obs
from ..analysis.stats import SummaryStats, summarize
from .config import Scenario
from .runner import ScenarioResult, run_scenario

#: Called after each completed item: ``progress(done, total, item)``.
ProgressCallback = Callable[[int, int, "SuiteItem"], None]

#: Called with every successful result as it completes (completion order):
#: ``on_result(item, result)``.  This is the hook incremental consumers (the
#: campaign store) use to persist results before the whole batch finishes.
ResultCallback = Callable[["SuiteItem", "ScenarioResult"], None]

#: Extracts one number from a result (``None`` = no data for this run).
MetricFn = Callable[[ScenarioResult], Optional[float]]


@dataclass(frozen=True)
class SuiteItem:
    """One scheduled run of a suite: a scenario plus its position and group."""

    index: int
    group: str
    scenario: Scenario


@dataclass(frozen=True)
class BatchFailure:
    """One isolated failure inside a batch run."""

    index: int
    group: str
    scenario: Scenario
    error: str
    details: str = ""

    def describe(self) -> str:
        """One-line summary used in reports and exceptions."""
        return f"item {self.index} ({self.group}): {self.error}"


class BatchExecutionError(RuntimeError):
    """Raised by :meth:`SuiteResult.raise_on_failure` when any item failed."""

    def __init__(self, failures: Sequence[BatchFailure]) -> None:
        self.failures = tuple(failures)
        lines = []
        for failure in self.failures:
            lines.append(f"  - {failure.describe()}")
            if failure.details:
                lines.extend(f"      {line}"
                             for line in failure.details.rstrip().splitlines())
        body = "\n".join(lines)
        super().__init__(
            f"{len(self.failures)} scenario(s) failed in the batch:\n{body}"
        )


# --------------------------------------------------------------------------- #
# results
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SuiteResult:
    """Everything a finished batch produced, in schedule order.

    ``outcomes[i]`` corresponds to ``items[i]`` regardless of the order in
    which workers finished — ``None`` marks a failed item, whose error is
    recorded in :attr:`failures`.
    """

    name: str
    items: tuple[SuiteItem, ...]
    outcomes: tuple[Optional[ScenarioResult], ...]
    failures: tuple[BatchFailure, ...]
    parallel: int
    elapsed_seconds: float

    def __len__(self) -> int:
        return len(self.items)

    @property
    def ok(self) -> bool:
        """Whether every item completed without error."""
        return not self.failures

    @property
    def results(self) -> tuple[ScenarioResult, ...]:
        """Successful results in schedule order (failed items skipped)."""
        return tuple(r for r in self.outcomes if r is not None)

    def raise_on_failure(self) -> "SuiteResult":
        """Return ``self``, or raise :class:`BatchExecutionError` if anything failed."""
        if self.failures:
            raise BatchExecutionError(self.failures)
        return self

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def groups(self) -> dict[str, list[ScenarioResult]]:
        """Successful results keyed by group, groups in first-seen order."""
        grouped: dict[str, list[ScenarioResult]] = {}
        for item, outcome in zip(self.items, self.outcomes):
            bucket = grouped.setdefault(item.group, [])
            if outcome is not None:
                bucket.append(outcome)
        return grouped

    def group_stats(self, metric: MetricFn) -> dict[str, Optional[SummaryStats]]:
        """Per-group summary statistics of *metric* over successful runs.

        Runs for which *metric* returns ``None`` are dropped from that
        group's sample; a group with no data maps to ``None``.
        """
        stats: dict[str, Optional[SummaryStats]] = {}
        for group, results in self.groups().items():
            values = [v for v in (metric(r) for r in results) if v is not None]
            stats[group] = summarize(float(v) for v in values)
        return stats

    def group_fraction(
        self, predicate: Callable[[ScenarioResult], bool]
    ) -> dict[str, float]:
        """Per-group fraction of successful runs satisfying *predicate*."""
        fractions: dict[str, float] = {}
        for group, results in self.groups().items():
            fractions[group] = (
                sum(1 for r in results if predicate(r)) / len(results)
                if results else 0.0
            )
        return fractions

    def describe(self) -> str:
        """Multi-line human-readable summary of the batch."""
        lines = [
            f"suite {self.name!r}: {len(self.results)}/{len(self.items)} runs ok, "
            f"{len(self.failures)} failed, parallel={self.parallel}, "
            f"wall-clock {self.elapsed_seconds:.2f}s"
        ]
        for group, results in self.groups().items():
            lines.append(f"  {group}: {len(results)} run(s)")
        for failure in self.failures:
            lines.append(f"  FAILED {failure.describe()}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# suite construction
# --------------------------------------------------------------------------- #
class ScenarioSuite:
    """A declaratively constructed batch of scenarios.

    Builder methods return ``self`` so suites read as a single chained
    expression::

        suite = (
            ScenarioSuite("loss-sweep")
            .add_sweep(base, "loss", [LossSpec.bernoulli(p) for p in grid],
                       groups=[f"p={p}" for p in grid])
            .with_seeds(5)
        )
        result = suite.run(parallel=4)

    Seed fan-out (:meth:`with_seeds`) is applied at :meth:`build` time: every
    declared scenario is replicated once per seed, keeping its group label,
    so aggregation naturally averages over seeds.
    """

    def __init__(self, name: str = "suite",
                 scenarios: Iterable[Scenario] = ()) -> None:
        self.name = name
        self._entries: list[tuple[str, Scenario]] = []
        self._seeds: Union[int, Sequence[int], None] = None
        self.add_many(scenarios)

    # ------------------------------------------------------------------ #
    def add(self, scenario: Scenario, *, group: Optional[str] = None) -> "ScenarioSuite":
        """Add one scenario (group defaults to the scenario's name)."""
        self._entries.append((group or scenario.name, scenario))
        return self

    def add_many(self, scenarios: Iterable[Scenario], *,
                 group: Optional[str] = None) -> "ScenarioSuite":
        """Add several scenarios sharing one optional group label."""
        for scenario in scenarios:
            self.add(scenario, group=group)
        return self

    def add_sweep(
        self,
        base: Scenario,
        field_name: str,
        values: Iterable[Any],
        *,
        groups: Optional[Sequence[str]] = None,
        scenario_builder: Optional[Callable[[Scenario, Any], Scenario]] = None,
    ) -> "ScenarioSuite":
        """Vary one scenario field over *values* (one group per value).

        *scenario_builder* overrides the default ``base.with_(field=value)``
        for sweeps that must touch several fields at once (e.g. a crash-count
        sweep also rewriting the crash map).
        """
        values = list(values)
        if groups is not None and len(groups) != len(values):
            raise ValueError("groups must match values one-to-one")
        for position, value in enumerate(values):
            if scenario_builder is not None:
                scenario = scenario_builder(base, value)
            else:
                scenario = base.with_(**{field_name: value})
            group = (groups[position] if groups is not None
                     else f"{field_name}={value}")
            self.add(scenario, group=group)
        return self

    def add_grid(self, base: Scenario,
                 **dimensions: Iterable[Any]) -> "ScenarioSuite":
        """Cross-product sweep over several scenario fields.

        ``add_grid(base, loss=[a, b], n_processes=[5, 9])`` declares four
        scenarios, grouped ``"loss=a,n_processes=5"`` etc., in deterministic
        row-major order.
        """
        names = list(dimensions)
        for combo in itertools.product(*(list(dimensions[n]) for n in names)):
            assignment: Mapping[str, Any] = dict(zip(names, combo))
            group = ",".join(f"{k}={v}" for k, v in assignment.items())
            self.add(base.with_(**assignment), group=group)
        return self

    def with_seeds(self, seeds: Union[int, Sequence[int]]) -> "ScenarioSuite":
        """Fan every declared scenario out over several seeds.

        An integer ``k`` replicates each scenario under seeds
        ``scenario.seed .. scenario.seed + k - 1`` (matching
        :func:`~repro.experiments.runner.replicate`); an explicit sequence is
        used verbatim for every scenario.
        """
        if isinstance(seeds, int) and seeds < 1:
            raise ValueError("the number of replications must be positive")
        self._seeds = seeds
        return self

    # ------------------------------------------------------------------ #
    def build(self) -> tuple[SuiteItem, ...]:
        """Materialise the schedule: entries × seeds, in declaration order."""
        items: list[SuiteItem] = []
        for group, scenario in self._entries:
            if self._seeds is None:
                expanded = [scenario]
            elif isinstance(self._seeds, int):
                expanded = [scenario.with_seed(scenario.seed + i)
                            for i in range(self._seeds)]
            else:
                expanded = [scenario.with_seed(s) for s in self._seeds]
            for variant in expanded:
                items.append(SuiteItem(index=len(items), group=group,
                                       scenario=variant))
        return tuple(items)

    def __len__(self) -> int:
        return len(self.build())

    def run(
        self,
        parallel: int = 1,
        *,
        progress: Optional[ProgressCallback] = None,
        on_result: Optional[ResultCallback] = None,
        worker_plugins: Sequence[str] = (),
        fail_fast: bool = False,
    ) -> SuiteResult:
        """Execute the suite (see :class:`BatchRunner`)."""
        runner = BatchRunner(parallel=parallel, progress=progress,
                             on_result=on_result,
                             worker_plugins=worker_plugins, fail_fast=fail_fast)
        return runner.run(self)


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
def normalise_suite(
    suite: Union[ScenarioSuite, Iterable[Scenario], Sequence[SuiteItem]],
) -> tuple[str, tuple[SuiteItem, ...]]:
    """Public view of suite normalisation (used by the campaign runner)."""
    return BatchRunner._normalise(suite)


def _import_worker_plugins(plugins: Sequence[str]) -> None:
    """Pool initializer: perform third-party registrations in each worker."""
    for module_name in plugins:
        importlib.import_module(module_name)


def _cells_total() -> "obs.Counter":
    return obs.counter("repro_batch_cells_total",
                       "Batch cells recorded, by outcome.", ("status",))


def _cell_seconds() -> "obs.Histogram":
    return obs.histogram("repro_batch_cell_seconds",
                         "Wall-clock seconds per completed batch cell.")


def _in_flight() -> "obs.Gauge":
    return obs.gauge("repro_batch_in_flight",
                     "Batch cells submitted and not yet recorded.")


def _execute_item(
    position: int, item: SuiteItem,
) -> tuple[int, Optional[ScenarioResult], Optional[str], str]:
    """Run one item, trapping any exception (top-level: must pickle).

    *position* is the item's slot in the batch being run — distinct from
    ``item.index`` when a caller re-runs a subset of a previously built
    suite (e.g. only the failed items).
    """
    try:
        return position, run_scenario(item.scenario), None, ""
    except Exception as exc:  # noqa: BLE001 - failure isolation by design
        return position, None, repr(exc), traceback.format_exc()


class BatchRunner:
    """Executes suites with optional process-level parallelism.

    Parameters
    ----------
    parallel:
        Worker processes.  ``1`` (default) runs everything in-process — no
        pickling, and registrations made by the calling process are visible.
        ``N > 1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`.
    progress:
        ``progress(done, total, item)`` called after each item completes (in
        completion order; ``done`` is monotonic).
    on_result:
        ``on_result(item, result)`` called with every *successful* result as
        soon as it is recorded (completion order, always in the calling
        process).  Campaigns persist results through this hook so a killed
        batch loses at most the in-flight items.
    worker_plugins:
        Module names imported by every worker before running anything —
        the hook for third-party registry registrations (see module docs).
    fail_fast:
        Disable failure isolation: in-process runs let the original
        exception propagate unmodified (type, traceback and all); pool runs
        raise :class:`BatchExecutionError` (with the worker traceback in the
        message) as soon as a failure is observed.  This is how the historic
        ``run_scenarios``/``replicate`` semantics are preserved.
    """

    def __init__(
        self,
        parallel: int = 1,
        *,
        progress: Optional[ProgressCallback] = None,
        on_result: Optional[ResultCallback] = None,
        worker_plugins: Sequence[str] = (),
        fail_fast: bool = False,
    ) -> None:
        if parallel < 1:
            raise ValueError("parallel must be at least 1")
        self.parallel = parallel
        self.progress = progress
        self.on_result = on_result
        self.worker_plugins = tuple(worker_plugins)
        self.fail_fast = fail_fast

    # ------------------------------------------------------------------ #
    def run(
        self,
        suite: Union[ScenarioSuite, Iterable[Scenario], Sequence[SuiteItem]],
    ) -> SuiteResult:
        """Run *suite* and return the ordered :class:`SuiteResult`.

        Accepts a :class:`ScenarioSuite`, pre-built :class:`SuiteItem`
        sequences, or any iterable of scenarios (each its own group).
        """
        name, items = self._normalise(suite)
        started = time.perf_counter()
        workers = min(self.parallel, len(items)) if items else 1
        if workers > 1:
            outcomes, failures = self._run_pool(items, workers)
        else:
            outcomes, failures = self._run_inline(items)
        return SuiteResult(
            name=name,
            items=items,
            outcomes=tuple(outcomes),
            failures=tuple(failures),
            parallel=workers,
            elapsed_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalise(
        suite: Union[ScenarioSuite, Iterable[Scenario], Sequence[SuiteItem]],
    ) -> tuple[str, tuple[SuiteItem, ...]]:
        if isinstance(suite, ScenarioSuite):
            return suite.name, suite.build()
        materialised = list(suite)
        if all(isinstance(entry, SuiteItem) for entry in materialised):
            return "batch", tuple(materialised)  # type: ignore[arg-type]
        items = tuple(
            SuiteItem(index=i, group=scenario.name, scenario=scenario)
            for i, scenario in enumerate(materialised)  # type: ignore[arg-type]
        )
        return "batch", items

    def _record(self, outcomes: list, failures: list, items: Sequence[SuiteItem],
                position: int, result: Optional[ScenarioResult],
                error: Optional[str], details: str) -> None:
        outcomes[position] = result
        if obs.enabled():
            # Recording always happens in the calling process (inline and
            # pool paths both), so these series aggregate the whole batch
            # regardless of where the simulation itself ran.
            _cells_total().inc(status="failed" if error is not None
                               else "ok")
            if result is not None:
                _cell_seconds().observe(result.wall_time)
        if error is not None:
            item = items[position]
            failures.append(BatchFailure(
                index=position, group=item.group, scenario=item.scenario,
                error=error, details=details,
            ))
        elif result is not None and self.on_result is not None:
            self.on_result(items[position], result)

    def _run_inline(
        self, items: Sequence[SuiteItem]
    ) -> tuple[list[Optional[ScenarioResult]], list[BatchFailure]]:
        _import_worker_plugins(self.worker_plugins)
        outcomes: list[Optional[ScenarioResult]] = [None] * len(items)
        failures: list[BatchFailure] = []
        for position, item in enumerate(items):
            if obs.enabled():
                _in_flight().inc()
            try:
                if self.fail_fast:
                    # No isolation: the original exception (type, traceback)
                    # propagates to the caller unmodified.
                    result, error, details = (run_scenario(item.scenario),
                                              None, "")
                else:
                    _, result, error, details = _execute_item(position, item)
                self._record(outcomes, failures, items, position, result,
                             error, details)
            finally:
                if obs.enabled():
                    _in_flight().dec()
            if self.progress is not None:
                self.progress(position + 1, len(items), item)
        return outcomes, failures

    def _run_pool(
        self, items: Sequence[SuiteItem], workers: int
    ) -> tuple[list[Optional[ScenarioResult]], list[BatchFailure]]:
        outcomes: list[Optional[ScenarioResult]] = [None] * len(items)
        failures: list[BatchFailure] = []
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_import_worker_plugins,
            initargs=(self.worker_plugins,),
        ) as pool:
            pending = {
                pool.submit(_execute_item, position, item): (position, item)
                for position, item in enumerate(items)
            }
            done = 0
            if obs.enabled():
                _in_flight().inc(len(pending))
            try:
                for future in as_completed(pending):
                    position, item = pending[future]
                    try:
                        position, result, error, details = future.result()
                    except Exception as exc:  # worker died (BrokenProcessPool)
                        result = None
                        error, details = repr(exc), traceback.format_exc()
                    self._record(outcomes, failures, items, position, result,
                                 error, details)
                    done += 1
                    if obs.enabled():
                        _in_flight().dec()
                    if failures and self.fail_fast:
                        for other in pending:
                            other.cancel()
                        raise BatchExecutionError(sorted(failures,
                                                         key=lambda f: f.index))
                    if self.progress is not None:
                        self.progress(done, len(items), item)
            finally:
                # Cancelled / never-completed submissions (fail_fast, a
                # crashed pool) must not leave the gauge dangling.
                if obs.enabled():
                    _in_flight().dec(len(pending) - done)
        failures.sort(key=lambda f: f.index)
        return outcomes, failures
