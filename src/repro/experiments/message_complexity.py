"""E3 — Cumulative message count over time (Figure 2).

The paper's central qualitative difference between the two algorithms:
Algorithm 1 is **non-quiescent** (every correct process re-broadcasts every
URB-delivered message forever, so the cumulative send count grows linearly
until the horizon), while Algorithm 2 **quiesces** (once every correct
process has acknowledged, messages are retired from ``MSG`` and the send
curve flattens).  This experiment runs both algorithms on the same workload
and horizon (no early stopping) and samples the cumulative send curve.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.quiescence import cumulative_send_curve
from ..network.loss import LossSpec
from .common import seeds_for, single_broadcast_workload
from .config import Scenario
from .report import ExperimentArtifact, ExperimentResult
from .runner import replicate

EXPERIMENT_ID = "E3"
TITLE = "Cumulative messages over time: non-quiescence vs quiescence"

N_PROCESSES = 6
LOSS_P = 0.2
HORIZON = 80.0
CURVE_POINTS = 17


def _scenario(algorithm: str, horizon: float) -> Scenario:
    return Scenario(
        name=f"E3-{algorithm}",
        algorithm=algorithm,
        n_processes=N_PROCESSES,
        loss=LossSpec.bernoulli(LOSS_P),
        max_time=horizon,
        workload=single_broadcast_workload(),
        # No early stopping: the whole point is to observe the tail.
        stop_when_all_correct_delivered=False,
        stop_when_quiescent=False,
    )


def run(seeds: Optional[int] = None, quick: bool = False) -> ExperimentResult:
    """Run E3 and return the send-curve figure plus a summary table."""
    n_seeds = seeds_for(quick, seeds)
    horizon = HORIZON / 2 if quick else HORIZON
    curves: dict[str, list[list[float]]] = {}
    summary_rows = []
    for algorithm in ("algorithm1", "algorithm2"):
        results = replicate(_scenario(algorithm, horizon), n_seeds)
        per_seed_curves = [
            cumulative_send_curve(r.simulation, n_points=CURVE_POINTS)
            for r in results
        ]
        # Average the cumulative counts pointwise across seeds.
        averaged = []
        for i in range(CURVE_POINTS):
            t = per_seed_curves[0][i][0]
            mean_count = sum(curve[i][1] for curve in per_seed_curves) / len(
                per_seed_curves
            )
            averaged.append([t, mean_count])
        curves[algorithm] = averaged
        mean_total = sum(r.metrics.total_sends for r in results) / len(results)
        mean_last_send = sum(
            (r.quiescence.last_send_time or 0.0) for r in results
        ) / len(results)
        quiescent_runs = sum(1 for r in results if r.quiescence.quiescent)
        summary_rows.append(
            [algorithm, len(results), mean_total, mean_last_send, quiescent_runs]
        )

    figure_rows = [
        [curves["algorithm1"][i][0],
         curves["algorithm1"][i][1],
         curves["algorithm2"][i][1]]
        for i in range(CURVE_POINTS)
    ]
    figure = ExperimentArtifact(
        name="Figure 2 — cumulative sends over time",
        kind="figure",
        headers=["time", "algorithm1 cumulative sends", "algorithm2 cumulative sends"],
        rows=figure_rows,
        notes=(
            "Algorithm 1 keeps climbing until the horizon (non-quiescent); "
            "Algorithm 2 flattens shortly after every correct process has "
            "acknowledged (quiescent)."
        ),
    )
    summary = ExperimentArtifact(
        name="Table — totals and quiescence",
        kind="table",
        headers=["algorithm", "runs", "mean total sends", "mean last send time",
                 "quiescent runs"],
        rows=summary_rows,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        artifacts=[figure, summary],
        parameters={
            "seeds": n_seeds, "n": N_PROCESSES, "loss": LOSS_P,
            "horizon": horizon, "quick": quick,
        },
        notes="Reproduces the quiescence claim of Theorem 3 quantitatively.",
    )
