"""Registry of the experiments E1–E10.

Every experiment module exposes ``EXPERIMENT_ID``, ``TITLE`` and a
``run(seeds=None, quick=False) -> ExperimentResult`` function; the registry
maps identifiers to those functions so the CLI, the benchmark harness and
``EXPERIMENTS.md`` generation all drive the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from . import (
    ablations,
    baseline_comparison,
    correctness,
    crash_tolerance,
    detector_delay,
    impossibility,
    latency_vs_loss,
    message_complexity,
    quiescence_time,
    scalability,
)
from .report import ExperimentResult

#: Signature of every experiment's ``run`` function.
ExperimentRunner = Callable[..., ExperimentResult]


@dataclass(frozen=True)
class ExperimentEntry:
    """One registered experiment."""

    experiment_id: str
    title: str
    runner: ExperimentRunner
    module_name: str

    def run(self, seeds: Optional[int] = None, quick: bool = False) -> ExperimentResult:
        """Run the experiment."""
        return self.runner(seeds=seeds, quick=quick)


_MODULES = (
    correctness,
    latency_vs_loss,
    message_complexity,
    quiescence_time,
    scalability,
    impossibility,
    detector_delay,
    crash_tolerance,
    baseline_comparison,
    ablations,
)

REGISTRY: dict[str, ExperimentEntry] = {
    module.EXPERIMENT_ID: ExperimentEntry(
        experiment_id=module.EXPERIMENT_ID,
        title=module.TITLE,
        runner=module.run,
        module_name=module.__name__,
    )
    for module in _MODULES
}


def experiment_ids() -> list[str]:
    """All registered experiment identifiers, in numeric order."""
    return sorted(REGISTRY, key=lambda eid: int(eid.lstrip("E")))


def get_experiment(experiment_id: str) -> ExperimentEntry:
    """Look up one experiment (case-insensitive, 'e3' and '3' accepted)."""
    normalised = experiment_id.upper()
    if not normalised.startswith("E"):
        normalised = f"E{normalised}"
    try:
        return REGISTRY[normalised]
    except KeyError:
        valid = ", ".join(experiment_ids())
        raise KeyError(
            f"unknown experiment {experiment_id!r}; valid ids: {valid}"
        ) from None


def run_experiment(experiment_id: str, *, seeds: Optional[int] = None,
                   quick: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id).run(seeds=seeds, quick=quick)


def run_all(*, seeds: Optional[int] = None, quick: bool = False,
            ids: Optional[list[str]] = None) -> list[ExperimentResult]:
    """Run several (default: all) experiments and return their results."""
    targets = ids if ids is not None else experiment_ids()
    return [run_experiment(eid, seeds=seeds, quick=quick) for eid in targets]
